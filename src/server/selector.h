// Selector actor (Sec. 4.2): "Selectors are responsible for accepting and
// forwarding device connections. They periodically receive information from
// the Coordinator about how many devices are needed for each FL population,
// which they use to make local decisions about whether or not to accept each
// device. After the Master Aggregator and set of Aggregators are spawned,
// the Coordinator instructs the Selectors to forward a subset of its
// connected devices to the Aggregators."
//
// Selectors also run the selection phase continuously, which is what makes
// the pipelining of Sec. 4.3 free: the next round's candidates accumulate
// in the waiting pool while the current round reports.
#pragma once

#include <deque>
#include <functional>

#include "src/actor/actor.h"
#include "src/server/messages.h"
#include "src/server/task.h"

namespace fl::server {

class SelectorActor final : public actor::Actor {
 public:
  struct Init {
    std::string population;
    ActorId coordinator;
    ServerContext* context = nullptr;
    // Longest a device is held in the waiting pool before being released
    // with a retry window.
    Duration max_hold = Minutes(5);
    Duration tick_period = Seconds(10);
    std::size_t max_waiting = 1000;
    // Re-spawn hook for Coordinator failure (Sec. 4.4: "if the Coordinator
    // dies, the Selector layer will detect this and respawn it"). Returns
    // the new coordinator id; wired by the embedder. May be null.
    std::function<ActorId()> respawn_coordinator;
  };

  explicit SelectorActor(Init init);

  void OnStart() override;
  void OnMessage(const actor::Envelope& env) override;

  std::size_t waiting() const { return waiting_.size(); }
  std::uint64_t total_accepted() const { return total_accepted_; }
  std::uint64_t total_rejected() const { return total_rejected_; }

 private:
  void HandleArrival(const MsgDeviceArrived& msg);
  void HandleQuota(const MsgSelectorQuota& msg);
  void HandleForward(const MsgForwardDevices& msg);
  void HandleTick();
  void HandleCoordinatorDeath(bool crashed);
  void RejectLink(const DeviceLink& link, const std::string& reason);

  Init init_;
  std::deque<DeviceLink> waiting_;
  bool accepting_ = true;
  std::size_t quota_max_waiting_;
  std::uint64_t total_accepted_ = 0;
  std::uint64_t total_rejected_ = 0;
};

}  // namespace fl::server
