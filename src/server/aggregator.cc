#include "src/server/aggregator.h"

#include <algorithm>
#include <cmath>

#include "src/analytics/flight_dump.h"
#include "src/analytics/journal.h"
#include "src/common/logging.h"
#include "src/fedavg/codec.h"
#include "src/telemetry/trace_context.h"

namespace fl::server {
namespace {

template <typename T>
const T* Cast(const actor::Envelope& env) {
  return std::any_cast<T>(&env.payload);
}

}  // namespace

void AggregatorActor::JournalReport(const DeviceLink& link,
                                    analytics::JournalEventKind kind,
                                    std::string detail) {
  analytics::AppendJournal(Now(), analytics::JournalSource::kAggregator, kind,
                           link.device, link.session, init_.round,
                           std::move(detail));
}

AggregatorActor::AggregatorActor(Init init) : init_(std::move(init)) {
  FL_CHECK(init_.context != nullptr);
  FL_CHECK(init_.global_model != nullptr);
  accumulator_.emplace(init_.aggregation_op, *init_.global_model);
}

protocol::ReconnectWindow AggregatorActor::NextWindow() {
  return init_.context->pace->SuggestWindow(
      Now(), init_.context->estimated_population, Duration{},
      *init_.context->rng);
}

void AggregatorActor::RecordParticipant(DeviceId device,
                                        protocol::ParticipantOutcome o) {
  init_.context->stats->OnParticipantOutcome(Now(), init_.round, device, o);
}

void AggregatorActor::OnMessage(const actor::Envelope& env) {
  if (const auto* m = Cast<MsgConfigureDevices>(env)) {
    HandleConfigure(*m);
  } else if (const auto* m = Cast<DeviceReport>(env)) {
    const profiler::ScopedPhase profile_scope(
        profiler::Phase::kAggregation, init_.round.value);
    HandleReport(*m);
  } else if (Cast<MsgFlush>(env) != nullptr) {
    const profiler::ScopedPhase profile_scope(
        profiler::Phase::kAggregation, init_.round.value);
    HandleFlush();
  } else if (const auto* m = Cast<SecAggAdvertiseMsg>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                              init_.round.value);
    HandleSecAggAdvertise(*m);
  } else if (const auto* m = Cast<SecAggShareKeysMsg>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                              init_.round.value);
    HandleSecAggShares(*m);
  } else if (const auto* m = Cast<SecAggMaskedInputMsg>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                              init_.round.value);
    HandleSecAggMasked(*m);
  } else if (const auto* m = Cast<SecAggUnmaskResponseMsg>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                              init_.round.value);
    HandleSecAggUnmask(*m);
  } else if (const auto* m = Cast<MsgSecAggPhaseTimeout>(env)) {
    HandleSecAggPhaseTimeout(m->phase);
  } else if (Cast<MsgSelfStop>(env) != nullptr) {
    // Anything still unreported this long after the deadline went silent —
    // the device side has already accounted for its own drop, so close the
    // links without double-counting an outcome.
    for (auto& [device, entry] : devices_) {
      if (entry.state == DeviceStateTag::kAssigned) {
        entry.state = DeviceStateTag::kClosed;
        entry.link.closed(ConnectionClosed{"aggregator end of life"});
      }
    }
    system().Stop(id());
  }
}

void AggregatorActor::HandleConfigure(const MsgConfigureDevices& msg) {
  // Ephemeral lifetime: stay alive past the reporting deadline so stragglers
  // get a '#' rejection rather than silence (Table 1: 22% of sessions end
  // in an upload rejected after the window closed).
  if (devices_.empty()) {
    SendAfter(init_.config.reporting_deadline +
                  init_.config.device_participation_cap + Minutes(2),
              id(), MsgSelfStop{});
  }
  const bool secure =
      init_.config.aggregation == protocol::AggregationMode::kSecure;
  if (secure && !secagg_.has_value()) {
    // Vector = quantized update coordinates + one trailing weight word.
    // Under cohort-agreed sparsification only the agreed subset is masked,
    // so the vector (and every PRG expansion) shrinks proportionally.
    secagg_total_coords_ = init_.global_model->TotalParameters();
    secagg_vector_length_ =
        fedavg::KeepCount(secagg_total_coords_,
                          init_.config.secagg.keep_fraction) +
        1;
    secagg_index_seed_ =
        0x5eca66ull ^ (init_.round.value * 0x9E3779B97F4A7C15ull);
    const std::size_t m = msg.links.size();
    secagg_threshold_ = std::max<std::size_t>(
        2, static_cast<std::size_t>(
               std::ceil(init_.config.secagg.threshold_fraction *
                         static_cast<double>(m))));
    secagg_.emplace(secagg_threshold_, secagg_vector_length_,
                    init_.config.secagg.ring_bits);
    // Codec width is the round's configured cohort cap so every participant
    // derives the identical fixed-point scale.
    codec_.emplace(init_.config.secagg.clip,
                   static_cast<std::uint32_t>(std::max<std::size_t>(
                       init_.config.devices_per_aggregator, 2)),
                   init_.config.secagg.ring_bits);
    // Arm the advertise-phase timer.
    SendAfter(init_.config.reporting_deadline / 4, id(),
              MsgSecAggPhaseTimeout{init_.round, 0});
  }

  secagg::ParticipantIndex next_index =
      static_cast<secagg::ParticipantIndex>(devices_.size());
  for (const DeviceLink& link : msg.links) {
    // Configuration phase (Sec. 2.2): plan + checkpoint to each device,
    // picking the plan version the device's runtime supports.
    const auto plan_it = [&]() {
      auto it = init_.plan_bytes->upper_bound(link.runtime_version);
      return it == init_.plan_bytes->begin() ? init_.plan_bytes->end()
                                             : std::prev(it);
    }();
    if (plan_it == init_.plan_bytes->end()) {
      // Device too old for every versioned plan: turn it away.
      analytics::RecordFlight(
          Now(), analytics::JournalSource::kAggregator,
          analytics::JournalEventKind::kCheckinRejected, link.device,
          link.session, init_.round, 0,
          static_cast<std::uint16_t>(analytics::FlightReason::kRuntimeTooOld));
      if (analytics::JournalEnabled()) {
        JournalReport(link, analytics::JournalEventKind::kCheckinRejected,
                      "reason=runtime_too_old");
      }
      link.reject(RejectionNotice{NextWindow(), "runtime too old"});
      init_.context->stats->OnDeviceRejected(Now());
      continue;
    }

    DeviceEntry entry;
    entry.link = link;
    TaskAssignment assignment;
    // The master installed the round's context around this configure message;
    // hand it across the event-queue boundary so the device-side session
    // span links under the round span.
    assignment.trace = telemetry::CurrentTraceContext();
    assignment.round = init_.round;
    assignment.task = init_.task;
    assignment.aggregator = id();
    assignment.plan_bytes = plan_it->second;
    assignment.model_bytes = init_.model_bytes;
    assignment.participation_deadline =
        Now() + init_.config.device_participation_cap;
    if (secure) {
      entry.secagg_index = ++next_index;
      by_index_[entry.secagg_index] = link.device;
      assignment.secagg_enabled = true;
      assignment.secagg_index = entry.secagg_index;
      assignment.secagg_threshold = secagg_threshold_;
      assignment.secagg_vector_length = secagg_vector_length_;
      assignment.secagg_clip = init_.config.secagg.clip;
      assignment.secagg_max_summands = static_cast<std::uint32_t>(
          std::max<std::size_t>(init_.config.devices_per_aggregator, 2));
      assignment.secagg_ring_bits = init_.config.secagg.ring_bits;
      assignment.secagg_index_seed = secagg_index_seed_;
    } else {
      // Plain-path update codec: every cohort member encodes with the same
      // per-round stages so the Aggregator can decode uniformly.
      assignment.codec = init_.config.codec;
    }
    devices_.emplace(link.device, std::move(entry));
    init_.context->stats->OnTraffic(
        Now(), plan_it->second->size() + init_.model_bytes->size(), 0);
    link.assign(assignment);
  }
}

void AggregatorActor::HandleReport(const DeviceReport& report) {
  const auto it = devices_.find(report.device);
  init_.context->stats->OnTraffic(Now(), 0, report.upload_wire_bytes);
  if (it == devices_.end()) return;  // not ours
  if (flushed_ || it->second.state != DeviceStateTag::kAssigned) {
    // Reporting window closed — '#' in the session shape (Table 1).
    analytics::RecordFlight(
        Now(), analytics::JournalSource::kAggregator,
        analytics::JournalEventKind::kReportRejected, report.device,
        it->second.link.session, init_.round, 0,
        static_cast<std::uint16_t>(analytics::FlightReason::kLate));
    if (analytics::JournalEnabled()) {
      JournalReport(it->second.link,
                    analytics::JournalEventKind::kReportRejected,
                    "reason=late");
    }
    it->second.link.report_ack(ReportAck{false, NextWindow()});
    RecordParticipant(report.device,
                      protocol::ParticipantOutcome::kRejectedLate);
    return;
  }

  // Deserialize and fold in; corruption is treated as a device drop.
  fedavg::ClientMetrics metrics = report.metrics;
  if (init_.aggregation_op != plan::AggregationOp::kMetricsOnly) {
    auto update = [&]() -> Result<Checkpoint> {
      if (!report.codec_encoded) {
        return Checkpoint::Deserialize(report.update_bytes);
      }
      // Codec path: payload is the encoded flat weighted delta.
      auto flat = fedavg::DecodeUpdate(report.update_bytes);
      if (!flat.ok()) return flat.status();
      return init_.global_model->Unflatten(*flat);
    }();
    if (!update.ok()) {
      init_.context->stats->OnError(Now(), "corrupt update: " +
                                               update.status().ToString());
      analytics::RecordFlight(
          Now(), analytics::JournalSource::kAggregator,
          analytics::JournalEventKind::kReportRejected, report.device,
          it->second.link.session, init_.round, 0,
          static_cast<std::uint16_t>(analytics::FlightReason::kCorrupt));
      if (analytics::JournalEnabled()) {
        JournalReport(it->second.link,
                      analytics::JournalEventKind::kReportRejected,
                      "reason=corrupt");
      }
      it->second.state = DeviceStateTag::kClosed;
      it->second.link.report_ack(ReportAck{false, NextWindow()});
      RecordParticipant(report.device, protocol::ParticipantOutcome::kDropped);
      return;
    }
    const Status s = accumulator_->Accumulate(std::move(update).value(),
                                              report.weight, metrics);
    if (!s.ok()) {
      init_.context->stats->OnError(Now(), s.ToString());
      analytics::RecordFlight(
          Now(), analytics::JournalSource::kAggregator,
          analytics::JournalEventKind::kReportRejected, report.device,
          it->second.link.session, init_.round, 0,
          static_cast<std::uint16_t>(analytics::FlightReason::kAccumulate));
      if (analytics::JournalEnabled()) {
        JournalReport(it->second.link,
                      analytics::JournalEventKind::kReportRejected,
                      "reason=accumulate");
      }
      it->second.state = DeviceStateTag::kClosed;
      it->second.link.report_ack(ReportAck{false, NextWindow()});
      RecordParticipant(report.device, protocol::ParticipantOutcome::kDropped);
      return;
    }
  } else {
    // Metrics-only accumulation cannot fail.
    const Status s = accumulator_->Accumulate(Checkpoint{}, 1.0f, metrics);
    FL_CHECK(s.ok());
  }

  it->second.state = DeviceStateTag::kReported;
  ++accepted_;
  accepted_wire_bytes_ += report.upload_wire_bytes;
  analytics::RecordFlight(Now(), analytics::JournalSource::kAggregator,
                          analytics::JournalEventKind::kReportAccepted,
                          report.device, it->second.link.session, init_.round);
  if (analytics::JournalEnabled()) {
    JournalReport(it->second.link,
                  analytics::JournalEventKind::kReportAccepted,
                  "weight=" + std::to_string(report.weight) +
                      " wire_bytes=" +
                      std::to_string(report.upload_wire_bytes) + " codec=" +
                      protocol::WireCodecName(init_.config.codec));
  }
  it->second.link.report_ack(ReportAck{true, NextWindow()});
  RecordParticipant(report.device, protocol::ParticipantOutcome::kCompleted);
  Send(init_.master, MsgReportingProgress{id(), accepted_, accepted_wire_bytes_,
                                          metrics, true});
}

void AggregatorActor::CloseRemaining(const std::string& reason,
                                     protocol::ParticipantOutcome outcome) {
  for (auto& [device, entry] : devices_) {
    if (entry.state == DeviceStateTag::kAssigned) {
      entry.state = DeviceStateTag::kClosed;
      entry.link.closed(ConnectionClosed{reason});
      RecordParticipant(device, outcome);
    }
  }
}

void AggregatorActor::HandleFlush() {
  if (flushed_) return;
  flushed_ = true;
  if (init_.config.aggregation == protocol::AggregationMode::kSecure) {
    // A flush mid-protocol: try to finish with whoever committed.
    if (secagg_phase_ <= 1) {
      // Nothing committed yet; the secure aggregate is unrecoverable.
      CloseRemaining("round flushed before secagg commit",
                     protocol::ParticipantOutcome::kAborted);
      FinishAndReport(false, "flushed before commit");
    }
    // Phases 2/3 continue to completion via their own timers.
    return;
  }
  // In-flight devices are left to finish; their late uploads are rejected
  // with '#'. This mirrors the production behaviour behind Table 1 and the
  // "aborted" series of Fig. 7.
  FinishAndReport(true, "");
}

void AggregatorActor::FinishAndReport(bool ok, const std::string& error) {
  if (reported_to_master_) return;
  reported_to_master_ = true;
  MsgAggregatorResult result;
  result.aggregator = id();
  result.ok = ok;
  if (ok) {
    if (init_.aggregation_op != plan::AggregationOp::kMetricsOnly &&
        init_.config.aggregation != protocol::AggregationMode::kSecure) {
      result.delta_sum = accumulator_->delta_sum();
      result.weight_sum = accumulator_->weight_sum();
    }
    result.contributors = accepted_;
  } else {
    result.error = error;
  }
  Send(init_.master, std::move(result));
}

// --------------------------------------------------------------------------
// Secure Aggregation orchestration (Sec. 6). The Aggregator is the protocol
// server for its cohort; phase deadlines tolerate drop-outs at every step.
// --------------------------------------------------------------------------

void AggregatorActor::HandleSecAggAdvertise(const SecAggAdvertiseMsg& msg) {
  if (!secagg_ || secagg_phase_ != 0) return;
  init_.context->stats->OnTraffic(Now(), 0, msg.upload_wire_bytes);
  const auto it = devices_.find(msg.device);
  if (it == devices_.end()) return;
  const Status s = secagg_->CollectAdvertisement(msg.advertisement);
  if (!s.ok()) {
    init_.context->stats->OnError(Now(), s.ToString());
    return;
  }
  // Everyone answered: no need to wait out the timer window.
  if (++secagg_advertised_ == devices_.size()) {
    AdvanceSecAggAfterAdvertising();
  }
}

void AggregatorActor::HandleSecAggPhaseTimeout(int phase) {
  if (!secagg_ || phase != secagg_phase_) return;
  switch (phase) {
    case 0: AdvanceSecAggAfterAdvertising(); break;
    case 1: AdvanceSecAggAfterSharing(); break;
    case 2: AdvanceSecAggAfterCommit(); break;
    case 3: FinalizeSecAgg(); break;
    default: break;
  }
}

void AggregatorActor::AdvanceSecAggAfterAdvertising() {
  if (secagg_phase_ != 0) return;
  auto directory = secagg_->FinishAdvertising();
  if (!directory.ok()) {
    init_.context->stats->OnError(Now(), directory.status().ToString());
    CloseRemaining("secagg advertise failed",
                   protocol::ParticipantOutcome::kDropped);
    FinishAndReport(false, directory.status().ToString());
    return;
  }
  secagg_phase_ = 1;
  for (auto& [device, entry] : devices_) {
    if (entry.state != DeviceStateTag::kAssigned) continue;
    if (directory->count(entry.secagg_index) == 0) continue;
    const std::size_t bytes = directory->size() * 24;
    init_.context->stats->OnTraffic(Now(), bytes, 0);
    entry.link.secagg_directory(SecAggDirectoryMsg{*directory});
  }
  SendAfter(init_.config.reporting_deadline / 4, id(),
            MsgSecAggPhaseTimeout{init_.round, 1});
}

void AggregatorActor::HandleSecAggShares(const SecAggShareKeysMsg& msg) {
  if (!secagg_ || secagg_phase_ != 1) return;
  init_.context->stats->OnTraffic(Now(), 0, msg.upload_wire_bytes);
  const Status s = secagg_->CollectShares(msg.message);
  if (!s.ok()) {
    init_.context->stats->OnError(Now(), s.ToString());
    return;
  }
  if (++secagg_shared_ == secagg_advertised_) {
    AdvanceSecAggAfterSharing();
  }
}

void AggregatorActor::AdvanceSecAggAfterSharing() {
  if (secagg_phase_ != 1) return;
  auto u1 = secagg_->FinishSharing();
  if (!u1.ok()) {
    init_.context->stats->OnError(Now(), u1.status().ToString());
    CloseRemaining("secagg sharing failed",
                   protocol::ParticipantOutcome::kDropped);
    FinishAndReport(false, u1.status().ToString());
    return;
  }
  secagg_phase_ = 2;
  secagg_u1_size_ = u1->size();
  for (auto& [device, entry] : devices_) {
    if (entry.state != DeviceStateTag::kAssigned) continue;
    const bool in_u1 =
        std::find(u1->begin(), u1->end(), entry.secagg_index) != u1->end();
    if (!in_u1) continue;
    SecAggSharesMsg out;
    out.shares = secagg_->SharesFor(entry.secagg_index);
    out.u1 = *u1;
    std::size_t bytes = 16;
    for (const auto& sh : out.shares) bytes += sh.ciphertext.size() + 8;
    init_.context->stats->OnTraffic(Now(), bytes, 0);
    entry.link.secagg_shares(out);
  }
  // Commit phase runs until the round's reporting deadline.
  SendAfter(init_.config.reporting_deadline / 2, id(),
            MsgSecAggPhaseTimeout{init_.round, 2});
}

void AggregatorActor::HandleSecAggMasked(const SecAggMaskedInputMsg& msg) {
  if (!secagg_ || secagg_phase_ != 2) return;
  init_.context->stats->OnTraffic(Now(), 0, msg.upload_wire_bytes);
  const auto it = devices_.find(msg.device);
  if (it == devices_.end()) return;
  const Status s = secagg_->CollectMaskedInput(msg.input);
  if (!s.ok()) {
    init_.context->stats->OnError(Now(), s.ToString());
    return;
  }
  it->second.metrics = msg.metrics;  // plaintext metrics; sums stay masked
  it->second.state = DeviceStateTag::kReported;
  ++accepted_;
  accepted_wire_bytes_ += msg.upload_wire_bytes;
  analytics::RecordFlight(Now(), analytics::JournalSource::kAggregator,
                          analytics::JournalEventKind::kReportAccepted,
                          msg.device, it->second.link.session, init_.round,
                          /*aux_a=*/1);
  if (analytics::JournalEnabled()) {
    // Tagged mode=secagg: masked inputs may legally commit after the round's
    // closing phase (HandleFlush lets phases 2/3 run to completion), so the
    // analyzer's accept-after-close invariant exempts these records.
    JournalReport(it->second.link,
                  analytics::JournalEventKind::kReportAccepted,
                  "mode=secagg wire_bytes=" +
                      std::to_string(msg.upload_wire_bytes));
  }
  it->second.link.report_ack(ReportAck{true, NextWindow()});
  RecordParticipant(msg.device, protocol::ParticipantOutcome::kCompleted);
  Send(init_.master,
       MsgReportingProgress{id(), accepted_, accepted_wire_bytes_,
                            it->second.metrics, true});
  if (accepted_ == secagg_u1_size_) {
    AdvanceSecAggAfterCommit();  // every key-holder committed: no stragglers
  }
}

void AggregatorActor::AdvanceSecAggAfterCommit() {
  if (secagg_phase_ != 2) return;
  auto request = secagg_->FinishCommit();
  if (!request.ok()) {
    init_.context->stats->OnError(Now(), request.status().ToString());
    CloseRemaining("secagg commit failed",
                   protocol::ParticipantOutcome::kDropped);
    FinishAndReport(false, request.status().ToString());
    return;
  }
  secagg_phase_ = 3;
  for (auto& [device, entry] : devices_) {
    if (entry.state == DeviceStateTag::kClosed) continue;
    const bool survivor =
        std::find(request->survivors.begin(), request->survivors.end(),
                  entry.secagg_index) != request->survivors.end();
    if (!survivor) continue;
    init_.context->stats->OnTraffic(
        Now(), 8 * (request->dropped.size() + request->survivors.size()), 0);
    entry.link.secagg_unmask(SecAggUnmaskMsg{*request});
  }
  SendAfter(init_.config.reporting_deadline / 4, id(),
            MsgSecAggPhaseTimeout{init_.round, 3});
}

void AggregatorActor::HandleSecAggUnmask(const SecAggUnmaskResponseMsg& msg) {
  if (!secagg_ || secagg_phase_ != 3) return;
  init_.context->stats->OnTraffic(Now(), 0, msg.upload_wire_bytes);
  const Status s = secagg_->CollectUnmaskingResponse(msg.response);
  if (!s.ok()) {
    init_.context->stats->OnError(Now(), s.ToString());
    return;
  }
  // Finalize as soon as every survivor answered; the timer handles the
  // drop-out tail (the protocol itself only needs the Shamir threshold).
  if (++secagg_unmask_responses_ == secagg_->committed().size()) {
    FinalizeSecAgg();
  }
}

void AggregatorActor::FinalizeSecAgg() {
  if (secagg_phase_ != 3 || reported_to_master_) return;
  auto sum = secagg_->Finalize();
  CloseRemaining("secagg round over", protocol::ParticipantOutcome::kAborted);
  if (!sum.ok()) {
    init_.context->stats->OnError(Now(), sum.status().ToString());
    FinishAndReport(false, sum.status().ToString());
    return;
  }
  // Decode: leading words are fixed-point update coordinates, the last word
  // is the integer weight sum. The weight word is decoded as a raw reduced
  // value (weights are non-negative, so no sign extension), which bounds
  // legal weight sums to the ring width.
  const std::size_t keep = secagg_vector_length_ - 1;
  std::vector<float> flat(secagg_total_coords_, 0.0f);
  if (keep == secagg_total_coords_) {
    for (std::size_t i = 0; i < keep; ++i) {
      flat[i] = codec_->DecodeSum((*sum)[i]);
    }
  } else {
    // Cohort-agreed sparsification: the masked vector carried only the
    // agreed coordinate subset; rescale by total/keep so the sparse sum is
    // an unbiased estimate of the dense one.
    const auto agreed = fedavg::AgreedIndexSet(
        secagg_index_seed_, secagg_total_coords_, keep);
    const float rescale = static_cast<float>(secagg_total_coords_) /
                          static_cast<float>(keep);
    for (std::size_t i = 0; i < keep; ++i) {
      flat[agreed[i]] = codec_->DecodeSum((*sum)[i]) * rescale;
    }
  }
  const float weight_sum = static_cast<float>((*sum)[keep]);

  auto delta = init_.global_model->Unflatten(flat);
  if (!delta.ok()) {
    FinishAndReport(false, delta.status().ToString());
    return;
  }

  reported_to_master_ = true;
  MsgAggregatorResult result;
  result.aggregator = id();
  result.ok = true;
  result.delta_sum = std::move(delta).value();
  result.weight_sum = weight_sum;
  result.contributors = secagg_->committed().size();
  Send(init_.master, std::move(result));
}

}  // namespace fl::server
