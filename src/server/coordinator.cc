#include "src/server/coordinator.h"

#include <algorithm>

#include "src/analytics/flight_dump.h"
#include "src/analytics/journal.h"
#include "src/common/logging.h"
#include "src/server/master_aggregator.h"

namespace fl::server {
namespace {

template <typename T>
const T* Cast(const actor::Envelope& env) {
  return std::any_cast<T>(&env.payload);
}

void JournalOutcome(SimTime now, RoundId round, std::string detail) {
  analytics::AppendJournal(now, analytics::JournalSource::kCoordinator,
                           analytics::JournalEventKind::kRoundOutcome,
                           DeviceId{}, SessionId{}, round, std::move(detail));
}

void FlightOutcome(SimTime now, RoundId round, protocol::RoundOutcome outcome,
                   analytics::FlightReason reason,
                   std::size_t contributors = 0) {
  analytics::RecordFlight(now, analytics::JournalSource::kCoordinator,
                          analytics::JournalEventKind::kRoundOutcome,
                          DeviceId{}, SessionId{}, round,
                          static_cast<std::uint32_t>(contributors),
                          analytics::PackOutcomeReason(outcome, reason));
}

}  // namespace

CoordinatorActor::CoordinatorActor(Init init) : init_(std::move(init)) {
  FL_CHECK(init_.context != nullptr);
  FL_CHECK(!init_.tasks.empty());
}

void CoordinatorActor::OnStart() {
  for (FLTaskDescriptor& task : init_.tasks) {
    TaskState st;
    st.plan_bytes = std::make_shared<const PlanBytesByVersion>(
        SerializePlanSet(task.plans));
    st.descriptor = std::move(task);
    st.next_due = Now();
    tasks_.push_back(std::move(st));
  }
  init_.tasks.clear();
  RefreshModelBytes();
  for (ActorId sel : init_.selectors) {
    Send(sel, MsgCoordinatorHello{id()});
  }
  BroadcastQuota();
  SendAfter(init_.tick_period, id(), MsgCoordinatorTick{});
}

void CoordinatorActor::OnStop() {
  if (init_.lock_epoch != 0) {
    (void)init_.context->locks->Release(init_.population, name(),
                                        init_.lock_epoch);
  }
}

void CoordinatorActor::RefreshModelBytes() {
  model_ = std::make_shared<const Checkpoint>(
      init_.context->model_store->Latest());
  model_bytes_ = std::make_shared<const Bytes>(model_->Serialize());
}

void CoordinatorActor::OnMessage(const actor::Envelope& env) {
  // Coordinator work is round planning / plan distribution: the paper's
  // configuration phase.
  const profiler::ScopedPhase profile_scope(profiler::Phase::kConfiguration);
  if (Cast<MsgCoordinatorTick>(env) != nullptr) {
    HandleTick();
  } else if (const auto* m = Cast<MsgSelectorStatus>(env)) {
    selector_waiting_[m->selector] = m->waiting;
  } else if (const auto* m = Cast<MsgRoundComplete>(env)) {
    HandleComplete(*m);
  } else if (const auto* m = Cast<MsgRoundAbandoned>(env)) {
    HandleAbandoned(*m);
  } else if (const auto* m = Cast<MsgUpdateRoundConfig>(env)) {
    for (TaskState& task : tasks_) {
      if (m->task.value == 0 || task.descriptor.id == m->task) {
        task.descriptor.round_config = m->config;
      }
    }
  } else if (const auto* m = Cast<actor::DeathNotice>(env)) {
    if (active_ && m->died == active_->master) {
      // "If the Master Aggregator fails, the current round of the FL task it
      // manages will fail, but will then be restarted by the Coordinator"
      // (Sec. 4.4).
      init_.context->stats->OnError(Now(), "master aggregator lost; round " +
                                               std::to_string(
                                                   active_->round.value) +
                                               " failed");
      init_.context->stats->OnRoundOutcome(Now(), active_->round,
                                           protocol::RoundOutcome::kFailed, 0);
      FlightOutcome(Now(), active_->round, protocol::RoundOutcome::kFailed,
                    analytics::FlightReason::kMasterLost);
      if (analytics::JournalEnabled()) {
        JournalOutcome(Now(), active_->round,
                       "outcome=failed reason=master_lost");
      }
      tasks_[active_->task_index].next_due = Now();
      active_.reset();
      BroadcastQuota();
    }
  }
}

void CoordinatorActor::HandleTick() {
  // Keep the population lock alive; losing it means another Coordinator owns
  // this population and this instance must stand down.
  if (init_.lock_epoch != 0) {
    const Status s = init_.context->locks->Renew(init_.population, name(),
                                                 init_.lock_epoch, Now());
    if (!s.ok()) {
      FL_LOG(Warning) << "coordinator " << name()
                      << " lost population lock: " << s.ToString();
      system().Stop(id());
      return;
    }
  }

  if (!active_) {
    const auto due = NextDueTask();
    // Appendix A: "the FL server schedules an FL task for execution only
    // once a desired number of devices are available" — don't burn a round
    // attempt while the waiting pools are too thin to reach the minimum.
    if (due.has_value()) {
      std::size_t waiting = 0;
      for (const auto& [sel, count] : selector_waiting_) waiting += count;
      const auto& cfg = tasks_[*due].descriptor.round_config;
      if (waiting >= cfg.MinSelectionCount()) {
        StartRound(*due);
      }
    }
  } else {
    // Keep feeding the in-flight selection phase.
    const auto& cfg = tasks_[active_->task_index].descriptor.round_config;
    const std::size_t target = cfg.SelectionTarget();
    std::size_t per_selector = init_.selectors.empty()
                                   ? 0
                                   : (target + init_.selectors.size() - 1) /
                                         init_.selectors.size();
    for (ActorId sel : init_.selectors) {
      Send(sel, MsgForwardDevices{per_selector, active_->master});
    }
  }
  BroadcastQuota();
  SendAfter(init_.tick_period, id(), MsgCoordinatorTick{});
}

std::optional<std::size_t> CoordinatorActor::NextDueTask() const {
  // Round-robin from the rotation cursor over due tasks.
  for (std::size_t k = 0; k < tasks_.size(); ++k) {
    const std::size_t i = (rotation_cursor_ + k) % tasks_.size();
    if (tasks_[i].next_due <= Now()) return i;
  }
  return std::nullopt;
}

void CoordinatorActor::StartRound(std::size_t task_index) {
  TaskState& task = tasks_[task_index];
  ++round_counter_;
  const RoundId round{(init_.lock_epoch << 32) | round_counter_};

  MasterAggregatorActor::Init minit;
  minit.round = round;
  minit.task = task.descriptor.id;
  minit.coordinator = id();
  minit.config = task.descriptor.round_config;
  // The plan's server part picks the aggregation op; all versions share it.
  minit.aggregation_op =
      task.plan_bytes->empty()
          ? plan::AggregationOp::kWeightedFedAvg
          : task.descriptor.plans.plans().begin()->second.server.aggregation;
  minit.global_model = model_;
  minit.model_bytes = model_bytes_;
  minit.plan_bytes = task.plan_bytes;
  minit.context = init_.context;

  const ActorId master = system().Spawn<MasterAggregatorActor>(
      "master-r" + std::to_string(round.value), std::move(minit));
  system().Watch(master, id());
  active_ = ActiveRound{round, task_index, master, Now()};
  rotation_cursor_ = (task_index + 1) % tasks_.size();

  // Kick the selectors immediately.
  const std::size_t target = task.descriptor.round_config.SelectionTarget();
  const std::size_t per_selector =
      init_.selectors.empty()
          ? 0
          : (target + init_.selectors.size() - 1) / init_.selectors.size();
  for (ActorId sel : init_.selectors) {
    Send(sel, MsgForwardDevices{per_selector, master});
  }
  BroadcastQuota();
}

void CoordinatorActor::HandleComplete(const MsgRoundComplete& msg) {
  if (!active_ || msg.round != active_->round) return;
  TaskState& task = tasks_[active_->task_index];

  fedavg::FedAvgAccumulator acc(
      task.descriptor.plans.plans().begin()->second.server.aggregation,
      *model_);
  Checkpoint delta = msg.delta_sum;
  Status s = acc.AccumulateSum(std::move(delta), msg.weight_sum,
                               msg.contributors);
  if (s.ok()) {
    auto next_model = acc.Finalize(*model_);
    if (next_model.ok()) {
      RoundRecord record;
      record.task = task.descriptor.id;
      record.task_name = task.descriptor.name;
      record.round_number = ++task.rounds_run;
      record.committed_at = Now();
      record.contributors = msg.contributors;
      record.metrics = msg.metrics.All();
      // Fig. 1 step 6: only now does anything touch persistent storage.
      init_.context->model_store->Commit(std::move(next_model).value(),
                                         std::move(record));
      RefreshModelBytes();
      ++rounds_committed_;
      init_.context->stats->OnRoundOutcome(
          Now(), msg.round, protocol::RoundOutcome::kCommitted,
          msg.contributors);
      init_.context->stats->OnRoundTiming(Now(), msg.round,
                                          msg.selection_duration,
                                          msg.round_duration);
      FlightOutcome(Now(), msg.round, protocol::RoundOutcome::kCommitted,
                    analytics::FlightReason::kNone, msg.contributors);
      if (analytics::JournalEnabled()) {
        JournalOutcome(Now(), msg.round,
                       "outcome=committed contributors=" +
                           std::to_string(msg.contributors));
      }
    } else {
      s = next_model.status();
    }
  }
  if (!s.ok()) {
    init_.context->stats->OnError(Now(), "commit failed: " + s.ToString());
    init_.context->stats->OnRoundOutcome(Now(), msg.round,
                                         protocol::RoundOutcome::kFailed, 0);
    FlightOutcome(Now(), msg.round, protocol::RoundOutcome::kFailed,
                  analytics::FlightReason::kCommitFailed);
    if (analytics::JournalEnabled()) {
      JournalOutcome(Now(), msg.round, "outcome=failed reason=commit");
    }
  }
  // Master self-reaps at end of life (it lingers to reject stragglers).
  task.next_due = Now() + task.descriptor.round_cadence;
  active_.reset();
  BroadcastQuota();
}

void CoordinatorActor::HandleAbandoned(const MsgRoundAbandoned& msg) {
  if (!active_ || msg.round != active_->round) return;
  init_.context->stats->OnRoundOutcome(Now(), msg.round, msg.outcome, 0);
  FlightOutcome(Now(), msg.round, msg.outcome, msg.flight_reason);
  if (analytics::JournalEnabled()) {
    JournalOutcome(
        Now(), msg.round,
        "outcome=" + std::string(protocol::RoundOutcomeName(msg.outcome)) +
            " reason=" + msg.reason);
  }
  ++rounds_abandoned_;
  TaskState& task = tasks_[active_->task_index];
  // Back off a little before retrying an abandoned round.
  task.next_due = Now() + task.descriptor.round_cadence;
  // Master self-reaps at end of life (it lingers to reject stragglers).
  active_.reset();
  BroadcastQuota();
}

void CoordinatorActor::BroadcastQuota() {
  MsgSelectorQuota quota;
  quota.accepting = init_.pipelined_selection || !active_.has_value();
  quota.max_waiting = init_.max_waiting_per_selector;
  quota.estimated_population = init_.context->estimated_population;
  for (ActorId sel : init_.selectors) {
    Send(sel, quota);
  }
}

}  // namespace fl::server
