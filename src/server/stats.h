// Server-side analytics sink (Sec. 5): "Server side, we similarly collect
// information such as how many devices where accepted and rejected per
// training round, the timing of the various phases of the round, throughput
// in terms of uploaded and downloaded data, errors, and so on."
//
// Implemented by the fleet simulator / tests; every server actor reports
// through this interface so benches can regenerate Figs. 5-9.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/id.h"
#include "src/common/sim_time.h"
#include "src/protocol/round_config.h"

namespace fl::server {

class ServerStatsSink {
 public:
  virtual ~ServerStatsSink() = default;

  virtual void OnRoundOutcome(SimTime t, RoundId round,
                              protocol::RoundOutcome outcome,
                              std::size_t contributors) = 0;
  virtual void OnParticipantOutcome(SimTime t, RoundId round, DeviceId device,
                                    protocol::ParticipantOutcome outcome) = 0;
  virtual void OnRoundTiming(SimTime t, RoundId round,
                             Duration selection_duration,
                             Duration round_duration) = 0;
  virtual void OnDeviceAccepted(SimTime t) = 0;
  virtual void OnDeviceRejected(SimTime t) = 0;
  // Traffic as seen at the server NIC (Fig. 9): download = server->device.
  virtual void OnTraffic(SimTime t, std::uint64_t download_bytes,
                         std::uint64_t upload_bytes) = 0;
  virtual void OnError(SimTime t, const std::string& what) = 0;
};

// No-op sink for tests that do not care.
class NullStatsSink final : public ServerStatsSink {
 public:
  void OnRoundOutcome(SimTime, RoundId, protocol::RoundOutcome,
                      std::size_t) override {}
  void OnParticipantOutcome(SimTime, RoundId, DeviceId,
                            protocol::ParticipantOutcome) override {}
  void OnRoundTiming(SimTime, RoundId, Duration, Duration) override {}
  void OnDeviceAccepted(SimTime) override {}
  void OnDeviceRejected(SimTime) override {}
  void OnTraffic(SimTime, std::uint64_t, std::uint64_t) override {}
  void OnError(SimTime, const std::string&) override {}
};

}  // namespace fl::server
