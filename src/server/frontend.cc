#include "src/server/frontend.h"

#include "src/plan/plan.h"

namespace fl::server {

PlanBytesByVersion SerializePlanSet(const plan::VersionedPlanSet& plans) {
  PlanBytesByVersion out;
  for (const auto& [version, p] : plans.plans()) {
    out.emplace(version, std::make_shared<const Bytes>(p.Serialize()));
  }
  return out;
}

bool ServerFrontend::CheckIn(const CheckInRequest& request, DeviceLink link) {
  ++checkins_;
  // Attestation gate (Sec. 3): only genuine devices may participate.
  if (!attestation_->Verify(request.attestation)) {
    ++attestation_failures_;
    context_->stats->OnError(system_->now(),
                             "attestation failure from device " +
                                 std::to_string(request.device.value));
    return false;
  }
  if (selectors_.empty()) return false;
  // Stable routing: devices hash onto Selectors ("globally distributed,
  // close to devices" in production; a uniform hash here).
  const std::size_t idx =
      static_cast<std::size_t>(request.device.value * 0x9e3779b97f4a7c15ULL %
                               selectors_.size());
  system_->Send(ActorId{}, selectors_[idx], MsgDeviceArrived{std::move(link)});
  return true;
}

void ServerFrontend::Report(ActorId aggregator, DeviceReport report) {
  system_->Send(ActorId{}, aggregator, std::move(report));
}

void ServerFrontend::SecAggAdvertise(ActorId aggregator,
                                     SecAggAdvertiseMsg msg) {
  system_->Send(ActorId{}, aggregator, std::move(msg));
}

void ServerFrontend::SecAggShareKeys(ActorId aggregator,
                                     SecAggShareKeysMsg msg) {
  system_->Send(ActorId{}, aggregator, std::move(msg));
}

void ServerFrontend::SecAggMaskedInput(ActorId aggregator,
                                       SecAggMaskedInputMsg msg) {
  system_->Send(ActorId{}, aggregator, std::move(msg));
}

void ServerFrontend::SecAggUnmaskResponse(ActorId aggregator,
                                          SecAggUnmaskResponseMsg msg) {
  system_->Send(ActorId{}, aggregator, std::move(msg));
}

}  // namespace fl::server
