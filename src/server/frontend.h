// ServerFrontend: the device-facing edge of the FL server. Terminates
// device check-ins (verifying attestation, Sec. 3), routes each device to a
// Selector, and relays device->actor messages (reports, SecAgg rounds).
//
// In production this is the load-balancing RPC edge; here it is the bridge
// between the fleet simulator's device agents and the actor system.
#pragma once

#include <vector>

#include "src/actor/actor.h"
#include "src/device/attestation.h"
#include "src/server/messages.h"
#include "src/server/task.h"

namespace fl::server {

class ServerFrontend {
 public:
  ServerFrontend(actor::ActorSystem* system, ServerContext* context,
                 const device::AttestationAuthority* attestation)
      : system_(system), context_(context), attestation_(attestation) {}

  void AddSelector(ActorId selector) { selectors_.push_back(selector); }
  const std::vector<ActorId>& selectors() const { return selectors_; }

  // Device check-in (Sec. 2.2 Selection). Returns false — synchronously
  // rejecting the stream — when attestation fails; otherwise the device will
  // hear back through its link callbacks.
  bool CheckIn(const CheckInRequest& request, DeviceLink link);

  // Reporting phase upload.
  void Report(ActorId aggregator, DeviceReport report);

  // Secure Aggregation device->server messages.
  void SecAggAdvertise(ActorId aggregator, SecAggAdvertiseMsg msg);
  void SecAggShareKeys(ActorId aggregator, SecAggShareKeysMsg msg);
  void SecAggMaskedInput(ActorId aggregator, SecAggMaskedInputMsg msg);
  void SecAggUnmaskResponse(ActorId aggregator, SecAggUnmaskResponseMsg msg);

  std::uint64_t checkins() const { return checkins_; }
  std::uint64_t attestation_failures() const { return attestation_failures_; }

 private:
  actor::ActorSystem* system_;
  ServerContext* context_;
  const device::AttestationAuthority* attestation_;
  std::vector<ActorId> selectors_;
  std::uint64_t checkins_ = 0;
  std::uint64_t attestation_failures_ = 0;
};

}  // namespace fl::server
