// Adapter that bridges the ServerStatsSink interface into the telemetry
// MetricsRegistry, so the Fig. 5–9 benches (FleetStats) and the
// Prometheus/JSON dumps consume ONE data path: every server actor keeps
// reporting through ServerStatsSink, and this sink tees each event into
// registry counters/histograms before forwarding to the wrapped sink.
//
// With telemetry disabled the adapter is a single branch per event and the
// inner sink sees exactly what it always saw; wrapping a NullStatsSink (or
// nothing) keeps null behavior intact.
#pragma once

#include "src/server/stats.h"
#include "src/telemetry/metrics.h"

namespace fl::server {

class TelemetryStatsSink final : public ServerStatsSink {
 public:
  // `inner` may be null (events are then only mirrored into the registry).
  explicit TelemetryStatsSink(ServerStatsSink* inner = nullptr);

  void OnRoundOutcome(SimTime t, RoundId round,
                      protocol::RoundOutcome outcome,
                      std::size_t contributors) override;
  void OnParticipantOutcome(SimTime t, RoundId round, DeviceId device,
                            protocol::ParticipantOutcome outcome) override;
  void OnRoundTiming(SimTime t, RoundId round, Duration selection_duration,
                     Duration round_duration) override;
  void OnDeviceAccepted(SimTime t) override;
  void OnDeviceRejected(SimTime t) override;
  void OnTraffic(SimTime t, std::uint64_t download_bytes,
                 std::uint64_t upload_bytes) override;
  void OnError(SimTime t, const std::string& what) override;

 private:
  ServerStatsSink* inner_;

  // Resolved once in the constructor; registry instruments are never
  // deallocated, so the raw pointers stay valid for the sink's lifetime.
  telemetry::Counter* rounds_committed_;
  telemetry::Counter* rounds_abandoned_;
  telemetry::Counter* participants_completed_;
  telemetry::Counter* participants_aborted_;
  telemetry::Counter* participants_dropped_;
  telemetry::Counter* participants_rejected_late_;
  telemetry::Counter* devices_accepted_;
  telemetry::Counter* devices_rejected_;
  telemetry::Counter* download_bytes_;
  telemetry::Counter* upload_bytes_;
  telemetry::Counter* errors_;
  telemetry::Histogram* round_contributors_;
  telemetry::Histogram* selection_seconds_;
  telemetry::Histogram* round_seconds_;
};

}  // namespace fl::server
