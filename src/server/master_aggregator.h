// Master Aggregator actor (Sec. 4.2): ephemeral per-round owner. "Master
// Aggregators manage the rounds of each FL task. In order to scale with the
// number of devices and update size, they make dynamic decisions to spawn
// one or more Aggregators to which work is delegated."
//
// The master also runs the round's phase windows (Sec. 2.2): it accepts
// forwarded devices until the participant target or the selection timeout,
// configures Aggregators, tracks reporting progress, and finalizes or
// abandons the round.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "src/actor/actor.h"
#include "src/analytics/flight_dump.h"
#include "src/fedavg/server_aggregate.h"
#include "src/server/messages.h"
#include "src/server/task.h"

namespace fl::server {

class MasterAggregatorActor final : public actor::Actor {
 public:
  struct Init {
    RoundId round;
    TaskId task;
    ActorId coordinator;
    protocol::RoundConfig config;
    plan::AggregationOp aggregation_op = plan::AggregationOp::kWeightedFedAvg;
    std::shared_ptr<const Checkpoint> global_model;
    std::shared_ptr<const Bytes> model_bytes;
    std::shared_ptr<const PlanBytesByVersion> plan_bytes;
    ServerContext* context = nullptr;
  };

  explicit MasterAggregatorActor(Init init);

  void OnStart() override;
  void OnMessage(const actor::Envelope& env) override;

  std::size_t devices_received() const { return devices_received_; }
  std::size_t aggregator_count() const { return aggregators_.size(); }

 private:
  enum class Phase { kSelection, kReporting, kClosing, kDone };

  void HandleForwarded(std::vector<DeviceLink> links);
  void BeginReporting();
  // Opens the round/phase spans (telemetry on) — Sec. 2.2's Selection →
  // Configuration → Reporting windows become nested Perfetto slices.
  void OpenRoundSpans();
  void CloseRoundSpans(const char* outcome, std::size_t contributors);
  void HandleProgress(const MsgReportingProgress& msg);
  void HandleAggregatorResult(const MsgAggregatorResult& msg);
  void HandleAggregatorDeath(ActorId who);
  void FlushAll();
  void MaybeFinishRound();
  void Abandon(protocol::RoundOutcome outcome, const std::string& reason,
               analytics::FlightReason flight_reason);
  // This round's causal context, installed around every send so timers,
  // aggregator spawns, and coordinator messages carry the round + its span.
  telemetry::TraceContext RoundCtx() const {
    return telemetry::TraceContext{init_.round.value, 0, 0, round_span_};
  }

  Init init_;
  Phase phase_ = Phase::kSelection;
  SimTime started_at_;
  SimTime configured_at_;
  std::vector<DeviceLink> pending_links_;  // buffered during selection
  std::size_t devices_received_ = 0;

  struct AggState {
    bool done = false;
    std::size_t accepted = 0;
    // Cumulative accepted upload bytes (rides along with progress, so it
    // stays consistent with the journaled accepts even if the aggregator
    // later crashes — the journal keeps those accepts too).
    std::uint64_t wire_bytes = 0;
  };
  std::map<ActorId, AggState> aggregators_;
  std::size_t results_outstanding_ = 0;
  std::size_t total_accepted_ = 0;
  bool flushed_ = false;

  std::optional<fedavg::FedAvgAccumulator> combined_;

  // Telemetry span ids (0 = not recording). The round span covers the whole
  // actor lifetime; exactly one phase span is open at a time under it.
  std::uint64_t round_span_ = 0;
  std::uint64_t selection_span_ = 0;
  std::uint64_t reporting_span_ = 0;
};

}  // namespace fl::server
