// FL task descriptors and the shared server context handed to actors.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/id.h"
#include "src/common/rng.h"
#include "src/plan/versioning.h"
#include "src/protocol/pace_steering.h"
#include "src/protocol/round_config.h"
#include "src/server/lock_service.h"
#include "src/server/model_store.h"
#include "src/server/stats.h"

namespace fl::server {

// "An FL task is a specific computation for an FL population, such as
// training to be performed with given hyperparameters, or evaluation of
// trained models on local device data" (Sec. 2.1).
struct FLTaskDescriptor {
  TaskId id;
  std::string name;
  plan::VersionedPlanSet plans;
  protocol::RoundConfig round_config;
  // Minimum time between consecutive rounds of this task.
  Duration round_cadence = Seconds(10);
};

// Pre-serialized plan bytes per supported runtime version, shared across the
// round's actors and assignments.
using PlanBytesByVersion =
    std::map<std::uint32_t, std::shared_ptr<const Bytes>>;

PlanBytesByVersion SerializePlanSet(const plan::VersionedPlanSet& plans);

// Shared, actor-external services. Owned by the embedding application (the
// fleet simulator / tests); must outlive the actor system.
struct ServerContext {
  LockService* locks = nullptr;
  ModelStore* model_store = nullptr;
  ServerStatsSink* stats = nullptr;
  const protocol::PaceSteeringPolicy* pace = nullptr;
  Rng* rng = nullptr;  // server-side randomness (single-threaded sim use)
  std::size_t estimated_population = 0;  // updated by the embedder
};

}  // namespace fl::server
