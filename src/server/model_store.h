// Persistent model storage (Fig. 1 steps 2 and 6): the server "reads model
// checkpoint from persistent storage" at round start and "writes global
// model checkpoint into persistent storage" once a round commits.
//
// "No information for a round is written to persistent storage until it is
// fully aggregated by the Master Aggregator" (Sec. 4.2) — only committed
// global checkpoints and round metric summaries live here, never per-device
// updates.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/id.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/fedavg/metrics.h"
#include "src/tensor/checkpoint.h"

namespace fl::server {

// Materialized round record (Sec. 7.4: metrics "are annotated with
// additional data, including metadata like the source FL task's name, FL
// round number within the task").
struct RoundRecord {
  TaskId task;
  std::string task_name;
  std::uint64_t round_number = 0;
  SimTime committed_at;
  std::size_t contributors = 0;
  std::map<std::string, fedavg::MetricsAccumulator::Summary> metrics;
};

class ModelStore {
 public:
  explicit ModelStore(Checkpoint initial_model)
      : model_(std::move(initial_model)) {}

  const Checkpoint& Latest() const { return model_; }
  std::uint64_t version() const { return version_; }

  void Commit(Checkpoint new_model, RoundRecord record);

  const std::vector<RoundRecord>& history() const { return history_; }

  // Metric trajectory across committed rounds for one task, for the
  // engineer-facing analysis tools (Sec. 7.4).
  std::vector<std::pair<std::uint64_t, double>> MetricHistory(
      const std::string& task_name, const std::string& metric) const;

 private:
  Checkpoint model_;
  std::uint64_t version_ = 0;
  std::vector<RoundRecord> history_;
};

}  // namespace fl::server
