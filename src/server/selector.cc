#include "src/server/selector.h"

#include "src/analytics/flight_dump.h"
#include "src/analytics/journal.h"

namespace fl::server {
namespace {

template <typename T>
const T* Cast(const actor::Envelope& env) {
  return std::any_cast<T>(&env.payload);
}

}  // namespace

SelectorActor::SelectorActor(Init init)
    : init_(std::move(init)), quota_max_waiting_(init_.max_waiting) {
  FL_CHECK(init_.context != nullptr);
}

void SelectorActor::OnStart() {
  // The coordinator may not exist yet (it introduces itself with a Hello);
  // only watch a real id — watching a placeholder would fire an immediate
  // synthetic death notice and trigger a bogus respawn.
  if (init_.coordinator.value != 0) {
    system().Watch(init_.coordinator, id());
  }
  SendAfter(init_.tick_period, id(), MsgSelectorTick{});
}

void SelectorActor::OnMessage(const actor::Envelope& env) {
  if (const auto* m = Cast<MsgDeviceArrived>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kCheckin);
    HandleArrival(*m);
  } else if (const auto* m = Cast<MsgSelectorQuota>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSelection);
    HandleQuota(*m);
  } else if (const auto* m = Cast<MsgForwardDevices>(env)) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSelection);
    HandleForward(*m);
  } else if (Cast<MsgSelectorTick>(env) != nullptr) {
    const profiler::ScopedPhase profile_scope(profiler::Phase::kSelection);
    HandleTick();
  } else if (const auto* m = Cast<MsgCoordinatorHello>(env)) {
    init_.coordinator = m->coordinator;
    system().Watch(init_.coordinator, id());
  } else if (const auto* m = Cast<actor::DeathNotice>(env)) {
    if (m->died.value != 0 && m->died == init_.coordinator) {
      HandleCoordinatorDeath(m->crashed);
    }
  }
}

void SelectorActor::RejectLink(const DeviceLink& link,
                               const std::string& reason) {
  ++total_rejected_;
  init_.context->stats->OnDeviceRejected(Now());
  analytics::RecordFlight(
      Now(), analytics::JournalSource::kSelector,
      analytics::JournalEventKind::kCheckinRejected, link.device, link.session,
      RoundId{}, 0,
      static_cast<std::uint16_t>(analytics::FlightReasonForDetail(reason)));
  if (analytics::JournalEnabled()) {
    analytics::AppendJournal(Now(), analytics::JournalSource::kSelector,
                             analytics::JournalEventKind::kCheckinRejected,
                             link.device, link.session, RoundId{},
                             "reason=" + reason);
  }
  link.reject(RejectionNotice{
      init_.context->pace->SuggestWindow(Now(),
                                         init_.context->estimated_population,
                                         Duration{}, *init_.context->rng),
      reason});
}

void SelectorActor::HandleArrival(const MsgDeviceArrived& msg) {
  // Local accept/reject decision based on the Coordinator's quota.
  if (!accepting_ || waiting_.size() >= quota_max_waiting_) {
    RejectLink(msg.link, accepting_ ? "waiting pool full" : "not accepting");
    return;
  }
  ++total_accepted_;
  analytics::RecordFlight(Now(), analytics::JournalSource::kSelector,
                          analytics::JournalEventKind::kCheckinAccepted,
                          msg.link.device, msg.link.session);
  if (analytics::JournalEnabled()) {
    analytics::AppendJournal(Now(), analytics::JournalSource::kSelector,
                             analytics::JournalEventKind::kCheckinAccepted,
                             msg.link.device, msg.link.session);
  }
  waiting_.push_back(msg.link);
}

void SelectorActor::HandleQuota(const MsgSelectorQuota& msg) {
  accepting_ = msg.accepting;
  quota_max_waiting_ = msg.max_waiting;
  // Shed over-quota waiters with retry windows.
  while (waiting_.size() > quota_max_waiting_) {
    RejectLink(waiting_.front(), "quota reduced");
    waiting_.pop_front();
  }
}

void SelectorActor::HandleForward(const MsgForwardDevices& msg) {
  MsgDevicesForwarded out;
  const std::size_t n = std::min(msg.count, waiting_.size());
  out.links.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.links.push_back(std::move(waiting_.front()));
    waiting_.pop_front();
  }
  if (!out.links.empty()) {
    Send(msg.destination, std::move(out));
  }
}

void SelectorActor::HandleTick() {
  // Release devices held beyond max_hold (they would otherwise idle on an
  // open stream past any useful round).
  const SimTime cutoff = Now() - init_.max_hold;
  while (!waiting_.empty() && waiting_.front().connected_at < cutoff) {
    RejectLink(waiting_.front(), "held too long");
    waiting_.pop_front();
  }
  Send(init_.coordinator,
       MsgSelectorStatus{id(), waiting_.size(), total_accepted_,
                         total_rejected_});
  SendAfter(init_.tick_period, id(), MsgSelectorTick{});
}

void SelectorActor::HandleCoordinatorDeath(bool crashed) {
  (void)crashed;
  if (!init_.respawn_coordinator) return;
  // The lock service guarantees exactly-once respawn across the selector
  // layer: every selector races to acquire the population lock; only the
  // winner's factory actually creates the new Coordinator.
  const ActorId fresh = init_.respawn_coordinator();
  if (fresh.value != 0) {
    init_.coordinator = fresh;
    system().Watch(init_.coordinator, id());
  } else {
    // Another selector won the race; learn the new coordinator lazily via
    // the embedder re-wiring (quota messages carry no sender identity, so
    // simply keep watching nothing until re-configured).
  }
}

}  // namespace fl::server
