#include "src/server/model_store.h"

namespace fl::server {

void ModelStore::Commit(Checkpoint new_model, RoundRecord record) {
  model_ = std::move(new_model);
  ++version_;
  history_.push_back(std::move(record));
}

std::vector<std::pair<std::uint64_t, double>> ModelStore::MetricHistory(
    const std::string& task_name, const std::string& metric) const {
  std::vector<std::pair<std::uint64_t, double>> out;
  for (const RoundRecord& r : history_) {
    if (r.task_name != task_name) continue;
    const auto it = r.metrics.find(metric);
    if (it == r.metrics.end()) continue;
    out.emplace_back(r.round_number, it->second.mean);
  }
  return out;
}

}  // namespace fl::server
