#include "src/ops/status_server.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <thread>
#include <vector>

#include "src/analytics/profile.h"
#include "src/analytics/symbolizer.h"
#include "src/common/json_writer.h"
#include "src/profiler/cpu_profiler.h"
#include "src/profiler/heap_profiler.h"
#include "src/profiler/profiler.h"
#include "src/telemetry/export.h"
#include "src/telemetry/trace.h"

namespace fl::ops {
namespace {

// The series /statusz ships for fl_top's charts: round and checkin totals
// (rates come from differencing) plus the two headline fleet gauges.
constexpr const char* kChartSeries[] = {
    "fl_server_rounds_committed_total", "fl_server_rounds_abandoned_total",
    "fl_server_devices_accepted_total", "fl_server_devices_rejected_total",
    "fl_sim_live_actors",               "fl_sim_event_queue_pending",
    "fl_server_upload_bytes_total",     "fl_server_download_bytes_total",
};

constexpr std::int64_t kTenMinutesMs = 10 * 60 * 1000;

// First value of `key` in a query string ("a=1&b=2"); empty when absent.
std::string QueryParam(const std::string& query, std::string_view key) {
  std::size_t pos = 0;
  while (pos < query.size()) {
    std::size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, amp - pos);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    pos = amp + 1;
  }
  return "";
}

void HtmlEscapeInto(std::string* out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '&': *out += "&amp;"; break;
      case '<': *out += "&lt;"; break;
      case '>': *out += "&gt;"; break;
      default: *out += c;
    }
  }
}

double SpanDurationMs(const telemetry::SpanRecord& s) {
  if (s.wall_end_us > s.wall_start_us) {
    return static_cast<double>(s.wall_end_us - s.wall_start_us) / 1000.0;
  }
  return static_cast<double>((s.sim_end - s.sim_start).millis);
}

}  // namespace

namespace {
HttpServer::Options HttpOptionsFrom(const StatusServer::Options& opts) {
  HttpServer::Options http_opts;
  http_opts.port = opts.port;
  http_opts.worker_threads = opts.worker_threads;
  return http_opts;
}
}  // namespace

StatusServer::StatusServer(Options opts, Sources sources)
    : opts_(std::move(opts)), sources_(sources), http_(HttpOptionsFrom(opts_)) {}

Status StatusServer::Start() {
  start_wall_us_ = telemetry::WallMicros();
  http_.Handle("/", [this](const HttpRequest& r) { return Index(r); });
  http_.Handle("/metrics",
               [this](const HttpRequest& r) { return Metrics(r); });
  http_.Handle("/statusz",
               [this](const HttpRequest& r) { return Statusz(r); });
  http_.Handle("/rounds", [this](const HttpRequest& r) { return Rounds(r); });
  http_.Handle("/healthz",
               [this](const HttpRequest& r) { return Healthz(r); });
  http_.Handle("/tracez", [this](const HttpRequest& r) { return Tracez(r); });
  http_.Handle("/debugz", [this](const HttpRequest& r) { return Debugz(r); });
  http_.Handle("/profilez",
               [this](const HttpRequest& r) { return Profilez(r); });
  return http_.Start();
}

void StatusServer::Stop() { http_.Stop(); }

HttpResponse StatusServer::Metrics(const HttpRequest&) const {
  return HttpResponse::Text(telemetry::PrometheusText(
      telemetry::MetricsRegistry::Global().Snapshot()));
}

HttpResponse StatusServer::Statusz(const HttpRequest& req) const {
  if (req.QueryParamIs("format", "html")) {
    return HttpResponse::Html(StatuszHtml());
  }
  return HttpResponse::Json(StatuszJson());
}

std::string StatusServer::StatuszJson() const {
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.Field("population", opts_.population);
  w.BeginObject("build").EnvironmentFields().EndObject();
  w.Field("uptime_wall_seconds",
          static_cast<double>(telemetry::WallMicros() - start_wall_us_) /
              1e6);
  const std::int64_t sim_ms =
      sources_.sim_now_ms != nullptr
          ? sources_.sim_now_ms->load(std::memory_order_relaxed)
          : 0;
  w.Field("sim_time_ms", sim_ms);
  w.Field("sim_time", FormatSimTime(SimTime{sim_ms}));
  if (sources_.sampler != nullptr) {
    w.Field("samples", sources_.sampler->samples());
    w.Field("last_sample_t_ms", sources_.sampler->last_sample_t_ms());
  }
  w.BeginObject("server")
      .Field("requests_served", http_.requests_served())
      .Field("connections_accepted", http_.connections_accepted())
      .Field("parse_errors", http_.parse_errors())
      .EndObject();
  if (sources_.health != nullptr) {
    w.Raw("health", sources_.health->latest().ToJson());
  }
  if (sources_.ledger != nullptr) {
    const RoundLedger::Totals t = sources_.ledger->totals();
    w.BeginObject("round_totals")
        .Field("rounds_committed", t.rounds_committed)
        .Field("rounds_abandoned", t.rounds_abandoned)
        .Field("checkins_accepted", t.checkins_accepted)
        .Field("checkins_rejected", t.checkins_rejected)
        .Field("errors", t.errors)
        .EndObject();
  }
  w.BeginObject("counters");
  for (const auto& c : snapshot.counters) w.Field(c.name, c.value);
  w.EndObject();
  w.BeginObject("gauges");
  for (const auto& g : snapshot.gauges) w.Field(g.name, g.value);
  w.EndObject();
  if (sources_.store != nullptr) {
    // Trailing 10-minute deltas of the headline counters, plus the chart
    // series at 10 s resolution (fl_top differences them client-side).
    w.BeginObject("windows");
    w.Field("commit_per_10m",
            sources_.store->WindowDelta("fl_server_rounds_committed_total",
                                        kTenMinutesMs));
    w.Field("abandon_per_10m",
            sources_.store->WindowDelta("fl_server_rounds_abandoned_total",
                                        kTenMinutesMs));
    w.Field("accept_per_10m",
            sources_.store->WindowDelta("fl_server_devices_accepted_total",
                                        kTenMinutesMs));
    w.Field("reject_per_10m",
            sources_.store->WindowDelta("fl_server_devices_rejected_total",
                                        kTenMinutesMs));
    w.Field("upload_bytes_per_10m",
            sources_.store->WindowDelta("fl_server_upload_bytes_total",
                                        kTenMinutesMs));
    w.Field("download_bytes_per_10m",
            sources_.store->WindowDelta("fl_server_download_bytes_total",
                                        kTenMinutesMs));
    w.EndObject();
    std::int64_t chart_slot_ms = 10 * 1000;
    if (!sources_.store->resolutions().empty()) {
      chart_slot_ms = sources_.store->resolutions().size() > 1
                          ? sources_.store->resolutions()[1].slot_ms
                          : sources_.store->resolutions()[0].slot_ms;
    }
    w.BeginObject("series");
    for (const char* name : kChartSeries) {
      const auto points = sources_.store->Series(name, chart_slot_ms);
      if (points.empty()) continue;
      w.BeginObject(name);
      w.Field("slot_ms", chart_slot_ms);
      w.BeginArray("points");
      for (const auto& p : points) {
        w.BeginArray().Field("", p.t_ms).Field("", p.value).EndArray();
      }
      w.EndArray();
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndObject();
  return w.str();
}

std::string StatusServer::StatuszHtml() const {
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  std::string out;
  out += "<!doctype html><html><head><title>statusz</title></head><body>";
  out += "<h1>";
  HtmlEscapeInto(&out, opts_.population);
  out += "</h1>";
  const std::int64_t sim_ms =
      sources_.sim_now_ms != nullptr
          ? sources_.sim_now_ms->load(std::memory_order_relaxed)
          : 0;
  out += "<p>sim time " + FormatSimTime(SimTime{sim_ms}) + ", uptime " +
         std::to_string(
             (telemetry::WallMicros() - start_wall_us_) / 1000000) +
         "s</p>";
  if (sources_.health != nullptr) {
    const HealthReport report = sources_.health->latest();
    out += report.healthy ? "<p><b>HEALTHY</b></p>"
                          : "<p><b>UNHEALTHY</b></p>";
    out += "<table border=1><tr><th>check</th><th>ok</th><th>detail</th>"
           "</tr>";
    for (const HealthCheck& c : report.checks) {
      out += "<tr><td>";
      HtmlEscapeInto(&out, c.name);
      out += c.ok ? "</td><td>ok</td><td>" : "</td><td><b>FAIL</b></td><td>";
      HtmlEscapeInto(&out, c.detail);
      out += "</td></tr>";
    }
    out += "</table>";
  }
  out += "<h2>gauges</h2><table border=1>";
  for (const auto& g : snapshot.gauges) {
    out += "<tr><td>";
    HtmlEscapeInto(&out, g.name);
    out += "</td><td>" + std::to_string(g.value) + "</td></tr>";
  }
  out += "</table><p><a href=\"/metrics\">metrics</a> "
         "<a href=\"/rounds\">rounds</a> <a href=\"/healthz\">healthz</a> "
         "<a href=\"/tracez\">tracez</a></p></body></html>";
  return out;
}

HttpResponse StatusServer::Rounds(const HttpRequest& req) const {
  if (sources_.ledger == nullptr) {
    return HttpResponse::Json("{\"totals\":{},\"rounds\":[]}");
  }
  std::size_t limit = opts_.default_rounds_limit;
  const std::string raw = QueryParam(req.query, "limit");
  if (!raw.empty()) {
    const long parsed = std::strtol(raw.c_str(), nullptr, 10);
    if (parsed > 0) limit = static_cast<std::size_t>(parsed);
  }
  limit = std::min(limit, opts_.max_rounds_limit);
  return HttpResponse::Json(sources_.ledger->RecentJson(limit));
}

HttpResponse StatusServer::Healthz(const HttpRequest&) const {
  if (sources_.health == nullptr) {
    return HttpResponse::Json("{\"healthy\":true,\"checks\":[]}");
  }
  const HealthReport report = sources_.health->latest();
  return HttpResponse::Json(report.ToJson(), report.healthy ? 200 : 503);
}

HttpResponse StatusServer::Tracez(const HttpRequest&) const {
  const auto& tracer = telemetry::Tracer::Global();
  const std::vector<telemetry::SpanRecord> spans = tracer.Completed();
  struct NameAgg {
    std::uint64_t count = 0;
    double total_ms = 0;
    double max_ms = 0;
  };
  std::map<std::string, NameAgg> by_name;
  for (const auto& s : spans) {
    NameAgg& agg = by_name[s.name];
    const double ms = SpanDurationMs(s);
    ++agg.count;
    agg.total_ms += ms;
    agg.max_ms = std::max(agg.max_ms, ms);
  }
  JsonWriter w;
  w.BeginObject();
  w.Field("completed_spans", spans.size());
  w.Field("open_spans", tracer.open_spans());
  w.Field("dropped_spans", tracer.dropped_spans());
  w.BeginArray("by_name");
  for (const auto& [name, agg] : by_name) {
    w.BeginObject()
        .Field("name", name)
        .Field("count", agg.count)
        .Field("mean_ms",
               agg.count > 0 ? agg.total_ms / static_cast<double>(agg.count)
                             : 0.0)
        .Field("max_ms", agg.max_ms)
        .EndObject();
  }
  w.EndArray();
  w.BeginArray("recent");
  const std::size_t take = std::min<std::size_t>(spans.size(), 20);
  for (std::size_t i = spans.size() - take; i < spans.size(); ++i) {
    const auto& s = spans[i];
    w.BeginObject()
        .Field("name", s.name)
        .Field("sim_start_ms", s.sim_start.millis)
        .Field("duration_ms", SpanDurationMs(s))
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return HttpResponse::Json(w.str());
}

HttpResponse StatusServer::Debugz(const HttpRequest& req) const {
  if (sources_.bundler == nullptr) {
    return HttpResponse::Json(
        "{\"enabled\":false,\"captured\":0,\"bundles\":[]}");
  }
  const std::string bundle_raw = QueryParam(req.query, "bundle");
  const std::string file = QueryParam(req.query, "file");
  if (bundle_raw.empty() && file.empty()) {
    return HttpResponse::Json(sources_.bundler->HistoryJson());
  }
  // File serving: the client names a bundle by seq and a file from the
  // known set — never a path. Everything else is 404.
  char* end = nullptr;
  const unsigned long long seq = std::strtoull(bundle_raw.c_str(), &end, 10);
  if (end == bundle_raw.c_str() || *end != '\0') {
    return HttpResponse::Text("bad bundle seq\n", 400);
  }
  const auto& known = DiagnosticBundler::KnownFiles();
  if (std::find(known.begin(), known.end(), file) == known.end()) {
    return HttpResponse::Text("unknown bundle file\n", 404);
  }
  std::string dir;
  for (const auto& b : sources_.bundler->History()) {
    if (b.seq == seq) {
      dir = b.path;
      break;
    }
  }
  if (dir.empty()) return HttpResponse::Text("no such bundle\n", 404);
  std::FILE* f = std::fopen((dir + "/" + file).c_str(), "rb");
  if (f == nullptr) return HttpResponse::Text("bundle file missing\n", 404);
  std::string body;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) body.append(buf, n);
  std::fclose(f);
  if (file.size() > 5 && file.compare(file.size() - 5, 5, ".json") == 0) {
    return HttpResponse::Json(std::move(body));
  }
  return HttpResponse::Text(std::move(body));
}

HttpResponse StatusServer::Profilez(const HttpRequest& req) const {
  if (!profiler::kCompiledIn) {
    return HttpResponse::Text("profiler compiled out (-DFL_PROFILER=OFF)\n",
                              503);
  }
  if (!profiler::Enabled()) {
    return HttpResponse::Text("profiler disabled; set FL_PROFILER=1\n", 503);
  }

  if (QueryParam(req.query, "type") == "heap") {
    const bool live = QueryParam(req.query, "which") != "total";
    analytics::Symbolizer symbolizer;
    const analytics::FoldedProfile profile = analytics::FoldHeapSites(
        profiler::HeapProfiler::Global().Snapshot(), symbolizer, live);
    return HttpResponse::Text(profile.ToString());
  }

  long seconds = 5;
  const std::string seconds_raw = QueryParam(req.query, "seconds");
  if (!seconds_raw.empty()) seconds = std::atol(seconds_raw.c_str());
  seconds = std::clamp<long>(seconds, 1, 60);

  bool expected = false;
  if (!profilez_busy_.compare_exchange_strong(expected, true)) {
    return HttpResponse::Text("cpu capture already in flight\n", 409);
  }

  profiler::CpuProfiler& cpu = profiler::CpuProfiler::Global();
  bool started_here = false;
  if (!cpu.running()) {
    int hz = profiler::CpuProfiler::kDefaultHz;
    const std::string hz_raw = QueryParam(req.query, "hz");
    if (!hz_raw.empty()) {
      hz = std::clamp<int>(std::atoi(hz_raw.c_str()), 1,
                           profiler::CpuProfiler::kMaxHz);
    }
    const Status status = cpu.Start(hz);
    if (!status.ok()) {
      profilez_busy_.store(false);
      return HttpResponse::Text(status.ToString() + "\n", 503);
    }
    started_here = true;
  }

  // Window the continuous stream by seq, polling incrementally so a busy
  // thread cannot lap its 1024-slot ring within our collection period.
  std::uint64_t cursor = cpu.last_seq();
  std::vector<profiler::CpuSample> samples;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(seconds);
  while (std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(200));
    std::vector<profiler::CpuSample> batch = cpu.CollectSince(cursor);
    for (profiler::CpuSample& sample : batch) {
      cursor = std::max(cursor, sample.seq);
      samples.push_back(std::move(sample));
    }
  }
  if (started_here) cpu.Stop();
  profilez_busy_.store(false);

  analytics::Symbolizer symbolizer;
  const analytics::FoldedProfile profile =
      analytics::FoldCpuSamples(samples, symbolizer);
  return HttpResponse::Text(profile.ToString());
}

HttpResponse StatusServer::Index(const HttpRequest&) const {
  std::string out =
      "<!doctype html><html><head><title>fl ops</title></head><body>"
      "<h1>";
  HtmlEscapeInto(&out, opts_.population);
  out +=
      "</h1><ul>"
      "<li><a href=\"/metrics\">/metrics</a> Prometheus text</li>"
      "<li><a href=\"/statusz?format=html\">/statusz</a> build, health, "
      "fleet gauges (JSON by default)</li>"
      "<li><a href=\"/rounds\">/rounds</a> recent round records</li>"
      "<li><a href=\"/healthz\">/healthz</a> SLO verdict</li>"
      "<li><a href=\"/tracez\">/tracez</a> span summaries</li>"
      "<li><a href=\"/debugz\">/debugz</a> diagnostic bundles</li>"
      "<li><a href=\"/profilez\">/profilez</a> collapsed-stack profile "
      "(?seconds=N&amp;type=cpu|heap)</li>"
      "</ul></body></html>";
  return HttpResponse::Html(out);
}

}  // namespace fl::ops
