#include "src/ops/sampler.h"

#include <chrono>

#include "src/telemetry/telemetry.h"

namespace fl::ops {

MetricsSampler::MetricsSampler(analytics::SlidingWindowStore* store)
    : store_(store) {}

MetricsSampler::~MetricsSampler() { Stop(); }

void MetricsSampler::SampleOnce(std::int64_t t_ms) {
  SampleSnapshot(t_ms, telemetry::MetricsRegistry::Global().Snapshot());
}

void MetricsSampler::SampleSnapshot(
    std::int64_t t_ms, const telemetry::MetricsSnapshot& snapshot) {
  for (const auto& c : snapshot.counters) {
    store_->Record(c.name, t_ms, static_cast<double>(c.value));
  }
  for (const auto& g : snapshot.gauges) {
    store_->Record(g.name, t_ms, g.value);
  }
  for (const auto& h : snapshot.histograms) {
    store_->Record(h.name + "_count", t_ms, static_cast<double>(h.count));
    store_->Record(h.name + "_sum", t_ms, h.sum);
  }
  samples_.fetch_add(1, std::memory_order_relaxed);
  last_t_ms_.store(t_ms, std::memory_order_relaxed);
  last_wall_us_.store(telemetry::WallMicros(), std::memory_order_relaxed);
}

void MetricsSampler::StartBackground(std::int64_t period_ms) {
  Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = false;
  }
  thread_ = std::thread([this, period_ms] { BackgroundLoop(period_ms); });
}

void MetricsSampler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsSampler::BackgroundLoop(std::int64_t period_ms) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (stop_requested_) return;
    lock.unlock();
    SampleOnce(telemetry::WallMicros() / 1000);
    lock.lock();
    cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                 [this] { return stop_requested_; });
  }
}

}  // namespace fl::ops
