// Declarative health / SLO evaluation for the ops plane (Sec. 5: pacing
// steering and on-call alerting both hang off round-health signals). A
// HealthPolicy states bounds; the evaluator re-checks them on every ops
// tick against the sliding-window store and the latest registry snapshot,
// caches the verdict for /healthz (200 healthy / 503 unhealthy), and
// mirrors each check into `fl_ops_health*` gauges so health itself is
// scrapeable and chartable.
//
// Defaults are deliberately lenient (a small CI fleet mid-warmup must read
// healthy); tests and real deployments tighten them.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "src/analytics/window_store.h"
#include "src/telemetry/metrics.h"

namespace fl::ops {

struct HealthPolicy {
  // Abandoned / finished rounds over the trailing `round_window_ms` must
  // stay at or below this ratio; skipped until `min_rounds_for_ratio`
  // rounds finished in the window (warmup).
  double max_abandoned_ratio = 0.9;
  std::int64_t round_window_ms = 10 * 60 * 1000;
  std::uint64_t min_rounds_for_ratio = 5;

  // Commit-rate floor in rounds/hour over the same window; 0 disables.
  // Also warmup-gated by min_rounds_for_ratio (on *attempted* rounds) so a
  // fleet that has not had time to finish anything is not failed.
  double min_commit_per_hour = 0.0;

  // Cumulative p99 of the fl_actor_mailbox_depth histogram must stay at or
  // below this; 0 disables.
  double max_mailbox_depth_p99 = 0.0;

  // Max wall-clock ms since the sampler last ran; 0 disables. This is the
  // liveness check: a wedged sim stops ticking and /healthz goes 503.
  std::int64_t max_sample_staleness_wall_ms = 60 * 1000;
};

struct HealthCheck {
  std::string name;  // metric-suffix-safe, e.g. "abandoned_ratio"
  bool ok = true;
  double observed = 0;
  double bound = 0;
  std::string detail;
};

struct HealthReport {
  bool healthy = true;
  std::int64_t evaluated_at_ms = 0;  // series time of the evaluation
  std::uint64_t evaluations = 0;
  std::vector<HealthCheck> checks;

  std::string ToJson() const;
};

class HealthEvaluator {
 public:
  explicit HealthEvaluator(HealthPolicy policy = {});

  // Runs every check, caches the report, and publishes fl_ops_health
  // gauges. `now_ms` is series time (sim millis in the FLSystem wiring);
  // staleness compares wall-clock micros.
  HealthReport Evaluate(const analytics::SlidingWindowStore& store,
                        const telemetry::MetricsSnapshot& snapshot,
                        std::int64_t now_ms, std::int64_t last_sample_wall_us,
                        std::int64_t now_wall_us);

  // The most recent report (what /healthz serves). healthy=true with zero
  // evaluations before the first tick.
  HealthReport latest() const;

  const HealthPolicy& policy() const { return policy_; }

 private:
  void PublishGauges(const HealthReport& report);

  HealthPolicy policy_;
  std::uint64_t evaluations_ = 0;

  mutable std::mutex mu_;
  HealthReport latest_;
};

// Midpoint-clamped quantile over a snapshot histogram (same estimator as
// telemetry::Histogram::Quantile, usable on a point-in-time copy).
double SnapshotHistogramQuantile(
    const telemetry::MetricsSnapshot::HistogramValue& h, double p);

}  // namespace fl::ops
