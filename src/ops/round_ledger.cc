#include "src/ops/round_ledger.h"

#include "src/common/json_writer.h"

namespace fl::ops {

RoundLedger::RoundLedger(server::ServerStatsSink* inner, std::size_t capacity)
    : inner_(inner), capacity_(capacity == 0 ? 1 : capacity) {}

void RoundLedger::OnRoundOutcome(SimTime t, RoundId round,
                                 protocol::RoundOutcome outcome,
                                 std::size_t contributors) {
  if (inner_ != nullptr) inner_->OnRoundOutcome(t, round, outcome, contributors);
  if (enabled()) {
    std::lock_guard<std::mutex> lock(mu_);
    RoundRecord rec;
    if (auto it = open_.find(round.value); it != open_.end()) {
      rec = it->second;
      open_.erase(it);
    }
    rec.round = round;
    rec.finished_at = t;
    rec.outcome = outcome;
    rec.contributors = contributors;
    if (outcome == protocol::RoundOutcome::kCommitted) {
      ++totals_.rounds_committed;
    } else {
      ++totals_.rounds_abandoned;
    }
    finished_.push_back(rec);
    while (finished_.size() > capacity_) finished_.pop_front();
  }
  // After the ledger update (so a bundle capture sees this round) and
  // outside the lock (so the observer may read the ledger).
  if (outcome != protocol::RoundOutcome::kCommitted && on_abandoned_) {
    on_abandoned_(t, round, outcome);
  }
}

void RoundLedger::OnParticipantOutcome(SimTime t, RoundId round,
                                       DeviceId device,
                                       protocol::ParticipantOutcome outcome) {
  if (inner_ != nullptr) inner_->OnParticipantOutcome(t, round, device, outcome);
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  // Late rejections can land after the round closed; update the finished
  // record if it is still retained, else the open (or freshly-staged) one.
  RoundRecord* rec = FindFinishedLocked(round);
  if (rec == nullptr) {
    rec = &open_[round.value];
    rec->round = round;
  }
  switch (outcome) {
    case protocol::ParticipantOutcome::kCompleted: ++rec->completed; break;
    case protocol::ParticipantOutcome::kAborted: ++rec->aborted; break;
    case protocol::ParticipantOutcome::kDropped: ++rec->dropped; break;
    case protocol::ParticipantOutcome::kRejectedLate:
      ++rec->rejected_late;
      break;
  }
}

void RoundLedger::OnRoundTiming(SimTime t, RoundId round,
                                Duration selection_duration,
                                Duration round_duration) {
  if (inner_ != nullptr) {
    inner_->OnRoundTiming(t, round, selection_duration, round_duration);
  }
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  RoundRecord* rec = FindFinishedLocked(round);
  if (rec == nullptr) {
    rec = &open_[round.value];
    rec->round = round;
  }
  rec->selection_duration = selection_duration;
  rec->round_duration = round_duration;
  rec->has_timing = true;
}

void RoundLedger::OnDeviceAccepted(SimTime t) {
  if (inner_ != nullptr) inner_->OnDeviceAccepted(t);
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.checkins_accepted;
}

void RoundLedger::OnDeviceRejected(SimTime t) {
  if (inner_ != nullptr) inner_->OnDeviceRejected(t);
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.checkins_rejected;
}

void RoundLedger::OnTraffic(SimTime t, std::uint64_t download_bytes,
                            std::uint64_t upload_bytes) {
  if (inner_ != nullptr) inner_->OnTraffic(t, download_bytes, upload_bytes);
}

void RoundLedger::OnError(SimTime t, const std::string& what) {
  if (inner_ != nullptr) inner_->OnError(t, what);
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mu_);
  ++totals_.errors;
}

RoundLedger::Totals RoundLedger::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

std::vector<RoundRecord> RoundLedger::Recent(std::size_t max) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RoundRecord> out;
  const std::size_t n = std::min(max, finished_.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(finished_[finished_.size() - 1 - i]);
  }
  return out;
}

std::string RoundLedger::RecentJson(std::size_t max) const {
  const Totals t = totals();
  const std::vector<RoundRecord> rounds = Recent(max);
  JsonWriter w;
  w.BeginObject();
  w.BeginObject("totals")
      .Field("rounds_committed", t.rounds_committed)
      .Field("rounds_abandoned", t.rounds_abandoned)
      .Field("checkins_accepted", t.checkins_accepted)
      .Field("checkins_rejected", t.checkins_rejected)
      .Field("errors", t.errors)
      .EndObject();
  w.BeginArray("rounds");
  for (const RoundRecord& r : rounds) {
    w.BeginObject()
        .Field("round", r.round.value)
        .Field("finished_at_ms", r.finished_at.millis)
        .Field("outcome", protocol::RoundOutcomeName(r.outcome))
        .Field("contributors", r.contributors)
        .Field("selection_seconds",
               r.has_timing ? r.selection_duration.millis / 1000.0 : -1.0)
        .Field("round_seconds",
               r.has_timing ? r.round_duration.millis / 1000.0 : -1.0)
        .Field("completed", r.completed)
        .Field("aborted", r.aborted)
        .Field("dropped", r.dropped)
        .Field("rejected_late", r.rejected_late)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

RoundRecord* RoundLedger::FindFinishedLocked(RoundId round) {
  for (auto it = finished_.rbegin(); it != finished_.rend(); ++it) {
    if (it->round == round) return &*it;
  }
  return nullptr;
}

}  // namespace fl::ops
