#include "src/ops/debug_bundle.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

#include "src/analytics/flight_dump.h"
#include "src/analytics/profile.h"
#include "src/analytics/symbolizer.h"
#include "src/common/json_writer.h"
#include "src/profiler/cpu_profiler.h"
#include "src/profiler/profiler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/telemetry.h"

namespace fl::ops {
namespace {

// mkdir -p for exactly two levels (root + bundle dir); EEXIST is success.
bool EnsureDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) == 0) return true;
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t n = std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return n == content.size();
}

std::string MetricsJson() {
  const telemetry::MetricsSnapshot snapshot =
      telemetry::MetricsRegistry::Global().Snapshot();
  JsonWriter w;
  w.BeginObject();
  w.BeginObject("counters");
  for (const auto& c : snapshot.counters) w.Field(c.name, c.value);
  w.EndObject();
  w.BeginObject("gauges");
  for (const auto& g : snapshot.gauges) w.Field(g.name, g.value);
  w.EndObject();
  w.EndObject();
  return w.str();
}

// Directory names embed the trigger; keep it shell- and URL-inert.
std::string SanitizeTrigger(std::string_view trigger) {
  std::string out;
  out.reserve(trigger.size());
  for (char c : trigger) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '-';
    out += ok ? c : '_';
  }
  return out.empty() ? std::string("anomaly") : out;
}

}  // namespace

std::string BundleDirFromEnv() {
  const char* raw = std::getenv("FL_BUNDLE_DIR");
  return raw == nullptr ? std::string() : std::string(raw);
}

DiagnosticBundler::DiagnosticBundler(Options opts, Sources sources)
    : opts_(std::move(opts)), sources_(sources) {}

std::string DiagnosticBundler::Capture(std::string_view trigger,
                                       std::string_view detail,
                                       SimTime sim_now) {
  if (!enabled()) return "";
  const std::int64_t wall_us = telemetry::WallMicros();

  BundleInfo info;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (history_.size() >= opts_.max_bundles ||
        (any_captured_ &&
         wall_us - last_capture_wall_us_ < opts_.min_interval_wall_us)) {
      ++suppressed_;
      return "";
    }
    // Claim the slot under the lock; file IO happens outside it.
    last_capture_wall_us_ = wall_us;
    any_captured_ = true;
    info.seq = seq_++;
    info.trigger = SanitizeTrigger(trigger);
    info.detail = std::string(detail);
    info.wall_us = wall_us;
    info.sim_ms = sim_now.millis;
    info.path = opts_.dir + "/bundle-" + std::to_string(info.seq) + "-" +
                info.trigger;
  }

  if (!EnsureDir(opts_.dir) || !EnsureDir(info.path)) return "";

  std::vector<std::string> files;
  if (WriteFile(info.path + "/flight_recorder.log",
                analytics::FlightDumpText())) {
    files.push_back("flight_recorder.log");
  }
  if (WriteFile(info.path + "/metrics.json", MetricsJson())) {
    files.push_back("metrics.json");
  }
  if (sources_.ledger != nullptr &&
      WriteFile(info.path + "/rounds.json",
                sources_.ledger->RecentJson(opts_.rounds_limit))) {
    files.push_back("rounds.json");
  }
  if (sources_.health != nullptr &&
      WriteFile(info.path + "/health.json",
                sources_.health->latest().ToJson())) {
    files.push_back("health.json");
  }
  // Freeze what the continuous CPU profiler has in its rings right now —
  // the ~10 s leading up to the anomaly — as a symbolized folded profile.
  if (profiler::Enabled()) {
    analytics::Symbolizer symbolizer;
    const std::string folded =
        analytics::FoldCpuSamples(
            profiler::CpuProfiler::Global().CollectSince(0), symbolizer)
            .ToString();
    if (!folded.empty() &&
        WriteFile(info.path + "/cpu_profile.folded", folded)) {
      files.push_back("cpu_profile.folded");
    }
  }

  JsonWriter manifest;
  manifest.BeginObject()
      .Field("seq", info.seq)
      .Field("trigger", info.trigger)
      .Field("detail", info.detail)
      .Field("wall_us", info.wall_us)
      .Field("sim_ms", info.sim_ms);
  manifest.BeginArray("files");
  for (const std::string& f : files) manifest.Field("", f);
  manifest.EndArray();
  manifest.EndObject();
  WriteFile(info.path + "/manifest.json", manifest.str());

  const std::string path = info.path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    history_.push_back(std::move(info));
  }
  return path;
}

std::vector<DiagnosticBundler::BundleInfo> DiagnosticBundler::History() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_;
}

std::uint64_t DiagnosticBundler::captured() const {
  std::lock_guard<std::mutex> lock(mu_);
  return history_.size();
}

std::uint64_t DiagnosticBundler::suppressed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return suppressed_;
}

std::string DiagnosticBundler::HistoryJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("dir", opts_.dir);
  w.Field("enabled", enabled());
  {
    std::lock_guard<std::mutex> lock(mu_);
    w.Field("captured", static_cast<std::uint64_t>(history_.size()));
    w.Field("suppressed", suppressed_);
    w.BeginArray("bundles");
    for (const BundleInfo& b : history_) {
      w.BeginObject()
          .Field("seq", b.seq)
          .Field("trigger", b.trigger)
          .Field("detail", b.detail)
          .Field("path", b.path)
          .Field("wall_us", b.wall_us)
          .Field("sim_ms", b.sim_ms)
          .EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str();
}

const std::vector<std::string>& DiagnosticBundler::KnownFiles() {
  static const std::vector<std::string>* files = new std::vector<std::string>{
      "manifest.json", "flight_recorder.log", "metrics.json", "rounds.json",
      "health.json", "cpu_profile.folded"};
  return *files;
}

}  // namespace fl::ops
