// Anomaly-triggered diagnostic bundles: when something goes wrong (a health
// check flips unhealthy, a round is abandoned, a fatal signal lands), freeze
// the forensic state a human would ask for into one timestamped directory:
//
//   <dir>/bundle-<seq>-<trigger>/
//     manifest.json         trigger, detail, wall/sim time, file list
//     flight_recorder.log   #fl-journal v1 dump of the always-on rings
//     metrics.json          point-in-time MetricsRegistry snapshot
//     rounds.json           last-K RoundLedger records (when a ledger exists)
//     health.json           latest HealthEvaluator verdict (when one exists)
//
// Captures are rate-limited (a cooldown between bundles plus a hard cap per
// process) so an unhealthy fleet abandoning every round cannot fill the
// disk. The /debugz endpoint lists captured bundles and serves their files.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/ops/health.h"
#include "src/ops/round_ledger.h"

namespace fl::ops {

// FL_BUNDLE_DIR env gate: unset/empty -> "" (bundling off); otherwise the
// root directory bundles are written under (created on first capture).
std::string BundleDirFromEnv();

class DiagnosticBundler {
 public:
  struct Options {
    std::string dir;                // bundle root; empty disables Capture()
    std::size_t max_bundles = 16;   // hard cap per process
    std::int64_t min_interval_wall_us = 10'000'000;  // cooldown between dumps
    std::size_t rounds_limit = 64;  // last-K ledger records per bundle
  };

  // Non-owning; either may be null (the corresponding file is omitted).
  struct Sources {
    const RoundLedger* ledger = nullptr;
    const HealthEvaluator* health = nullptr;
  };

  struct BundleInfo {
    std::uint64_t seq = 0;
    std::string trigger;  // "health", "round_abandoned", ... (dir-name safe)
    std::string detail;
    std::string path;     // bundle directory
    std::int64_t wall_us = 0;
    std::int64_t sim_ms = 0;
  };

  DiagnosticBundler(Options opts, Sources sources);

  bool enabled() const { return !opts_.dir.empty(); }

  // Late binding for hosts that construct the bundler before the component
  // owning the evaluator (FLSystem builds the ops plane at Start()). Call
  // before captures can fire; not synchronized against them.
  void set_health_source(const HealthEvaluator* health) {
    sources_.health = health;
  }

  // Writes one bundle; returns its directory path, or "" when disabled,
  // rate-limited, capped, or the directory could not be created. Thread-safe
  // (triggers fire from the sim thread and, in principle, HTTP threads).
  std::string Capture(std::string_view trigger, std::string_view detail,
                      SimTime sim_now);

  // Captured bundles, oldest first.
  std::vector<BundleInfo> History() const;
  std::uint64_t captured() const;
  std::uint64_t suppressed() const;  // rate-limited / capped attempts
  const Options& options() const { return opts_; }

  // {"dir":...,"captured":N,"suppressed":N,"bundles":[...]} for /debugz.
  std::string HistoryJson() const;

  // The fixed set of files a bundle may contain; /debugz only serves names
  // from this list (no path components accepted from the client).
  static const std::vector<std::string>& KnownFiles();

 private:
  Options opts_;
  Sources sources_;

  mutable std::mutex mu_;
  std::vector<BundleInfo> history_;
  std::uint64_t seq_ = 1;  // bundle seqs start at 1 (0 = "none" in URLs)
  std::uint64_t suppressed_ = 0;
  std::int64_t last_capture_wall_us_ = 0;
  bool any_captured_ = false;
};

}  // namespace fl::ops
