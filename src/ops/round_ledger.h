// Per-round ledger for the /rounds endpoint: a ServerStatsSink tee that
// keeps the last K finished rounds as structured records (phase durations,
// contributor counts, per-participant outcome tallies, checkin
// accept/reject totals) while forwarding every event to the wrapped sink
// unchanged.
//
// Sits in the existing sink chain (actors -> TelemetryStatsSink ->
// RoundLedger -> FleetStats) and is disabled by default: with the ops plane
// off, every callback is one branch plus the forward, which is what the
// <=2% overhead gate in bench_ops_plane measures.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/server/stats.h"

namespace fl::ops {

struct RoundRecord {
  RoundId round{};
  SimTime finished_at{};  // when the outcome was reported
  protocol::RoundOutcome outcome = protocol::RoundOutcome::kFailed;
  std::size_t contributors = 0;
  Duration selection_duration{};
  Duration round_duration{};
  bool has_timing = false;
  // Per-participant outcome tallies for this round.
  std::size_t completed = 0;
  std::size_t aborted = 0;
  std::size_t dropped = 0;
  std::size_t rejected_late = 0;
};

class RoundLedger final : public server::ServerStatsSink {
 public:
  // `inner` may be null; `capacity` bounds the retained finished rounds.
  explicit RoundLedger(server::ServerStatsSink* inner = nullptr,
                       std::size_t capacity = 256);

  // Recording is off until enabled (FLSystem enables it with the ops
  // plane); forwarding to the inner sink always happens.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_release);
  }
  bool enabled() const { return enabled_.load(std::memory_order_acquire); }

  // Anomaly hook: fires on every non-committed round outcome, even while
  // recording is disabled (the diagnostic bundler must trigger with the ops
  // plane off). Called outside the ledger lock, so the observer may read
  // RecentJson()/totals(). Set before the sim starts; not thread-safe to
  // swap mid-run.
  using AbandonedObserver =
      std::function<void(SimTime, RoundId, protocol::RoundOutcome)>;
  void set_on_abandoned(AbandonedObserver observer) {
    on_abandoned_ = std::move(observer);
  }

  void OnRoundOutcome(SimTime t, RoundId round,
                      protocol::RoundOutcome outcome,
                      std::size_t contributors) override;
  void OnParticipantOutcome(SimTime t, RoundId round, DeviceId device,
                            protocol::ParticipantOutcome outcome) override;
  void OnRoundTiming(SimTime t, RoundId round, Duration selection_duration,
                     Duration round_duration) override;
  void OnDeviceAccepted(SimTime t) override;
  void OnDeviceRejected(SimTime t) override;
  void OnTraffic(SimTime t, std::uint64_t download_bytes,
                 std::uint64_t upload_bytes) override;
  void OnError(SimTime t, const std::string& what) override;

  // Cumulative totals since enable (checkin accept/reject, commit/abandon).
  struct Totals {
    std::uint64_t rounds_committed = 0;
    std::uint64_t rounds_abandoned = 0;
    std::uint64_t checkins_accepted = 0;
    std::uint64_t checkins_rejected = 0;
    std::uint64_t errors = 0;
  };
  Totals totals() const;

  // Most recent finished rounds, newest first, at most `max`.
  std::vector<RoundRecord> Recent(std::size_t max = SIZE_MAX) const;

  // {"totals":{...},"rounds":[...]} for /rounds; newest first.
  std::string RecentJson(std::size_t max) const;

  std::size_t capacity() const { return capacity_; }

 private:
  // Finds a finished round by id (newest first); nullptr when evicted.
  RoundRecord* FindFinishedLocked(RoundId round);

  server::ServerStatsSink* inner_;
  const std::size_t capacity_;
  std::atomic<bool> enabled_{false};
  AbandonedObserver on_abandoned_;

  mutable std::mutex mu_;
  // Participant tallies for rounds that have not reported an outcome yet.
  // Timing can also arrive before the outcome, so stage it here too.
  std::map<std::uint64_t, RoundRecord> open_;
  std::deque<RoundRecord> finished_;  // oldest at front
  Totals totals_;
};

}  // namespace fl::ops
