// The live ops plane as one object: sliding-window store + sampler +
// health evaluator + status server, pumped from the FLSystem stats tick.
// FLSystem owns one of these when FL_STATUSZ is set (or statusz_port is
// configured explicitly) and calls Tick() with each registry snapshot;
// everything HTTP threads read is either thread-safe by construction or an
// atomic published here.
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

#include "src/analytics/window_store.h"
#include "src/common/sim_time.h"
#include "src/ops/debug_bundle.h"
#include "src/ops/health.h"
#include "src/ops/round_ledger.h"
#include "src/ops/sampler.h"
#include "src/ops/status_server.h"

namespace fl::ops {

// FL_STATUSZ env gate: unset/empty -> nullopt (plane off); "0" -> ephemeral
// port; otherwise the port number. Out-of-range values read as off.
std::optional<int> StatuszPortFromEnv();

class OpsPlane {
 public:
  struct Options {
    int port = 0;  // 0 = ephemeral
    std::string population;
    HealthPolicy health;
    analytics::SlidingWindowStore::Options store;
  };

  // `ledger` is the RoundLedger already sitting in the FLSystem sink chain
  // (may be null for hosts without one); the plane enables it on Start().
  // `bundler` is the host's DiagnosticBundler (may be null): the plane
  // serves it on /debugz and captures a bundle when health transitions
  // healthy -> unhealthy.
  explicit OpsPlane(Options opts, RoundLedger* ledger = nullptr,
                    DiagnosticBundler* bundler = nullptr);
  ~OpsPlane();

  OpsPlane(const OpsPlane&) = delete;
  OpsPlane& operator=(const OpsPlane&) = delete;

  Status Start();
  void Stop();
  int port() const { return server_.port(); }
  bool running() const { return server_.running(); }

  // One ops tick (FLSystem calls this from the stats sampler): samples the
  // snapshot into the window store, re-evaluates health, publishes the sim
  // clock for /statusz.
  void Tick(SimTime now, const telemetry::MetricsSnapshot& snapshot);

  analytics::SlidingWindowStore& store() { return store_; }
  const analytics::SlidingWindowStore& store() const { return store_; }
  MetricsSampler& sampler() { return sampler_; }
  HealthEvaluator& health() { return health_; }
  StatusServer& server() { return server_; }

 private:
  RoundLedger* ledger_;
  DiagnosticBundler* bundler_;
  analytics::SlidingWindowStore store_;
  MetricsSampler sampler_;
  HealthEvaluator health_;
  std::atomic<std::int64_t> sim_now_ms_{0};
  // Healthy -> unhealthy edge detection for the bundle trigger (ticks run
  // on the sim thread only).
  bool was_healthy_ = true;
  StatusServer server_;
};

}  // namespace fl::ops
