#include "src/ops/http.h"

#include <algorithm>
#include <cctype>
#include <cstring>

#ifndef _WIN32
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>
#endif

#include "src/common/logging.h"

namespace fl::ops {

namespace {

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view Trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool IsToken(std::string_view s) {
  if (s.empty()) return false;
  for (char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (!std::isalnum(u) && c != '-' && c != '_' && c != '.') return false;
  }
  return true;
}

// Finds the end of the request head: CRLFCRLF or LFLF, whichever comes
// first. Returns npos when incomplete.
std::size_t FindHeadEnd(std::string_view buf, std::size_t* sep_len) {
  const std::size_t crlf = buf.find("\r\n\r\n");
  const std::size_t lflf = buf.find("\n\n");
  if (crlf == std::string_view::npos && lflf == std::string_view::npos) {
    return std::string_view::npos;
  }
  if (crlf != std::string_view::npos &&
      (lflf == std::string_view::npos || crlf < lflf)) {
    *sep_len = 4;
    return crlf;
  }
  *sep_len = 2;
  return lflf;
}

// Splits the head into lines on '\n', stripping one trailing '\r' each.
std::vector<std::string_view> SplitLines(std::string_view head) {
  std::vector<std::string_view> lines;
  std::size_t pos = 0;
  while (pos <= head.size()) {
    std::size_t nl = head.find('\n', pos);
    if (nl == std::string_view::npos) nl = head.size();
    std::string_view line = head.substr(pos, nl - pos);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    lines.push_back(line);
    if (nl == head.size()) break;
    pos = nl + 1;
  }
  return lines;
}

}  // namespace

const std::string* HttpRequest::FindHeader(
    std::string_view lowercase_key) const {
  for (const auto& [k, v] : headers) {
    if (k == lowercase_key) return &v;
  }
  return nullptr;
}

bool HttpRequest::QueryParamIs(std::string_view key,
                               std::string_view value) const {
  std::string_view q = query;
  while (!q.empty()) {
    std::size_t amp = q.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? q : q.substr(0, amp);
    const std::size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key &&
        pair.substr(eq + 1) == value) {
      return true;
    }
    if (amp == std::string_view::npos) break;
    q.remove_prefix(amp + 1);
  }
  return false;
}

HttpParse ParseHttpRequest(std::string_view buffer, HttpRequest* req,
                           std::size_t* consumed, const HttpLimits& limits) {
  *consumed = 0;
  std::size_t sep_len = 0;
  const std::size_t head_end = FindHeadEnd(buffer, &sep_len);
  if (head_end == std::string_view::npos) {
    return buffer.size() > limits.max_head_bytes ? HttpParse::kTooLarge
                                                 : HttpParse::kNeedMore;
  }
  if (head_end + sep_len > limits.max_head_bytes) return HttpParse::kTooLarge;

  const std::vector<std::string_view> lines =
      SplitLines(buffer.substr(0, head_end));
  if (lines.empty() || lines[0].empty()) return HttpParse::kBadRequest;

  // Request line: METHOD SP request-target SP HTTP-version.
  const std::string_view request_line = lines[0];
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    return HttpParse::kBadRequest;
  }
  HttpRequest out;
  out.method = std::string(request_line.substr(0, sp1));
  out.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  out.version = std::string(request_line.substr(sp2 + 1));
  if (!IsToken(out.method) || out.target.empty() || out.target[0] != '/') {
    return HttpParse::kBadRequest;
  }
  if (out.version != "HTTP/1.1" && out.version != "HTTP/1.0") {
    return HttpParse::kBadRequest;
  }
  const std::size_t qmark = out.target.find('?');
  out.path = out.target.substr(0, qmark);
  out.query = qmark == std::string::npos ? "" : out.target.substr(qmark + 1);

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = lines[i];
    if (line.empty()) continue;  // tolerated (some clients pad)
    if (line.front() == ' ' || line.front() == '\t') {
      return HttpParse::kBadRequest;  // obsolete line folding
    }
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return HttpParse::kBadRequest;
    }
    if (out.headers.size() >= limits.max_headers) return HttpParse::kTooLarge;
    const std::string_view raw_key = line.substr(0, colon);
    if (raw_key != Trim(raw_key)) return HttpParse::kBadRequest;
    out.headers.emplace_back(ToLower(raw_key),
                             std::string(Trim(line.substr(colon + 1))));
  }

  // The ops plane is read-only: refuse request bodies outright.
  if (const std::string* cl = out.FindHeader("content-length");
      cl != nullptr && *cl != "0") {
    return HttpParse::kBadRequest;
  }
  if (out.FindHeader("transfer-encoding") != nullptr) {
    return HttpParse::kBadRequest;
  }

  out.keep_alive = out.version == "HTTP/1.1";
  if (const std::string* conn = out.FindHeader("connection")) {
    const std::string v = ToLower(*conn);
    if (v == "close") out.keep_alive = false;
    if (v == "keep-alive") out.keep_alive = true;
  }

  *req = std::move(out);
  *consumed = head_end + sep_len;
  return HttpParse::kOk;
}

HttpResponse HttpResponse::Text(std::string body, int status) {
  return HttpResponse{status, "text/plain; charset=utf-8", std::move(body)};
}
HttpResponse HttpResponse::Json(std::string body, int status) {
  return HttpResponse{status, "application/json", std::move(body)};
}
HttpResponse HttpResponse::Html(std::string body, int status) {
  return HttpResponse{status, "text/html; charset=utf-8", std::move(body)};
}

const char* HttpStatusReason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& resp, bool keep_alive,
                                  bool head_only) {
  std::string out;
  out.reserve(resp.body.size() + 160);
  out += "HTTP/1.1 ";
  out += std::to_string(resp.status);
  out += ' ';
  out += HttpStatusReason(resp.status);
  out += "\r\nContent-Type: ";
  out += resp.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(resp.body.size());
  out += "\r\nConnection: ";
  out += keep_alive ? "keep-alive" : "close";
  out += "\r\n\r\n";
  if (!head_only) out += resp.body;
  return out;
}

#ifndef _WIN32

namespace {

bool SendAll(int fd, std::string_view data) {
  while (!data.empty()) {
    const ssize_t n = ::send(fd, data.data(), data.size(), MSG_NOSIGNAL);
    if (n <= 0) return false;
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

void SetIoTimeout(int fd, int seconds) {
  timeval tv{};
  tv.tv_sec = seconds;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

}  // namespace

HttpServer::HttpServer(Options opts) : opts_(std::move(opts)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, Handler handler) {
  FL_CHECK_MSG(!running(), "register handlers before Start()");
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running()) return Status::Ok();
  stopping_.store(false, std::memory_order_release);

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status(ErrorCode::kUnavailable, "socket() failed");
  }
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(opts_.port));
  if (::inet_pton(AF_INET, opts_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("bad bind address " + opts_.bind_address);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable,
                  "bind to " + opts_.bind_address + ":" +
                      std::to_string(opts_.port) + " failed: " +
                      std::strerror(errno));
  }
  if (::listen(fd, 64) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable, "listen() failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  listen_fd_.store(fd, std::memory_order_release);

  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const std::size_t workers = std::max<std::size_t>(1, opts_.worker_threads);
  workers_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::Ok();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);

  const int fd = listen_fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
  {
    // Unblock workers stuck inside recv on a live connection.
    const std::scoped_lock lock(live_mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Close any connections that were queued but never picked up.
  std::vector<int> leftover;
  {
    const std::scoped_lock lock(queue_mu_);
    leftover.swap(pending_fds_);
  }
  for (int fd : leftover) ::close(fd);
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int listen_fd = listen_fd_.load(std::memory_order_acquire);
    if (listen_fd < 0) break;
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (stopping_.load(std::memory_order_acquire)) break;
      if (errno == EINTR) continue;
      break;  // listen socket gone
    }
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);
    SetIoTimeout(fd, opts_.io_timeout_seconds);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    {
      const std::scoped_lock lock(queue_mu_);
      pending_fds_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::WorkerLoop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        return !pending_fds_.empty() ||
               stopping_.load(std::memory_order_acquire);
      });
      if (pending_fds_.empty()) return;  // stopping
      fd = pending_fds_.back();
      pending_fds_.pop_back();
    }
    {
      const std::scoped_lock lock(live_mu_);
      if (stopping_.load(std::memory_order_acquire)) {
        ::close(fd);
        continue;
      }
      live_fds_.insert(fd);
    }
    ServeConnection(fd);
    CloseTracked(fd);
  }
}

void HttpServer::CloseTracked(int fd) {
  {
    const std::scoped_lock lock(live_mu_);
    live_fds_.erase(fd);
  }
  ::close(fd);
}

void HttpServer::ServeConnection(int fd) {
  std::string buffer;
  std::size_t served = 0;
  char chunk[4096];
  while (!stopping_.load(std::memory_order_acquire)) {
    // Drain already-buffered pipelined requests before touching the socket.
    HttpRequest req;
    std::size_t consumed = 0;
    const HttpParse parsed =
        ParseHttpRequest(buffer, &req, &consumed, opts_.limits);
    if (parsed == HttpParse::kNeedMore) {
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        // Peer closed (mid-request = premature close) or timed out.
        if (!buffer.empty()) {
          parse_errors_.fetch_add(1, std::memory_order_relaxed);
        }
        return;
      }
      buffer.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (parsed == HttpParse::kBadRequest || parsed == HttpParse::kTooLarge) {
      parse_errors_.fetch_add(1, std::memory_order_relaxed);
      const HttpResponse resp = HttpResponse::Text(
          parsed == HttpParse::kBadRequest ? "bad request\n"
                                           : "request head too large\n",
          parsed == HttpParse::kBadRequest ? 400 : 431);
      SendAll(fd, SerializeHttpResponse(resp, /*keep_alive=*/false));
      return;
    }
    buffer.erase(0, consumed);

    HttpResponse resp;
    const bool head_only = req.method == "HEAD";
    if (req.method != "GET" && req.method != "HEAD") {
      resp = HttpResponse::Text("only GET is supported\n", 405);
    } else {
      const auto it = handlers_.find(req.path);
      if (it == handlers_.end()) {
        resp = HttpResponse::Text("not found\n", 404);
      } else {
        resp = it->second(req);
      }
    }
    ++served;
    requests_served_.fetch_add(1, std::memory_order_relaxed);
    const bool keep_alive =
        req.keep_alive && served < opts_.max_requests_per_connection &&
        !stopping_.load(std::memory_order_acquire);
    if (!SendAll(fd, SerializeHttpResponse(resp, keep_alive, head_only))) {
      return;
    }
    if (!keep_alive) return;
  }
}

Status HttpGet(const std::string& host, int port, const std::string& path,
               int* status_out, std::string* body_out, int timeout_seconds) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status(ErrorCode::kUnavailable, "socket() failed");
  SetIoTimeout(fd, timeout_seconds);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("HttpGet needs a numeric IPv4 host, got " +
                                host);
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable,
                  "connect to " + host + ":" + std::to_string(port) +
                      " failed: " + std::strerror(errno));
  }
  const std::string request = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                              "\r\nConnection: close\r\n\r\n";
  if (!SendAll(fd, request)) {
    ::close(fd);
    return Status(ErrorCode::kUnavailable, "send failed");
  }
  std::string raw;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      ::close(fd);
      return Status(ErrorCode::kDeadlineExceeded, "recv failed/timed out");
    }
    if (n == 0) break;
    raw.append(chunk, static_cast<std::size_t>(n));
  }
  ::close(fd);

  const std::size_t line_end = raw.find("\r\n");
  if (line_end == std::string::npos || raw.rfind("HTTP/1.", 0) != 0) {
    return Status(ErrorCode::kDataLoss, "malformed HTTP response");
  }
  const std::size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > line_end) {
    return Status(ErrorCode::kDataLoss, "malformed status line");
  }
  if (status_out != nullptr) {
    *status_out = std::atoi(raw.c_str() + sp + 1);
  }
  const std::size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return Status(ErrorCode::kDataLoss, "truncated response head");
  }
  if (body_out != nullptr) *body_out = raw.substr(head_end + 4);
  return Status::Ok();
}

#else  // _WIN32: the ops plane needs POSIX sockets; stub out cleanly.

HttpServer::HttpServer(Options opts) : opts_(std::move(opts)) {}
HttpServer::~HttpServer() = default;
void HttpServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}
Status HttpServer::Start() {
  return Status(ErrorCode::kUnimplemented,
                "HttpServer requires POSIX sockets");
}
void HttpServer::Stop() {}
void HttpServer::AcceptLoop() {}
void HttpServer::WorkerLoop() {}
void HttpServer::ServeConnection(int) {}
void HttpServer::CloseTracked(int) {}
Status HttpGet(const std::string&, int, const std::string&, int*,
               std::string*, int) {
  return Status(ErrorCode::kUnimplemented, "HttpGet requires POSIX sockets");
}

#endif

}  // namespace fl::ops
