// Minimal recursive-descent JSON reader for the ops plane: fl_top parses
// /statusz and /rounds payloads with it, and the end-to-end tests use it to
// validate every JSON endpoint. Dependency-free by design (the container
// bakes no JSON library); supports the full JSON value grammar with the
// usual escape set (\uXXXX decodes to UTF-8).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace fl::ops {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  bool AsBool(bool fallback = false) const {
    return is_bool() ? bool_ : fallback;
  }
  double AsDouble(double fallback = 0) const {
    return is_number() ? number_ : fallback;
  }
  std::int64_t AsInt(std::int64_t fallback = 0) const {
    return is_number() ? static_cast<std::int64_t>(number_) : fallback;
  }
  const std::string& AsString() const { return string_; }

  const std::vector<JsonValue>& items() const { return items_; }
  std::size_t size() const { return items_.size(); }
  const JsonValue& operator[](std::size_t i) const { return items_[i]; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
  // Dotted-path convenience: Find("health.healthy").
  const JsonValue* FindPath(std::string_view dotted) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  static Result<JsonValue> Parse(std::string_view text);

 private:
  friend class JsonParser;
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace fl::ops
