// The five ops-plane endpoints glued onto the embedded HttpServer:
//
//   /          tiny HTML index
//   /metrics   Prometheus text exposition of the global MetricsRegistry
//   /statusz   build/uptime/fleet gauges + health + chart series (JSON; add
//              ?format=html for a human-readable page)
//   /rounds    last-K per-round records from the RoundLedger (?limit=N)
//   /healthz   200 "healthy" / 503 "unhealthy" with the evaluator's latest
//              report as the JSON body
//   /tracez    recent span summaries from the round-phase tracer
//   /debugz    captured diagnostic bundles; ?bundle=<seq>&file=<name> serves
//              one file from a bundle (names restricted to the known set)
//   /profilez  collapsed-stack profile from the continuous profiler;
//              ?seconds=N (cpu capture window, default 5) ?type=cpu|heap
//              ?hz=H (only if the sampler is not already running). 503 when
//              the profiler is disabled, 409 while another cpu capture is
//              in flight.
//
// Handlers run on HTTP worker threads while the sim runs elsewhere, so they
// only touch thread-safe surfaces: registry snapshots, the window store,
// the ledger, the cached health report, and atomics published by the
// OpsPlane tick.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

#include "src/analytics/window_store.h"
#include "src/ops/debug_bundle.h"
#include "src/ops/health.h"
#include "src/ops/http.h"
#include "src/ops/round_ledger.h"
#include "src/ops/sampler.h"

namespace fl::ops {

class StatusServer {
 public:
  struct Options {
    int port = 0;  // 0 = ephemeral
    std::size_t worker_threads = 3;
    std::size_t default_rounds_limit = 50;
    std::size_t max_rounds_limit = 500;
    std::string population;
  };

  // Non-owning references; all must outlive the server. Any may be null
  // (the corresponding endpoint degrades gracefully).
  struct Sources {
    const analytics::SlidingWindowStore* store = nullptr;
    const MetricsSampler* sampler = nullptr;
    const RoundLedger* ledger = nullptr;
    const HealthEvaluator* health = nullptr;
    const DiagnosticBundler* bundler = nullptr;
    // Latest sim time published by the ops tick (HTTP threads must not
    // touch the event queue itself).
    const std::atomic<std::int64_t>* sim_now_ms = nullptr;
  };

  StatusServer(Options opts, Sources sources);

  Status Start();
  void Stop();
  int port() const { return http_.port(); }
  bool running() const { return http_.running(); }
  const HttpServer& http() const { return http_; }

  // Endpoint bodies, exposed for direct unit testing without sockets.
  HttpResponse Metrics(const HttpRequest& req) const;
  HttpResponse Statusz(const HttpRequest& req) const;
  HttpResponse Rounds(const HttpRequest& req) const;
  HttpResponse Healthz(const HttpRequest& req) const;
  HttpResponse Tracez(const HttpRequest& req) const;
  HttpResponse Debugz(const HttpRequest& req) const;
  HttpResponse Profilez(const HttpRequest& req) const;
  HttpResponse Index(const HttpRequest& req) const;

 private:
  std::string StatuszJson() const;
  std::string StatuszHtml() const;

  Options opts_;
  Sources sources_;
  std::int64_t start_wall_us_ = 0;
  // One cpu capture at a time: the window loop owns the sample-seq cursor
  // and (when it armed the timer itself) the Stop.
  mutable std::atomic<bool> profilez_busy_{false};
  HttpServer http_;
};

}  // namespace fl::ops
