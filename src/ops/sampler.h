// Periodic MetricsRegistry -> SlidingWindowStore bridge. The ops plane
// samples the registry on a clock (the FLSystem stats tick in sim mode, or
// an optional background wall-clock thread for processes without a sim
// loop) and records every instrument into the ring-buffer store:
// counters and gauges under their own names, histograms as
// `<name>_count` / `<name>_sum` series so windowed rates of observation
// volume stay queryable.
//
// The sampler also remembers *when* it last ran (wall clock), which is what
// the health evaluator's staleness check keys off: a wedged sim stops
// sampling, and /healthz flips to 503.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "src/analytics/window_store.h"
#include "src/telemetry/metrics.h"

namespace fl::ops {

class MetricsSampler {
 public:
  explicit MetricsSampler(analytics::SlidingWindowStore* store);
  ~MetricsSampler();

  MetricsSampler(const MetricsSampler&) = delete;
  MetricsSampler& operator=(const MetricsSampler&) = delete;

  // Snapshots the global registry and records it at series time `t_ms`
  // (sim millis in the FLSystem wiring).
  void SampleOnce(std::int64_t t_ms);

  // Same, but with a snapshot the caller already took (FLSystem shares one
  // snapshot per tick between the monitor hub, health checks and sampler).
  void SampleSnapshot(std::int64_t t_ms,
                      const telemetry::MetricsSnapshot& snapshot);

  // Wall-clock mode for non-sim hosts: spawns a thread sampling every
  // `period_ms`, stamping series with wall milliseconds. Stop() (or the
  // destructor) joins it.
  void StartBackground(std::int64_t period_ms);
  void Stop();

  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }
  // Wall-clock micros of the most recent sample; 0 before the first.
  std::int64_t last_sample_wall_us() const {
    return last_wall_us_.load(std::memory_order_relaxed);
  }
  // Series time of the most recent sample.
  std::int64_t last_sample_t_ms() const {
    return last_t_ms_.load(std::memory_order_relaxed);
  }

 private:
  void BackgroundLoop(std::int64_t period_ms);

  analytics::SlidingWindowStore* store_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<std::int64_t> last_wall_us_{0};
  std::atomic<std::int64_t> last_t_ms_{0};

  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::thread thread_;
};

}  // namespace fl::ops
