#include "src/ops/ops_plane.h"

#include <cstdlib>

#include "src/telemetry/telemetry.h"

namespace fl::ops {
namespace {

StatusServer::Options ServerOptionsFrom(const OpsPlane::Options& opts) {
  StatusServer::Options server_opts;
  server_opts.port = opts.port;
  server_opts.population = opts.population;
  return server_opts;
}

}  // namespace

std::optional<int> StatuszPortFromEnv() {
  const char* raw = std::getenv("FL_STATUSZ");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  char* end = nullptr;
  const long port = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || port < 0 || port > 65535) {
    return std::nullopt;
  }
  return static_cast<int>(port);
}

OpsPlane::OpsPlane(Options opts, RoundLedger* ledger)
    : ledger_(ledger),
      store_(opts.store),
      sampler_(&store_),
      health_(opts.health),
      server_(ServerOptionsFrom(opts),
              StatusServer::Sources{
                  .store = &store_,
                  .sampler = &sampler_,
                  .ledger = ledger,
                  .health = &health_,
                  .sim_now_ms = &sim_now_ms_,
              }) {}

OpsPlane::~OpsPlane() { Stop(); }

Status OpsPlane::Start() {
  // The plane serves registry metrics, so it implies runtime telemetry.
  telemetry::SetEnabled(true);
  if (ledger_ != nullptr) ledger_->set_enabled(true);
  return server_.Start();
}

void OpsPlane::Stop() {
  server_.Stop();
  sampler_.Stop();
}

void OpsPlane::Tick(SimTime now, const telemetry::MetricsSnapshot& snapshot) {
  sim_now_ms_.store(now.millis, std::memory_order_relaxed);
  sampler_.SampleSnapshot(now.millis, snapshot);
  health_.Evaluate(store_, snapshot, now.millis,
                   sampler_.last_sample_wall_us(), telemetry::WallMicros());
}

}  // namespace fl::ops
