#include "src/ops/ops_plane.h"

#include <cstdlib>

#include "src/telemetry/telemetry.h"

namespace fl::ops {
namespace {

StatusServer::Options ServerOptionsFrom(const OpsPlane::Options& opts) {
  StatusServer::Options server_opts;
  server_opts.port = opts.port;
  server_opts.population = opts.population;
  return server_opts;
}

}  // namespace

std::optional<int> StatuszPortFromEnv() {
  const char* raw = std::getenv("FL_STATUSZ");
  if (raw == nullptr || raw[0] == '\0') return std::nullopt;
  char* end = nullptr;
  const long port = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0' || port < 0 || port > 65535) {
    return std::nullopt;
  }
  return static_cast<int>(port);
}

OpsPlane::OpsPlane(Options opts, RoundLedger* ledger,
                   DiagnosticBundler* bundler)
    : ledger_(ledger),
      bundler_(bundler),
      store_(opts.store),
      sampler_(&store_),
      health_(opts.health),
      server_(ServerOptionsFrom(opts),
              StatusServer::Sources{
                  .store = &store_,
                  .sampler = &sampler_,
                  .ledger = ledger,
                  .health = &health_,
                  .bundler = bundler,
                  .sim_now_ms = &sim_now_ms_,
              }) {}

OpsPlane::~OpsPlane() { Stop(); }

Status OpsPlane::Start() {
  // The plane serves registry metrics, so it implies runtime telemetry.
  telemetry::SetEnabled(true);
  if (ledger_ != nullptr) ledger_->set_enabled(true);
  return server_.Start();
}

void OpsPlane::Stop() {
  server_.Stop();
  sampler_.Stop();
}

void OpsPlane::Tick(SimTime now, const telemetry::MetricsSnapshot& snapshot) {
  sim_now_ms_.store(now.millis, std::memory_order_relaxed);
  sampler_.SampleSnapshot(now.millis, snapshot);
  const HealthReport report =
      health_.Evaluate(store_, snapshot, now.millis,
                       sampler_.last_sample_wall_us(),
                       telemetry::WallMicros());
  // Bundle on the healthy -> unhealthy edge only: a fleet that stays
  // unhealthy for an hour produces one bundle, not one per tick.
  if (bundler_ != nullptr && was_healthy_ && !report.healthy) {
    std::string failing;
    for (const HealthCheck& c : report.checks) {
      if (c.ok) continue;
      if (!failing.empty()) failing += ',';
      failing += c.name;
    }
    bundler_->Capture("health", failing, now);
  }
  was_healthy_ = report.healthy;
}

}  // namespace fl::ops
