#include "src/ops/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace fl::ops {

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const JsonValue* JsonValue::FindPath(std::string_view dotted) const {
  const JsonValue* cur = this;
  while (cur != nullptr && !dotted.empty()) {
    const std::size_t dot = dotted.find('.');
    const std::string_view key =
        dot == std::string_view::npos ? dotted : dotted.substr(0, dot);
    cur = cur->Find(key);
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return cur;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<JsonValue> Parse() {
    JsonValue v;
    if (Status s = ParseValue(&v, 0); !s.ok()) return s;
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON value");
    }
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  Status Error(const std::string& what) const {
    return {ErrorCode::kInvalidArgument,
            "JSON parse error at byte " + std::to_string(pos_) + ": " + what};
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Status ParseValue(JsonValue* out, int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return ParseObject(out, depth);
    if (c == '[') return ParseArray(out, depth);
    if (c == '"') {
      out->kind_ = JsonValue::Kind::kString;
      return ParseString(&out->string_);
    }
    if (ConsumeWord("true")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = true;
      return Status::Ok();
    }
    if (ConsumeWord("false")) {
      out->kind_ = JsonValue::Kind::kBool;
      out->bool_ = false;
      return Status::Ok();
    }
    if (ConsumeWord("null")) {
      out->kind_ = JsonValue::Kind::kNull;
      return Status::Ok();
    }
    return ParseNumber(out);
  }

  Status ParseObject(JsonValue* out, int depth) {
    ++pos_;  // '{'
    out->kind_ = JsonValue::Kind::kObject;
    SkipWhitespace();
    if (Consume('}')) return Status::Ok();
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      std::string key;
      if (Status s = ParseString(&key); !s.ok()) return s;
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->members_.emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Status::Ok();
      return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(JsonValue* out, int depth) {
    ++pos_;  // '['
    out->kind_ = JsonValue::Kind::kArray;
    SkipWhitespace();
    if (Consume(']')) return Status::Ok();
    for (;;) {
      JsonValue value;
      if (Status s = ParseValue(&value, depth + 1); !s.ok()) return s;
      out->items_.push_back(std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Status::Ok();
      return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return Status::Ok();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          unsigned int code = 0;
          if (!ParseHex4(&code)) return Error("bad \\u escape");
          if (code >= 0xDC00 && code <= 0xDFFF) {
            return Error("lone low surrogate in \\u escape");
          }
          if (code >= 0xD800 && code <= 0xDBFF) {
            // High surrogate: a \uDC00-\uDFFF low half must follow.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return Error("unpaired high surrogate in \\u escape");
            }
            pos_ += 2;
            unsigned int low = 0;
            if (!ParseHex4(&low)) return Error("bad \\u escape");
            if (low < 0xDC00 || low > 0xDFFF) {
              return Error("unpaired high surrogate in \\u escape");
            }
            code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
          }
          AppendUtf8(out, code);
          break;
        }
        default:
          return Error("unknown escape character");
      }
    }
    return Error("unterminated string");
  }

  bool ParseHex4(unsigned int* out) {
    if (pos_ + 4 > text_.size()) return false;
    unsigned int v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned int>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned int>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned int>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    pos_ += 4;
    *out = v;
    return true;
  }

  static void AppendUtf8(std::string* out, unsigned int code) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (code >> 18)));
      out->push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const std::size_t start = pos_;
    if (Consume('-')) {
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a JSON value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || !std::isfinite(v)) {
      return Error("malformed number '" + token + "'");
    }
    out->kind_ = JsonValue::Kind::kNumber;
    out->number_ = v;
    return Status::Ok();
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return JsonParser(text).Parse();
}

}  // namespace fl::ops
