#include "src/ops/health.h"

#include <algorithm>
#include <cstdio>

#include "src/common/json_writer.h"

namespace fl::ops {
namespace {

std::string FormatDetail(const char* fmt, double a, double b) {
  char buf[128];
  std::snprintf(buf, sizeof(buf), fmt, a, b);
  return buf;
}

}  // namespace

double SnapshotHistogramQuantile(
    const telemetry::MetricsSnapshot::HistogramValue& h, double p) {
  if (h.count == 0 || h.bounds.empty()) return 0.0;
  p = std::clamp(p, 0.0, 100.0);
  const double target = p / 100.0 * static_cast<double>(h.count);
  std::uint64_t acc = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    const std::uint64_t c = h.counts[i];
    if (c == 0) continue;
    if (static_cast<double>(acc + c) >= target) {
      const double lo = i == 0 ? 0.0 : h.bounds[i - 1];
      const double hi = h.bounds[i];
      const double cd = static_cast<double>(c);
      const double frac =
          std::clamp((target - static_cast<double>(acc)) / cd, 0.5 / cd,
                     1.0 - 0.5 / cd);
      return lo + (hi - lo) * frac;
    }
    acc += c;
  }
  // Only the overflow bucket remains: clamp to the configured range.
  return h.bounds.back();
}

HealthEvaluator::HealthEvaluator(HealthPolicy policy) : policy_(policy) {}

HealthReport HealthEvaluator::Evaluate(
    const analytics::SlidingWindowStore& store,
    const telemetry::MetricsSnapshot& snapshot, std::int64_t now_ms,
    std::int64_t last_sample_wall_us, std::int64_t now_wall_us) {
  HealthReport report;
  report.evaluated_at_ms = now_ms;
  report.evaluations = ++evaluations_;

  const double committed =
      store.WindowDelta("fl_server_rounds_committed_total",
                        policy_.round_window_ms);
  const double abandoned =
      store.WindowDelta("fl_server_rounds_abandoned_total",
                        policy_.round_window_ms);
  const double finished = committed + abandoned;

  {
    HealthCheck check;
    check.name = "abandoned_ratio";
    check.bound = policy_.max_abandoned_ratio;
    check.observed = finished > 0 ? abandoned / finished : 0.0;
    if (finished < static_cast<double>(policy_.min_rounds_for_ratio)) {
      check.ok = true;
      check.detail = FormatDetail(
          "warmup: %.0f/%.0f rounds finished in window", finished,
          static_cast<double>(policy_.min_rounds_for_ratio));
    } else {
      check.ok = check.observed <= check.bound;
      check.detail = FormatDetail("abandoned ratio %.3f (bound %.3f)",
                                  check.observed, check.bound);
    }
    report.checks.push_back(std::move(check));
  }

  if (policy_.min_commit_per_hour > 0) {
    HealthCheck check;
    check.name = "commit_per_hour";
    check.bound = policy_.min_commit_per_hour;
    const double hours =
        static_cast<double>(policy_.round_window_ms) / (3600.0 * 1000.0);
    check.observed = hours > 0 ? committed / hours : 0.0;
    if (finished < static_cast<double>(policy_.min_rounds_for_ratio)) {
      check.ok = true;
      check.detail = "warmup: too few finished rounds in window";
    } else {
      check.ok = check.observed >= check.bound;
      check.detail = FormatDetail("commit rate %.1f/h (floor %.1f/h)",
                                  check.observed, check.bound);
    }
    report.checks.push_back(std::move(check));
  }

  if (policy_.max_mailbox_depth_p99 > 0) {
    HealthCheck check;
    check.name = "mailbox_depth_p99";
    check.bound = policy_.max_mailbox_depth_p99;
    const auto* h = snapshot.FindHistogram("fl_actor_mailbox_depth");
    check.observed = h != nullptr ? SnapshotHistogramQuantile(*h, 99.0) : 0.0;
    check.ok = check.observed <= check.bound;
    check.detail = FormatDetail("mailbox depth p99 %.1f (bound %.1f)",
                                check.observed, check.bound);
    report.checks.push_back(std::move(check));
  }

  if (policy_.max_sample_staleness_wall_ms > 0) {
    HealthCheck check;
    check.name = "sample_staleness";
    check.bound = static_cast<double>(policy_.max_sample_staleness_wall_ms);
    if (last_sample_wall_us <= 0) {
      check.ok = true;  // nothing sampled yet: still warming up
      check.observed = 0;
      check.detail = "warmup: no samples yet";
    } else {
      check.observed =
          static_cast<double>(now_wall_us - last_sample_wall_us) / 1000.0;
      check.ok = check.observed <= check.bound;
      check.detail = FormatDetail("last sample %.0fms ago (bound %.0fms)",
                                  check.observed, check.bound);
    }
    report.checks.push_back(std::move(check));
  }

  report.healthy = true;
  for (const HealthCheck& c : report.checks) {
    if (!c.ok) report.healthy = false;
  }

  PublishGauges(report);
  {
    std::lock_guard<std::mutex> lock(mu_);
    latest_ = report;
  }
  return report;
}

HealthReport HealthEvaluator::latest() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_;
}

void HealthEvaluator::PublishGauges(const HealthReport& report) {
  auto& registry = telemetry::MetricsRegistry::Global();
  registry.GetGauge("fl_ops_health")->Set(report.healthy ? 1.0 : 0.0);
  for (const HealthCheck& c : report.checks) {
    registry.GetGauge("fl_ops_health_" + c.name)->Set(c.ok ? 1.0 : 0.0);
    registry.GetGauge("fl_ops_health_" + c.name + "_observed")
        ->Set(c.observed);
  }
}

std::string HealthReport::ToJson() const {
  JsonWriter w;
  w.BeginObject();
  w.Field("healthy", healthy);
  w.Field("evaluated_at_ms", evaluated_at_ms);
  w.Field("evaluations", evaluations);
  w.BeginArray("checks");
  for (const HealthCheck& c : checks) {
    w.BeginObject()
        .Field("name", c.name)
        .Field("ok", c.ok)
        .Field("observed", c.observed)
        .Field("bound", c.bound)
        .Field("detail", c.detail)
        .EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

}  // namespace fl::ops
