#include "src/ops/crash_handler.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/analytics/flight_dump.h"
#include "src/analytics/journal.h"

namespace fl::ops {
namespace {

std::atomic<bool> g_installed{false};
// Fixed storage: the handler must not touch the heap.
char g_dump_path[512] = {0};

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void AtExitFlush() {
  analytics::Journal::Global().Flush();
}

void FatalSignalHandler(int sig) {
  if (g_dump_path[0] != '\0') {
    (void)WriteCrashDump(g_dump_path);
  }
  // Not async-signal-safe, but the alternative is losing the journal tail
  // outright; the try-lock inside bounds the damage to "no flush".
  (void)analytics::Journal::Global().FlushBestEffort();
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (wait status, core dumps, CI log lines).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

bool InstallCrashHandler(const CrashHandlerOptions& opts) {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return false;
  if (opts.install_atexit) {
    std::atexit(AtExitFlush);
  }
  if (!opts.flight_dump_path.empty()) {
    // The handler can only open(2); make sure the parent directory exists
    // now, while mkdir is still allowed to fail loudly.
    const std::size_t slash = opts.flight_dump_path.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      (void)::mkdir(opts.flight_dump_path.substr(0, slash).c_str(), 0755);
    }
    const std::size_t n =
        std::min(opts.flight_dump_path.size(), sizeof(g_dump_path) - 1);
    std::memcpy(g_dump_path, opts.flight_dump_path.data(), n);
    g_dump_path[n] = '\0';
    struct sigaction sa{};
    sa.sa_handler = FatalSignalHandler;
    sigemptyset(&sa.sa_mask);
    // SA_RESETHAND guards against the handler itself faulting: the second
    // delivery takes the default disposition.
    sa.sa_flags = SA_RESETHAND;
    for (const int sig : kFatalSignals) {
      ::sigaction(sig, &sa, nullptr);
    }
  }
  return true;
}

bool CrashHandlerInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

std::size_t WriteCrashDump(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;
  const std::size_t written = analytics::FlightDumpToFd(fd);
  ::close(fd);
  return written;
}

}  // namespace fl::ops
