#include "src/ops/crash_handler.h"

#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <cstring>

#include "src/analytics/flight_dump.h"
#include "src/analytics/journal.h"
#include "src/profiler/cpu_profiler.h"
#include "src/profiler/profiler.h"

namespace fl::ops {
namespace {

std::atomic<bool> g_installed{false};
// Fixed storage: the handler must not touch the heap.
char g_dump_path[512] = {0};
// Raw (unsymbolized) CPU profile + the maps needed to resolve it offline,
// written next to the flight dump when the profiler is live at crash time.
char g_profile_path[512] = {0};
char g_maps_path[512] = {0};

// AS-safe file copy (open/read/write only) for /proc/self/maps.
void CopyFileRaw(const char* src, const char* dst) {
  const int in = ::open(src, O_RDONLY);
  if (in < 0) return;
  const int out = ::open(dst, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) {
    ::close(in);
    return;
  }
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(in, buf, sizeof(buf));
    if (n <= 0) break;
    ssize_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(out, buf + off, static_cast<size_t>(n - off));
      if (w <= 0) break;
      off += w;
    }
  }
  ::close(in);
  ::close(out);
}

// Joins the directory of `ref` with `name` into fixed storage `out`.
void SiblingPath(const char* ref, const char* name, char* out,
                 std::size_t out_size) {
  const char* slash = std::strrchr(ref, '/');
  const std::size_t dir_len =
      slash == nullptr ? 0 : static_cast<std::size_t>(slash - ref) + 1;
  const std::size_t name_len = std::strlen(name);
  if (dir_len + name_len + 1 > out_size) return;
  std::memcpy(out, ref, dir_len);
  std::memcpy(out + dir_len, name, name_len + 1);
}

constexpr int kFatalSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};

void AtExitFlush() {
  analytics::Journal::Global().Flush();
}

void FatalSignalHandler(int sig) {
  if (g_dump_path[0] != '\0') {
    (void)WriteCrashDump(g_dump_path);
  }
  // Freeze the profiler rings: raw PCs (DumpRawToFd is AS-safe) plus the
  // maps file that lets fl_analyze/addr2line resolve them post-mortem.
  if (profiler::Enabled() && g_profile_path[0] != '\0') {
    const int fd =
        ::open(g_profile_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      (void)profiler::CpuProfiler::Global().DumpRawToFd(fd);
      ::close(fd);
    }
    if (g_maps_path[0] != '\0') {
      CopyFileRaw("/proc/self/maps", g_maps_path);
    }
  }
  // Not async-signal-safe, but the alternative is losing the journal tail
  // outright; the try-lock inside bounds the damage to "no flush".
  (void)analytics::Journal::Global().FlushBestEffort();
  // Restore the default disposition and re-raise so the process still dies
  // with the original signal (wait status, core dumps, CI log lines).
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

bool InstallCrashHandler(const CrashHandlerOptions& opts) {
  bool expected = false;
  if (!g_installed.compare_exchange_strong(expected, true)) return false;
  if (opts.install_atexit) {
    std::atexit(AtExitFlush);
  }
  if (!opts.flight_dump_path.empty()) {
    // The handler can only open(2); make sure the parent directory exists
    // now, while mkdir is still allowed to fail loudly.
    const std::size_t slash = opts.flight_dump_path.find_last_of('/');
    if (slash != std::string::npos && slash > 0) {
      (void)::mkdir(opts.flight_dump_path.substr(0, slash).c_str(), 0755);
    }
    const std::size_t n =
        std::min(opts.flight_dump_path.size(), sizeof(g_dump_path) - 1);
    std::memcpy(g_dump_path, opts.flight_dump_path.data(), n);
    g_dump_path[n] = '\0';
    SiblingPath(g_dump_path, "cpu_profile.raw", g_profile_path,
                sizeof(g_profile_path));
    SiblingPath(g_dump_path, "cpu_profile.maps", g_maps_path,
                sizeof(g_maps_path));
    struct sigaction sa{};
    sa.sa_handler = FatalSignalHandler;
    sigemptyset(&sa.sa_mask);
    // SA_RESETHAND guards against the handler itself faulting: the second
    // delivery takes the default disposition.
    sa.sa_flags = SA_RESETHAND;
    for (const int sig : kFatalSignals) {
      ::sigaction(sig, &sa, nullptr);
    }
  }
  return true;
}

bool CrashHandlerInstalled() {
  return g_installed.load(std::memory_order_acquire);
}

std::size_t WriteCrashDump(const char* path) {
  const int fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return 0;
  const std::size_t written = analytics::FlightDumpToFd(fd);
  ::close(fd);
  return written;
}

}  // namespace fl::ops
