// Abnormal-exit diagnostics. Two escape hatches for the forensic tail that
// normally dies with the process:
//
//  * atexit: the global Journal is a leaked singleton (its destructor never
//    runs), so up to 64 KiB of buffered records vanish on a clean exit().
//    The atexit hook flushes it.
//  * fatal signals (SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL): the handler
//    dumps the always-on flight recorder to a pre-configured path with only
//    async-signal-safe calls (open/write), try-flushes the journal, then
//    re-raises with the default disposition so the exit status still says
//    what killed the process.
//
// Installation is idempotent and process-global (first Install wins).
#pragma once

#include <string>

namespace fl::ops {

struct CrashHandlerOptions {
  // Where the fatal-signal flight dump goes. Empty disables the signal
  // handlers (the atexit journal flush is still installed).
  std::string flight_dump_path;
  bool install_atexit = true;
};

// Installs the hooks; later calls are no-ops (returns false). The dump path
// is copied into static storage so the signal handler never allocates.
bool InstallCrashHandler(const CrashHandlerOptions& opts);
bool CrashHandlerInstalled();

// The signal handler body, exposed for direct testing: dumps the flight
// recorder to `path` and best-effort-flushes the journal. Returns records
// written, or 0 when the file could not be opened.
std::size_t WriteCrashDump(const char* path);

}  // namespace fl::ops
