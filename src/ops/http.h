// Dependency-free blocking HTTP/1.1 server for the live ops plane (Sec. 5:
// the paper's dashboards/monitors assume an always-on serving surface; this
// is the embedded /statusz-/metrics plane production servers treat as table
// stakes).
//
// Deliberately tiny: GET/HEAD only, no request bodies, exact-path routing,
// keep-alive + pipelining, loopback bind by default. One accept thread
// hands connections to a small worker pool; every socket carries an I/O
// timeout so a stuck peer cannot wedge a worker, and Stop() shuts down
// every live fd so teardown is prompt.
//
// The request parser is a pure function over a byte buffer (no sockets), so
// malformed-input behavior is unit-testable without network plumbing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace fl::ops {

struct HttpRequest {
  std::string method;   // e.g. "GET"
  std::string target;   // raw request-target, e.g. "/statusz?format=html"
  std::string path;     // target up to '?'
  std::string query;    // after '?', may be empty
  std::string version;  // "HTTP/1.0" or "HTTP/1.1"
  // Keys lowercased; values trimmed of surrounding whitespace.
  std::vector<std::pair<std::string, std::string>> headers;
  bool keep_alive = true;

  // Lowercase key lookup; nullptr when absent.
  const std::string* FindHeader(std::string_view lowercase_key) const;
  // True when `key=value` appears in the query string.
  bool QueryParamIs(std::string_view key, std::string_view value) const;
};

struct HttpLimits {
  std::size_t max_head_bytes = 16 * 1024;  // request line + all headers
  std::size_t max_headers = 64;
};

enum class HttpParse {
  kOk,          // one full request head parsed; *consumed bytes eaten
  kNeedMore,    // no complete head yet; read more bytes
  kBadRequest,  // malformed request line / header (respond 400, close)
  kTooLarge,    // head or header count over limits (respond 431, close)
};

// Parses one request head from the front of `buffer`. Accepts CRLF and bare
// LF line endings. Requests carrying a body (Content-Length > 0 or any
// Transfer-Encoding) are rejected as kBadRequest — the ops plane is
// read-only.
HttpParse ParseHttpRequest(std::string_view buffer, HttpRequest* req,
                           std::size_t* consumed,
                           const HttpLimits& limits = {});

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Text(std::string body, int status = 200);
  static HttpResponse Json(std::string body, int status = 200);
  static HttpResponse Html(std::string body, int status = 200);
};

const char* HttpStatusReason(int status);

// Full wire bytes for a response (status line, Content-Type/-Length,
// Connection, empty line, body; body omitted for HEAD).
std::string SerializeHttpResponse(const HttpResponse& resp, bool keep_alive,
                                  bool head_only = false);

class HttpServer {
 public:
  struct Options {
    int port = 0;                             // 0 = ephemeral
    std::string bind_address = "127.0.0.1";   // ops plane is loopback-only
    std::size_t worker_threads = 3;
    HttpLimits limits;
    int io_timeout_seconds = 5;               // per-socket send/recv timeout
    std::size_t max_requests_per_connection = 1000;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  // (No default argument: a nested aggregate's member initializers are not
  // usable as a default-arg initializer inside the enclosing class body.)
  explicit HttpServer(Options opts);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Registers an exact-path handler; call before Start(). Unknown paths
  // answer 404, non-GET/HEAD methods 405.
  void Handle(std::string path, Handler handler);

  // Binds + listens and spawns the accept/worker threads. Fails (Status)
  // when the port is taken or sockets are unavailable on this platform.
  Status Start();
  // Stops accepting, shuts down live connections, joins all threads.
  // Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (resolves ephemeral port 0); valid after Start().
  int port() const { return port_; }

  std::uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }
  std::uint64_t connections_accepted() const {
    return connections_accepted_.load(std::memory_order_relaxed);
  }
  std::uint64_t parse_errors() const {
    return parse_errors_.load(std::memory_order_relaxed);
  }

 private:
  void AcceptLoop();
  void WorkerLoop();
  void ServeConnection(int fd);
  void CloseTracked(int fd);

  Options opts_;
  std::map<std::string, Handler, std::less<>> handlers_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  // Written by Start()/Stop(), read by AcceptLoop() while it blocks in
  // accept(); atomic so Stop() can invalidate it without a lock.
  std::atomic<int> listen_fd_{-1};
  int port_ = 0;

  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::vector<int> pending_fds_;

  std::mutex live_mu_;
  std::set<int> live_fds_;

  std::atomic<std::uint64_t> requests_served_{0};
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> parse_errors_{0};
};

// Minimal blocking HTTP/1.1 GET client (used by fl_top and the end-to-end
// tests; doubles as the raw-socket test client the HTTP server is validated
// with). Fills `status_out` and `body_out` on success.
Status HttpGet(const std::string& host, int port, const std::string& path,
               int* status_out, std::string* body_out,
               int timeout_seconds = 5);

}  // namespace fl::ops
