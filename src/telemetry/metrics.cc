#include "src/telemetry/metrics.h"

#include <algorithm>
#include <cctype>

#include "src/common/status.h"

namespace fl::telemetry {

Histogram::Histogram(HistogramOptions opts) {
  FL_CHECK(opts.first_bound > 0 && opts.growth > 1.0 && opts.buckets > 0);
  bounds_.reserve(opts.buckets);
  double b = opts.first_bound;
  for (std::size_t i = 0; i < opts.buckets; ++i) {
    bounds_.push_back(b);
    b *= opts.growth;
  }
  counts_ = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
}

void Histogram::Observe(double v) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - bounds_.begin());
  counts_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  for (;;) {
    double s;
    __builtin_memcpy(&s, &old, sizeof(s));
    s += v;
    std::uint64_t neu;
    __builtin_memcpy(&neu, &s, sizeof(neu));
    if (sum_bits_.compare_exchange_weak(old, neu,
                                        std::memory_order_relaxed)) {
      break;
    }
  }
}

double Histogram::Sum() const {
  const std::uint64_t b = sum_bits_.load(std::memory_order_relaxed);
  double s;
  __builtin_memcpy(&s, &b, sizeof(s));
  return s;
}

double Histogram::Quantile(double p) const {
  const std::vector<std::uint64_t> counts = BucketCounts();
  std::uint64_t total = 0;
  for (std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = std::clamp(p, 0.0, 100.0) / 100.0 *
                        static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const std::uint64_t prev = cum;
    cum += counts[i];
    if (static_cast<double>(cum) < target) continue;
    if (i == counts.size() - 1) return bounds_.back();  // overflow bucket
    const double lo = i == 0 ? 0.0 : bounds_[i - 1];
    const double hi = bounds_[i];
    // Midpoint-clamped interpolation: the c samples in this bucket are
    // treated as sitting at in-bucket midpoints, so frac stays inside
    // [0.5/c, 1 - 0.5/c]. Raw interpolation reported the exact bucket
    // boundary for quantiles landing on a cumulative-count edge, and spread
    // a single-sample bucket's answers across its whole width (p1 near the
    // bottom, p99 near the top, for one observation).
    const double c = static_cast<double>(counts[i]);
    const double frac = std::clamp((target - static_cast<double>(prev)) / c,
                                   0.5 / c, 1.0 - 0.5 / c);
    return lo + (hi - lo) * frac;
  }
  return bounds_.back();
}

std::vector<std::uint64_t> Histogram::BucketCounts() const {
  std::vector<std::uint64_t> out(counts_.size());
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::ResetForTest() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

const MetricsSnapshot::CounterValue* MetricsSnapshot::FindCounter(
    std::string_view name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const MetricsSnapshot::GaugeValue* MetricsSnapshot::FindGauge(
    std::string_view name) const {
  for (const auto& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const MetricsSnapshot::HistogramValue* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* const registry = new MetricsRegistry();  // leaked
  return *registry;
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  const std::scoped_lock lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name,
                                         HistogramOptions opts) {
  const std::scoped_lock lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(opts))
             .first;
  }
  return it->second.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  const std::scoped_lock lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramValue hv;
    hv.name = name;
    hv.bounds = h->bounds();
    hv.counts = h->BucketCounts();
    hv.count = h->Count();
    hv.sum = h->Sum();
    snap.histograms.push_back(std::move(hv));
  }
  return snap;
}

void MetricsRegistry::ResetValuesForTest() {
  const std::scoped_lock lock(mu_);
  for (auto& [name, c] : counters_) c->ResetForTest();
  for (auto& [name, g] : gauges_) g->ResetForTest();
  for (auto& [name, h] : histograms_) h->ResetForTest();
}

std::string MetricsRegistry::Sanitize(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    const unsigned char u = static_cast<unsigned char>(c);
    if (std::isalnum(u)) {
      out += static_cast<char>(std::tolower(u));
    } else {
      out += '_';
    }
  }
  if (out.empty() || std::isdigit(static_cast<unsigned char>(out[0]))) {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace fl::telemetry
