// Causal trace context (Sec. 4.1 / Sec. 8 diagnosis): a compact record of
// "which round / session / device caused this work", carried implicitly
// through actor messages so spans opened on different actors (device agent →
// selector → aggregator → master aggregator) link into one tree per round.
//
// The context is a thread-local value, not a span: installing it costs four
// u64 stores and no locking, so the actor runtime can stamp every envelope
// even with telemetry OFF (the flight recorder reads it too). Span linkage
// only happens inside Tracer::Begin, which instrumentation sites already
// gate on telemetry::Enabled().
//
// Propagation rules:
//  * ActorSystem::Send captures the sender's current context into the
//    envelope; Drain installs it around OnMessage (ScopedTraceContext).
//  * SendAfter captures at call time (the timer fires on a neutral stack).
//  * Server → device crosses the event queue as plain callbacks, so
//    TaskAssignment carries the context explicitly and the device agent
//    installs it for the session's lifetime.
#pragma once

#include <cstdint>

namespace fl::telemetry {

struct TraceContext {
  std::uint64_t round = 0;        // RoundId::value, 0 = none
  std::uint64_t session = 0;      // SessionId::value, 0 = none
  std::uint64_t device = 0;       // DeviceId::value, 0 = none
  std::uint64_t parent_span = 0;  // span id to parent orphan spans under

  constexpr bool empty() const {
    return round == 0 && session == 0 && device == 0 && parent_span == 0;
  }
  constexpr bool operator==(const TraceContext&) const = default;
};

// The calling thread's ambient context. Mutable: actor Drain and device
// callbacks install/restore it via ScopedTraceContext.
inline TraceContext& CurrentTraceContext() {
  thread_local TraceContext ctx;
  return ctx;
}

// RAII install/restore. Restores the previous context even on exceptions so
// nested message deliveries (Drain re-entrancy through direct calls) cannot
// leak a stale context.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& ctx)
      : saved_(CurrentTraceContext()) {
    CurrentTraceContext() = ctx;
  }
  ~ScopedTraceContext() { CurrentTraceContext() = saved_; }
  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext saved_;
};

}  // namespace fl::telemetry
