#include "src/telemetry/flight_recorder.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "src/telemetry/telemetry.h"

namespace fl::telemetry {

namespace internal {

std::atomic<bool>& FlightEnabledFlag() {
  static std::atomic<bool>* const flag = [] {
    bool on = true;
    if (const char* env = std::getenv("FL_FLIGHT_RECORDER")) {
      on = !(std::strcmp(env, "0") == 0 || std::strcmp(env, "off") == 0 ||
             std::strcmp(env, "OFF") == 0);
    }
    return new std::atomic<bool>(on);  // leaked: process lifetime
  }();
  return *flag;
}

}  // namespace internal

FlightRecorder& FlightRecorder::Global() {
  static FlightRecorder* const recorder = new FlightRecorder();  // leaked
  return *recorder;
}

FlightRecorder::Ring* FlightRecorder::ThisThreadRing() {
  // One ring per (thread, recorder) pair; tests construct no extra
  // recorders, so a plain thread_local keyed on Global() suffices. The ring
  // is leaked deliberately: a crash dump after the thread exits must still
  // see its records.
  thread_local Ring* ring = [this]() -> Ring* {
    const std::size_t idx = ring_count_.fetch_add(1, std::memory_order_relaxed);
    if (idx >= kMaxThreads) {
      rings_exhausted_.store(true, std::memory_order_relaxed);
      return nullptr;
    }
    Ring* r = new Ring();
    rings_[idx].store(r, std::memory_order_release);
    return r;
  }();
  return ring;
}

void FlightRecorder::Record(std::uint8_t source, std::uint8_t kind,
                            std::uint64_t sim_ms, std::uint64_t device,
                            std::uint64_t session, std::uint64_t round,
                            std::uint32_t aux_a, std::uint16_t aux_b) {
  Ring* ring = ThisThreadRing();
  if (ring == nullptr) return;  // > kMaxThreads writers; drop
  const std::uint64_t seq = next_seq_.fetch_add(1, std::memory_order_relaxed);
  // Refresh the cached wall sample once per 64 sim-ms stride (first record
  // included: last_sim_ms starts at ~0 so the difference is huge). Wall time
  // is only for correlating dumps with external logs; sub-stride staleness
  // is invisible there, and the clock read it saves is the single largest
  // cost on this path.
  if (sim_ms - ring->last_sim_ms >= 64) {
    ring->last_sim_ms = sim_ms;
    ring->last_wall_us = static_cast<std::uint64_t>(WallMicros());
  }
  const std::uint64_t wall = ring->last_wall_us;
  const std::size_t slot = ring->write_index++ % kSlotsPerThread;
  std::atomic<std::uint64_t>* w = &ring->words[slot * kWordsPerSlot];
  // Single-writer seqlock: invalidate, payload (relaxed), publish (release).
  w[6].store(0, std::memory_order_release);
  w[0].store(sim_ms, std::memory_order_relaxed);
  w[1].store(wall, std::memory_order_relaxed);
  w[2].store(device, std::memory_order_relaxed);
  w[3].store(session, std::memory_order_relaxed);
  w[4].store(round, std::memory_order_relaxed);
  w[5].store(static_cast<std::uint64_t>(aux_a) |
                 (static_cast<std::uint64_t>(aux_b) << 32) |
                 (static_cast<std::uint64_t>(source) << 48) |
                 (static_cast<std::uint64_t>(kind) << 56),
             std::memory_order_relaxed);
  w[6].store(seq, std::memory_order_release);
}

bool FlightRecorder::ReadSlot(const Ring& ring, std::size_t slot,
                              FlightRecord* out) {
  const std::atomic<std::uint64_t>* w = &ring.words[slot * kWordsPerSlot];
  const std::uint64_t s1 = w[6].load(std::memory_order_acquire);
  if (s1 == 0) return false;
  out->sim_ms = w[0].load(std::memory_order_relaxed);
  out->wall_us = w[1].load(std::memory_order_relaxed);
  out->device = w[2].load(std::memory_order_relaxed);
  out->session = w[3].load(std::memory_order_relaxed);
  out->round = w[4].load(std::memory_order_relaxed);
  const std::uint64_t packed = w[5].load(std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_acquire);
  const std::uint64_t s2 = w[6].load(std::memory_order_relaxed);
  if (s1 != s2) return false;  // slot being rewritten under us
  out->seq = s1;
  out->aux_a = static_cast<std::uint32_t>(packed & 0xffffffffu);
  out->aux_b = static_cast<std::uint16_t>((packed >> 32) & 0xffffu);
  out->source = static_cast<std::uint8_t>((packed >> 48) & 0xffu);
  out->kind = static_cast<std::uint8_t>((packed >> 56) & 0xffu);
  return true;
}

std::vector<FlightRecord> FlightRecorder::Snapshot() const {
  std::vector<FlightRecord> records;
  ForEachUnordered([&records](const FlightRecord& rec) {
    records.push_back(rec);
  });
  std::sort(records.begin(), records.end(),
            [](const FlightRecord& a, const FlightRecord& b) {
              return a.seq < b.seq;
            });
  return records;
}

void FlightRecorder::Clear() {
  const std::size_t n = ring_count_.load(std::memory_order_acquire);
  for (std::size_t r = 0; r < n && r < kMaxThreads; ++r) {
    Ring* ring = rings_[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t s = 0; s < kSlotsPerThread; ++s) {
      ring->words[s * kWordsPerSlot + 6].store(0, std::memory_order_release);
    }
  }
}

}  // namespace fl::telemetry
