// Always-on flight recorder (Sec. 8 / ROADMAP "undebuggable without it"):
// fixed-memory, per-thread rings of compact binary records that keep the
// last moments of protocol history even when telemetry and the journal are
// OFF. When something trips — a HealthEvaluator breach, an abandoned round,
// a fatal signal — the rings are dumped into a diagnostic bundle
// (src/ops/debug_bundle.h) and replayed by `fl_analyze --critical-path`.
//
// Memory model:
//  * One ring per writer thread, registered on first Record() and retained
//    for process lifetime (a dump after a thread exits still sees its tail).
//  * Each slot is 7 atomic u64 words (56 B): six payload words written with
//    relaxed stores, then a sequence word written with a release store.
//    Readers (Snapshot / crash dump) validate each slot with an acquire
//    load, copy, fence, re-load — the single-writer seqlock. A torn read
//    would need the writer to lap the whole ring (kSlotsPerThread records)
//    inside the reader's sub-microsecond copy window, so validation failures
//    mean "slot being reused right now" and the slot is simply skipped.
//  * No allocation, locking, or RMW on the record path (one relaxed gate
//    load, one relaxed fetch_add on the global sequence); bounded by
//    kMaxThreads * kSlotsPerThread * 56 B total.
//
// Runtime switch: default ON (this is the point — evidence exists before
// anyone asks for it); FL_FLIGHT_RECORDER=0 disables for the rare
// deployment that cannot spare the memory. One relaxed load per hook.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace fl::telemetry {

namespace internal {
// Initialized from FL_FLIGHT_RECORDER on first use ("0"/"off" → false).
std::atomic<bool>& FlightEnabledFlag();
}  // namespace internal

inline bool FlightRecorderEnabled() {
  return internal::FlightEnabledFlag().load(std::memory_order_relaxed);
}
inline void SetFlightRecorderEnabled(bool on) {
  internal::FlightEnabledFlag().store(on, std::memory_order_relaxed);
}

// A decoded slot. `source` and `kind` are opaque u8 codes at this layer;
// src/analytics/flight_dump.h owns the mapping to journal enums so
// fl_telemetry keeps zero protocol dependencies.
struct FlightRecord {
  std::uint64_t seq = 0;      // global order of the Record() call, from 1
  std::uint64_t sim_ms = 0;
  std::uint64_t wall_us = 0;  // telemetry::WallMicros() at record time
  std::uint64_t device = 0;
  std::uint64_t session = 0;
  std::uint64_t round = 0;
  std::uint32_t aux_a = 0;    // per-kind payload (goal, phase index, ...)
  std::uint16_t aux_b = 0;    // per-kind payload (reason code, ...)
  std::uint8_t source = 0;
  std::uint8_t kind = 0;
};

class FlightRecorder {
 public:
  // 4096 slots x 56 B = 224 KiB per writer thread: the last several rounds
  // of protocol history, small enough that the ring's cache footprint stays
  // out of the simulator's way (a larger ring measurably taxes the fleet
  // macro bench through L2 eviction, not instruction cost).
  static constexpr std::size_t kSlotsPerThread = std::size_t{1} << 12;
  static constexpr std::size_t kMaxThreads = 128;
  static constexpr std::size_t kWordsPerSlot = 7;  // 6 payload + seq = 56 B

  static FlightRecorder& Global();

  // Callers pre-check FlightRecorderEnabled(); Record() itself always
  // writes (tests and the dump drive it deterministically).
  void Record(std::uint8_t source, std::uint8_t kind, std::uint64_t sim_ms,
              std::uint64_t device, std::uint64_t session, std::uint64_t round,
              std::uint32_t aux_a = 0, std::uint16_t aux_b = 0);

  // All currently-valid slots across every ring, sorted by seq. Allocates;
  // not for signal handlers (those use ForEachUnordered).
  std::vector<FlightRecord> Snapshot() const;

  // Signal-safe iteration: no allocation or locking; slots visit in
  // arbitrary order. `fn` is called with each validated record.
  template <typename Fn>
  void ForEachUnordered(Fn&& fn) const {
    const std::size_t n = ring_count_.load(std::memory_order_acquire);
    for (std::size_t r = 0; r < n && r < kMaxThreads; ++r) {
      const Ring* ring = rings_[r].load(std::memory_order_acquire);
      if (ring == nullptr) continue;
      for (std::size_t s = 0; s < kSlotsPerThread; ++s) {
        FlightRecord rec;
        if (ReadSlot(*ring, s, &rec)) fn(rec);
      }
    }
  }

  // Invalidates every slot (tests; bundle rate-limiting keeps real dumps
  // from needing this).
  void Clear();

  std::uint64_t total_records() const {
    return next_seq_.load(std::memory_order_relaxed) - 1;
  }
  std::size_t rings_registered() const {
    return ring_count_.load(std::memory_order_relaxed);
  }
  // True when a thread failed to get a ring (> kMaxThreads writers).
  bool rings_exhausted() const {
    return rings_exhausted_.load(std::memory_order_relaxed);
  }

 private:
  struct Ring {
    // Slot layout: [0]=sim_ms [1]=wall_us [2]=device [3]=session [4]=round
    // [5]=aux_a | aux_b<<32 | source<<48 | kind<<56, [6]=seq (0 = invalid).
    std::vector<std::atomic<std::uint64_t>> words;
    // Owner thread only. The wall clock is sampled once per distinct sim_ms
    // (a discrete-event burst shares one sample): the clock read is the
    // single largest cost on the record path, and sub-sim-tick wall deltas
    // carry no forensic signal.
    std::uint64_t write_index = 0;
    std::uint64_t last_sim_ms = ~std::uint64_t{0};
    std::uint64_t last_wall_us = 0;
    Ring() : words(kSlotsPerThread * kWordsPerSlot) {}
  };

  FlightRecorder() = default;
  Ring* ThisThreadRing();
  static bool ReadSlot(const Ring& ring, std::size_t slot, FlightRecord* out);

  std::atomic<Ring*> rings_[kMaxThreads] = {};
  std::atomic<std::size_t> ring_count_{0};
  std::atomic<bool> rings_exhausted_{false};
  std::atomic<std::uint64_t> next_seq_{1};
};

}  // namespace fl::telemetry
