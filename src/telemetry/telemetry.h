// Telemetry master switch (Sec. 5: analytics as a first-class subsystem).
//
// Two gates, both defaulting to "off costs nothing":
//  * Compile time: building with -DFL_TELEMETRY=OFF (CMake option) defines
//    FL_TELEMETRY_DISABLED, which turns Enabled() into a constant false so
//    every instrumentation site folds away entirely.
//  * Run time: Enabled() is a single relaxed atomic load. Instrumentation
//    sites are written as `if (telemetry::Enabled()) { ... }`, so a disabled
//    deployment pays ~one predictable branch per site and performs no
//    allocation, locking, or atomic RMW (verified by
//    bench_telemetry_overhead and the zero-allocation test).
//
// The flag is a header-inline atomic so that headers (e.g. bench_common.h)
// can consult it without linking fl_telemetry.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>

namespace fl::telemetry {

#ifdef FL_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
inline constexpr bool kCompiledIn = true;

namespace internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace internal

inline bool Enabled() {
  return internal::g_enabled.load(std::memory_order_relaxed);
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on, std::memory_order_relaxed);
}
#endif

// Small dense per-thread ordinal, assigned on first use. Shared by the
// counter cell sharding and the tracer's Perfetto `tid` field, so one
// thread's work lines up across both views.
inline std::size_t ThreadOrdinal() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t ordinal =
      next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

// Monotonic wall clock in microseconds (steady_clock; origin is the first
// call in the process). SimTime stays the primary clock for everything
// event-driven; wall time exists for the thread-pool paths that run outside
// the discrete-event simulator.
inline std::int64_t WallMicros() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

}  // namespace fl::telemetry
