#include "src/telemetry/trace.h"

namespace fl::telemetry {

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();  // leaked: process lifetime
  return *tracer;
}

std::vector<std::uint64_t>& Tracer::ThreadStack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

std::uint64_t Tracer::Begin(std::string name, SimTime sim_now,
                            std::uint64_t parent) {
  if (parent == kInheritParent) {
    const auto& stack = ThreadStack();
    parent = stack.empty() ? kNoParent : stack.back();
  }
  const std::int64_t wall = WallMicros();
  const std::uint32_t tid = static_cast<std::uint32_t>(ThreadOrdinal());
  const std::scoped_lock lock(mu_);
  const std::uint64_t id = next_id_++;
  SpanRecord rec;
  rec.id = id;
  rec.parent = parent;
  rec.name = std::move(name);
  rec.sim_start = sim_now;
  rec.wall_start_us = wall;
  rec.tid = tid;
  open_.emplace(id, std::move(rec));
  return id;
}

void Tracer::AddAttr(std::uint64_t span, std::string key, std::string value) {
  const std::scoped_lock lock(mu_);
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  it->second.attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::End(std::uint64_t span, SimTime sim_now) {
  const std::int64_t wall = WallMicros();
  const std::scoped_lock lock(mu_);
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  SpanRecord rec = std::move(it->second);
  open_.erase(it);
  rec.sim_end = sim_now;
  rec.wall_end_us = wall;
  if (completed_.size() >= kMaxCompleted) {
    ++dropped_;
    return;
  }
  completed_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::Completed() const {
  const std::scoped_lock lock(mu_);
  return std::vector<SpanRecord>(completed_.begin(), completed_.end());
}

std::size_t Tracer::open_spans() const {
  const std::scoped_lock lock(mu_);
  return open_.size();
}

std::uint64_t Tracer::dropped_spans() const {
  const std::scoped_lock lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  const std::scoped_lock lock(mu_);
  open_.clear();
  completed_.clear();
  dropped_ = 0;
  // Thread-local parent stacks are deliberately left alone: live ScopedSpans
  // keep their (now dangling) ids, whose End() calls become harmless no-ops.
}

void ScopedSpan::Open(const char* name, std::uint64_t parent) {
  id_ = Tracer::Global().Begin(std::string(name), SimTime{}, parent);
  Tracer::ThreadStack().push_back(id_);
}

void ScopedSpan::Close() {
  auto& stack = Tracer::ThreadStack();
  if (!stack.empty() && stack.back() == id_) {
    stack.pop_back();
  }
  Tracer::Global().End(id_, SimTime{});
}

}  // namespace fl::telemetry
