#include "src/telemetry/trace.h"

#include "src/telemetry/flight_recorder.h"
#include "src/telemetry/trace_context.h"

namespace fl::telemetry {
namespace {

// Flight-recorder codes for span records. Kept clear of the journal-source
// range (src/analytics/flight_dump.h) so a dump can tell them apart.
constexpr std::uint8_t kFlightSpanSource = 250;
constexpr std::uint8_t kFlightSpanBegin = 1;
constexpr std::uint8_t kFlightSpanEnd = 2;

// FNV-1a over the span name: lets the flight dump label span records
// without storing strings in the fixed-width slots.
std::uint32_t NameHash(const std::string& name) {
  std::uint32_t h = 2166136261u;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 16777619u;
  }
  return h;
}

}  // namespace

Tracer& Tracer::Global() {
  static Tracer* const tracer = new Tracer();  // leaked: process lifetime
  return *tracer;
}

std::vector<std::uint64_t>& Tracer::ThreadStack() {
  thread_local std::vector<std::uint64_t> stack;
  return stack;
}

std::uint64_t Tracer::Begin(std::string name, SimTime sim_now,
                            std::uint64_t parent) {
  const TraceContext& ctx = CurrentTraceContext();
  bool flow_parent = false;
  if (parent == kInheritParent) {
    const auto& stack = ThreadStack();
    if (!stack.empty()) {
      parent = stack.back();
    } else if (ctx.parent_span != 0) {
      // Orphan span on a thread with an ambient context (a message handler
      // or device callback): parent it under the causal span from the
      // sending side and mark it for a Perfetto flow arrow.
      parent = ctx.parent_span;
      flow_parent = true;
    } else {
      parent = kNoParent;
    }
  }
  const std::int64_t wall = WallMicros();
  const std::uint32_t tid = static_cast<std::uint32_t>(ThreadOrdinal());
  std::uint64_t id;
  {
    const std::scoped_lock lock(mu_);
    id = next_id_++;
    SpanRecord rec;
    rec.id = id;
    rec.parent = parent;
    rec.name = std::move(name);
    rec.sim_start = sim_now;
    rec.wall_start_us = wall;
    rec.tid = tid;
    rec.ctx_round = ctx.round;
    rec.ctx_session = ctx.session;
    rec.ctx_device = ctx.device;
    rec.flow_parent = flow_parent;
    const auto it = open_.emplace(id, std::move(rec)).first;
    if (FlightRecorderEnabled()) {
      FlightRecorder::Global().Record(
          kFlightSpanSource, kFlightSpanBegin,
          static_cast<std::uint64_t>(sim_now.millis), ctx.device, ctx.session,
          ctx.round, NameHash(it->second.name),
          static_cast<std::uint16_t>(id & 0xffffu));
    }
  }
  return id;
}

void Tracer::AddAttr(std::uint64_t span, std::string key, std::string value) {
  const std::scoped_lock lock(mu_);
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  it->second.attrs.emplace_back(std::move(key), std::move(value));
}

void Tracer::End(std::uint64_t span, SimTime sim_now) {
  const std::int64_t wall = WallMicros();
  const std::scoped_lock lock(mu_);
  const auto it = open_.find(span);
  if (it == open_.end()) return;
  SpanRecord rec = std::move(it->second);
  open_.erase(it);
  rec.sim_end = sim_now;
  rec.wall_end_us = wall;
  if (FlightRecorderEnabled()) {
    FlightRecorder::Global().Record(
        kFlightSpanSource, kFlightSpanEnd,
        static_cast<std::uint64_t>(sim_now.millis), rec.ctx_device,
        rec.ctx_session, rec.ctx_round, NameHash(rec.name),
        static_cast<std::uint16_t>(span & 0xffffu));
  }
  if (completed_.size() >= kMaxCompleted) {
    ++dropped_;
    return;
  }
  completed_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::Completed() const {
  const std::scoped_lock lock(mu_);
  return std::vector<SpanRecord>(completed_.begin(), completed_.end());
}

std::size_t Tracer::open_spans() const {
  const std::scoped_lock lock(mu_);
  return open_.size();
}

std::uint64_t Tracer::dropped_spans() const {
  const std::scoped_lock lock(mu_);
  return dropped_;
}

void Tracer::Clear() {
  const std::scoped_lock lock(mu_);
  open_.clear();
  completed_.clear();
  dropped_ = 0;
  // Thread-local parent stacks are deliberately left alone: live ScopedSpans
  // keep their (now dangling) ids, whose End() calls become harmless no-ops.
}

void ScopedSpan::Open(const char* name, std::uint64_t parent) {
  id_ = Tracer::Global().Begin(std::string(name), SimTime{}, parent);
  Tracer::ThreadStack().push_back(id_);
}

void ScopedSpan::Close() {
  auto& stack = Tracer::ThreadStack();
  if (!stack.empty() && stack.back() == id_) {
    stack.pop_back();
  }
  Tracer::Global().End(id_, SimTime{});
}

}  // namespace fl::telemetry
