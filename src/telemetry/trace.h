// Round-phase tracer (Sec. 2.2 / Sec. 5): records spans — named intervals
// with SimTime and wall-clock bounds, a parent link, and free-form
// attributes (round / session / device ids) — exported as Chrome
// `trace_event` JSON loadable in Perfetto (src/telemetry/export.h).
//
// Two usage styles:
//  * ScopedSpan — RAII for code whose lifetime is a C++ scope (the parallel
//    round engine's per-round and per-client-update work). These are
//    wall-clock spans; nesting parents are tracked per thread, so
//    concurrent workers build correct trees, and cross-thread children can
//    name their parent explicitly.
//  * Manual Begin()/End() with an explicit parent and SimTime — for
//    event-driven code whose span crosses many actor messages (a round's
//    Selection → Configuration → Reporting phases live across dozens of
//    envelopes on the discrete-event queue).
//
// Instrumentation sites gate on telemetry::Enabled(); the disabled path of
// ScopedSpan is one branch with no locking or allocation (name is a
// const char*, so not even a std::string is built).
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/sim_time.h"
#include "src/telemetry/telemetry.h"

namespace fl::telemetry {

struct SpanRecord {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;  // 0 = root
  std::string name;
  SimTime sim_start{};
  SimTime sim_end{};
  std::int64_t wall_start_us = 0;
  std::int64_t wall_end_us = 0;
  std::uint32_t tid = 0;  // ThreadOrdinal() of the beginning thread
  // Causal context (src/telemetry/trace_context.h) captured at Begin; zero
  // when none was installed. `flow_parent` is set when the parent link came
  // from the ambient context rather than the same-thread span stack — the
  // exporter draws these as Perfetto flow arrows across actor boundaries.
  std::uint64_t ctx_round = 0;
  std::uint64_t ctx_session = 0;
  std::uint64_t ctx_device = 0;
  bool flow_parent = false;
  std::vector<std::pair<std::string, std::string>> attrs;
};

class Tracer {
 public:
  // Explicit "no parent" for manual spans.
  static constexpr std::uint64_t kNoParent = 0;
  // Inherit the calling thread's innermost open ScopedSpan (if any).
  static constexpr std::uint64_t kInheritParent = ~0ull;

  static Tracer& Global();

  // Opens a span; returns its id (never 0). Instrumentation sites check
  // Enabled() first; calling Begin directly always records, which is what
  // lets tests and exporters drive the tracer deterministically.
  std::uint64_t Begin(std::string name, SimTime sim_now = SimTime{},
                      std::uint64_t parent = kInheritParent);
  // Attaches an attribute to an open span; ignored after End.
  void AddAttr(std::uint64_t span, std::string key, std::string value);
  // Closes the span; ignored for unknown/closed ids.
  void End(std::uint64_t span, SimTime sim_now = SimTime{});

  std::vector<SpanRecord> Completed() const;
  std::size_t open_spans() const;
  std::uint64_t dropped_spans() const;
  // Discards all open and completed spans (tests, or between experiment
  // phases).
  void Clear();

  // Completed spans beyond this cap are dropped (counted in
  // dropped_spans()) so multi-day fleet simulations cannot grow unbounded.
  static constexpr std::size_t kMaxCompleted = 1 << 20;

 private:
  friend class ScopedSpan;
  static std::vector<std::uint64_t>& ThreadStack();

  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::uint64_t dropped_ = 0;
  std::unordered_map<std::uint64_t, SpanRecord> open_;
  std::deque<SpanRecord> completed_;
};

// RAII wall-clock span over the global tracer; see file comment.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      std::uint64_t parent = Tracer::kInheritParent) {
    if (Enabled()) Open(name, parent);
  }
  ~ScopedSpan() {
    if (id_ != 0) Close();
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  // 0 when the span is inactive (telemetry disabled at construction).
  std::uint64_t id() const { return id_; }
  void AddAttr(const char* key, std::string value) {
    if (id_ != 0) Tracer::Global().AddAttr(id_, key, std::move(value));
  }

 private:
  void Open(const char* name, std::uint64_t parent);
  void Close();

  std::uint64_t id_ = 0;
};

}  // namespace fl::telemetry
