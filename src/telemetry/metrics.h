// Thread-safe metrics registry (Sec. 5): counters, gauges and
// fixed-exponential-bucket histograms feeding the Prometheus/JSON dumps and
// the MonitorHub time-series monitors.
//
// Concurrency model (all of it TSan-clean by construction):
//  * Counter increments go to one of kCounterCells cache-line-sized cells
//    picked by the calling thread's ThreadOrdinal(), so hot paths under the
//    PR 1 ThreadPool never contend on a shared line; Value() sums the cells.
//  * Histograms use one relaxed atomic per bucket plus a CAS-loop double sum.
//  * Registry lookups take a mutex, but instruments are never removed, so
//    callers cache the returned pointer (function-local static or a field)
//    and the mutex stays off the hot path. ResetValuesForTest() zeroes
//    values without invalidating any cached pointer.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/telemetry/telemetry.h"

namespace fl::telemetry {

// Monotonic counter with per-thread sharded cells.
class Counter {
 public:
  static constexpr std::size_t kCells = 16;

  void Add(std::uint64_t n = 1) {
    cells_[ThreadOrdinal() % kCells].v.fetch_add(n,
                                                 std::memory_order_relaxed);
  }
  std::uint64_t Value() const {
    std::uint64_t sum = 0;
    for (const Cell& c : cells_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }
  void ResetForTest() {
    for (Cell& c : cells_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kCells> cells_{};
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void Set(double v) { bits_.store(ToBits(v), std::memory_order_relaxed); }
  void Add(double d) {
    std::uint64_t old = bits_.load(std::memory_order_relaxed);
    while (!bits_.compare_exchange_weak(old, ToBits(FromBits(old) + d),
                                        std::memory_order_relaxed)) {
    }
  }
  double Value() const {
    return FromBits(bits_.load(std::memory_order_relaxed));
  }
  void ResetForTest() { Set(0); }

 private:
  static std::uint64_t ToBits(double v) {
    std::uint64_t b;
    static_assert(sizeof(b) == sizeof(v));
    __builtin_memcpy(&b, &v, sizeof(b));
    return b;
  }
  static double FromBits(std::uint64_t b) {
    double v;
    __builtin_memcpy(&v, &b, sizeof(v));
    return v;
  }
  std::atomic<std::uint64_t> bits_{0};
};

// Bucket layout for a Histogram: upper bound of bucket i is
// first_bound * growth^i (Prometheus `le` semantics: v <= bound lands in
// bucket i); values above the last bound go to an implicit overflow bucket.
struct HistogramOptions {
  double first_bound = 1.0;
  double growth = 2.0;
  std::size_t buckets = 24;
};

class Histogram {
 public:
  explicit Histogram(HistogramOptions opts);

  void Observe(double v);

  std::uint64_t Count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double Sum() const;
  double Mean() const {
    const std::uint64_t n = Count();
    return n > 0 ? Sum() / static_cast<double>(n) : 0.0;
  }
  // Midpoint-clamped linear interpolation inside the owning bucket; p in
  // [0, 100]. Estimates never sit exactly on a bucket boundary, and a
  // single-sample bucket reports its midpoint for every p. The overflow
  // bucket reports its lower bound (the estimate is clamped to the
  // configured range).
  double Quantile(double p) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // counts()[i] pairs with bounds()[i]; the extra last element is overflow.
  std::vector<std::uint64_t> BucketCounts() const;

  void ResetForTest();

 private:
  std::vector<double> bounds_;
  // bounds_.size() + 1 entries; the last one is the overflow bucket.
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double stored as bits, CAS add
};

// Point-in-time copy of every instrument, safe to read at leisure.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    double value = 0;
  };
  struct HistogramValue {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  // bounds.size() + 1 (overflow last)
    std::uint64_t count = 0;
    double sum = 0;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  const CounterValue* FindCounter(std::string_view name) const;
  const GaugeValue* FindGauge(std::string_view name) const;
  const HistogramValue* FindHistogram(std::string_view name) const;
};

class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  // Get-or-create by name. Names should be Prometheus-style
  // ([a-zA-Z_][a-zA-Z0-9_]*); Sanitize() maps arbitrary strings into that
  // alphabet. Returned pointers stay valid for the registry's lifetime.
  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  Histogram* GetHistogram(std::string_view name, HistogramOptions opts = {});

  MetricsSnapshot Snapshot() const;

  // Zeroes every value but keeps every instrument alive (cached pointers in
  // instrumentation sites stay valid across tests).
  void ResetValuesForTest();

  // Lowercases and maps every char outside [a-z0-9_] to '_' (so an actor
  // name like "aggregator-r12-0" can become part of a metric name).
  static std::string Sanitize(std::string_view raw);

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace fl::telemetry
