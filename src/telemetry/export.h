// Exporters for the telemetry subsystem (Sec. 5: dashboards and time-series
// monitors are fed from one data path):
//  * Chrome `trace_event` JSON (the "JSON Array Format" with a traceEvents
//    wrapper) — drag into https://ui.perfetto.dev to see rounds, their
//    Selection / Configuration / Reporting phases, and per-client-update
//    work laid out per thread.
//  * Prometheus text exposition of a MetricsSnapshot — counters, gauges and
//    cumulative histogram buckets.
//  * A flat JSON metrics dump for benches and notebooks.
#pragma once

#include <string>
#include <vector>

#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace fl::telemetry {

// Renders spans as Chrome trace JSON. Timestamp domain: if any span carries
// a nonzero SimTime the whole trace is rendered on the simulation clock
// (µs = SimTime millis * 1000); otherwise on the wall clock. Mixing both
// kinds in one trace keeps the sim clock and renders wall-only spans at
// their (zero-width) sim position — export such traces separately instead.
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

// Prometheus text format, one line per sample; histograms expose
// cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
std::string PrometheusText(const MetricsSnapshot& snapshot);

// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
std::string MetricsJson(const MetricsSnapshot& snapshot);

// Convenience wrappers over the global tracer/registry; return false on
// I/O failure.
bool WriteChromeTraceFile(const std::string& path);
bool WritePrometheusFile(const std::string& path);
bool WriteMetricsJsonFile(const std::string& path);

}  // namespace fl::telemetry
