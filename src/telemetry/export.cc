#include "src/telemetry/export.h"

#include <cstdio>
#include <fstream>
#include <unordered_map>

namespace fl::telemetry {
namespace {

void AppendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void AppendDouble(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

bool WriteFile(const std::string& path, const std::string& body) {
  std::ofstream f(path);
  if (!f) return false;
  f << body << "\n";
  return static_cast<bool>(f);
}

}  // namespace

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  bool use_sim = false;
  for (const SpanRecord& s : spans) {
    if (s.sim_start.millis != 0 || s.sim_end.millis != 0) {
      use_sim = true;
      break;
    }
  }

  // Span begin timestamps by id, for drawing flow arrows from parent spans
  // to context-linked children recorded on other actors/threads.
  std::unordered_map<std::uint64_t, std::size_t> by_id;
  by_id.reserve(spans.size());
  for (std::size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].id, i);

  const auto start_ts = [&](const SpanRecord& s) {
    return use_sim ? s.sim_start.millis * 1000 : s.wall_start_us;
  };

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& s : spans) {
    const std::int64_t ts = start_ts(s);
    const std::int64_t end =
        use_sim ? s.sim_end.millis * 1000 : s.wall_end_us;
    const std::int64_t dur = end > ts ? end - ts : 0;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":";
    AppendJsonString(out, s.name);
    out += ",\"cat\":\"fl\",\"ph\":\"X\",\"ts\":";
    out += std::to_string(ts);
    out += ",\"dur\":";
    out += std::to_string(dur);
    out += ",\"pid\":0,\"tid\":";
    out += std::to_string(s.tid);
    out += ",\"args\":{\"span_id\":\"";
    out += std::to_string(s.id);
    out += "\",\"parent\":\"";
    out += std::to_string(s.parent);
    out += '"';
    if (s.ctx_round != 0) {
      out += ",\"ctx_round\":\"" + std::to_string(s.ctx_round) + '"';
    }
    if (s.ctx_session != 0) {
      out += ",\"ctx_session\":\"" + std::to_string(s.ctx_session) + '"';
    }
    if (s.ctx_device != 0) {
      out += ",\"ctx_device\":\"" + std::to_string(s.ctx_device) + '"';
    }
    for (const auto& [k, v] : s.attrs) {
      out += ',';
      AppendJsonString(out, k);
      out += ':';
      AppendJsonString(out, v);
    }
    out += "}}";
    // Perfetto flow arrow parent → child for cross-actor context links:
    // a flow-start ("s") on the parent span's track at its begin time and a
    // flow-finish ("f", bp:"e") at this span's begin. Keyed by the child
    // span id, which is unique per link.
    if (s.flow_parent && s.parent != 0) {
      const auto pit = by_id.find(s.parent);
      if (pit != by_id.end()) {
        const SpanRecord& p = spans[pit->second];
        out += ",{\"name\":\"ctx\",\"cat\":\"fl\",\"ph\":\"s\",\"id\":";
        out += std::to_string(s.id);
        out += ",\"ts\":";
        out += std::to_string(start_ts(p));
        out += ",\"pid\":0,\"tid\":";
        out += std::to_string(p.tid);
        out += "},{\"name\":\"ctx\",\"cat\":\"fl\",\"ph\":\"f\",\"bp\":\"e\","
               "\"id\":";
        out += std::to_string(s.id);
        out += ",\"ts\":";
        out += std::to_string(ts);
        out += ",\"pid\":0,\"tid\":";
        out += std::to_string(s.tid);
        out += '}';
      }
    }
  }
  out += "]}";
  return out;
}

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& c : snapshot.counters) {
    out += "# TYPE " + c.name + " counter\n";
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    out += "# TYPE " + g.name + " gauge\n";
    out += g.name + " ";
    AppendDouble(out, g.value);
    out += "\n";
  }
  for (const auto& h : snapshot.histograms) {
    out += "# TYPE " + h.name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.counts[i];
      out += h.name + "_bucket{le=\"";
      AppendDouble(out, h.bounds[i]);
      out += "\"} " + std::to_string(cum) + "\n";
    }
    cum += h.counts.empty() ? 0 : h.counts.back();
    out += h.name + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += h.name + "_sum ";
    AppendDouble(out, h.sum);
    out += "\n";
    out += h.name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, c.name);
    out += ':' + std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, g.name);
    out += ':';
    AppendDouble(out, g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    AppendJsonString(out, h.name);
    out += ":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) out += ',';
      AppendDouble(out, h.bounds[i]);
    }
    out += "],\"counts\":[";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) out += ',';
      out += std::to_string(h.counts[i]);
    }
    out += "],\"count\":" + std::to_string(h.count) + ",\"sum\":";
    AppendDouble(out, h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

bool WriteChromeTraceFile(const std::string& path) {
  return WriteFile(path, ChromeTraceJson(Tracer::Global().Completed()));
}

bool WritePrometheusFile(const std::string& path) {
  return WriteFile(path, PrometheusText(MetricsRegistry::Global().Snapshot()));
}

bool WriteMetricsJsonFile(const std::string& path) {
  return WriteFile(path, MetricsJson(MetricsRegistry::Global().Snapshot()));
}

}  // namespace fl::telemetry
