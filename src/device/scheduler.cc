#include "src/device/scheduler.h"

#include <algorithm>

namespace fl::device {

Status MultiTenantScheduler::RegisterPopulation(PopulationRegistration reg) {
  const std::string name = reg.population;
  if (entries_.count(name) > 0) {
    return AlreadyExistsError("population '" + name + "' already registered");
  }
  entries_.emplace(name, Entry{std::move(reg), SimTime{0}});
  queue_.push_back(name);
  return Status::Ok();
}

Status MultiTenantScheduler::UnregisterPopulation(
    const std::string& population) {
  if (entries_.erase(population) == 0) {
    return NotFoundError("population '" + population + "' not registered");
  }
  queue_.erase(std::remove(queue_.begin(), queue_.end(), population),
               queue_.end());
  return Status::Ok();
}

std::optional<std::string> MultiTenantScheduler::NextSession(
    SimTime now) const {
  if (running_) return std::nullopt;  // one training session at a time
  for (const std::string& name : queue_) {
    const auto it = entries_.find(name);
    if (it == entries_.end()) continue;
    if (it->second.earliest_next <= now) return name;
  }
  return std::nullopt;
}

void MultiTenantScheduler::OnSessionStarted(const std::string& population,
                                            SimTime now) {
  const auto it = entries_.find(population);
  if (it == entries_.end()) return;
  running_ = true;
  it->second.earliest_next = now + it->second.reg.min_checkin_interval;
  // Rotate to the back of the worker queue.
  auto qit = std::find(queue_.begin(), queue_.end(), population);
  if (qit != queue_.end()) {
    queue_.erase(qit);
    queue_.push_back(population);
  }
}

void MultiTenantScheduler::SetEarliestCheckin(const std::string& population,
                                              SimTime earliest) {
  const auto it = entries_.find(population);
  if (it == entries_.end()) return;
  it->second.earliest_next = std::max(it->second.earliest_next, earliest);
}

std::optional<SimTime> MultiTenantScheduler::NextRunnableAt(
    SimTime now) const {
  std::optional<SimTime> best;
  for (const auto& [name, entry] : entries_) {
    const SimTime t = std::max(entry.earliest_next, now);
    if (!best.has_value() || t < *best) best = t;
  }
  return best;
}

Result<const PopulationRegistration*> MultiTenantScheduler::Find(
    const std::string& population) const {
  const auto it = entries_.find(population);
  if (it == entries_.end()) {
    return NotFoundError("population '" + population + "' not registered");
  }
  return &it->second.reg;
}

}  // namespace fl::device
