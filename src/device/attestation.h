// Remote attestation (Sec. 3): "we need to protect against attacks to
// influence the FL result from non-genuine devices. We do so by using
// Android's remote attestation mechanism ... which helps to ensure that only
// genuine devices and applications participate in FL."
//
// SUBSTITUTION: SafetyNet is modelled as an HMAC issued by a platform
// attestation authority whose key genuine devices can exercise (via the
// "platform") and compromised devices cannot. The server verifies tokens
// against the authority. This preserves the check-in control flow and the
// accept/reject behaviour under data-poisoning attempts.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/id.h"
#include "src/crypto/sha256.h"

namespace fl::device {

struct AttestationToken {
  DeviceId device;
  std::uint64_t nonce = 0;
  crypto::Digest mac{};
};

class AttestationAuthority {
 public:
  explicit AttestationAuthority(std::uint64_t platform_secret)
      : secret_(platform_secret) {}

  // Issued by the platform on genuine devices. Non-genuine devices cannot
  // call this; they forge tokens with a wrong secret.
  AttestationToken Issue(DeviceId device, std::uint64_t nonce) const;

  // A compromised device's best effort: a token under a guessed secret.
  AttestationToken Forge(DeviceId device, std::uint64_t nonce,
                         std::uint64_t wrong_secret) const;

  bool Verify(const AttestationToken& token) const;

 private:
  crypto::Digest Mac(DeviceId device, std::uint64_t nonce,
                     std::uint64_t secret) const;
  std::uint64_t secret_;
};

}  // namespace fl::device
