#include "src/device/example_store.h"

#include <algorithm>

namespace fl::device {

void InMemoryExampleStore::Add(data::Example example) {
  examples_.push_back(std::move(example));
  while (examples_.size() > options_.max_examples) {
    examples_.pop_front();  // evict oldest beyond the footprint limit
  }
}

void InMemoryExampleStore::AddBatch(std::vector<data::Example> examples) {
  for (auto& e : examples) Add(std::move(e));
}

void InMemoryExampleStore::ExpireOld(SimTime now) {
  const SimTime cutoff = now - options_.expiration;
  while (!examples_.empty() && examples_.front().timestamp < cutoff) {
    examples_.pop_front();
  }
}

Result<std::vector<data::Example>> InMemoryExampleStore::Query(
    const plan::ExampleSelector& selector, SimTime now) const {
  const SimTime cutoff = now - selector.max_example_age;
  std::vector<data::Example> out;
  // Newest first; stop once the per-participation cap is reached.
  for (auto it = examples_.rbegin(); it != examples_.rend(); ++it) {
    if (it->timestamp < cutoff) break;  // older entries only get older
    out.push_back(*it);
    if (out.size() >= selector.max_examples) break;
  }
  if (out.size() < selector.min_examples) {
    return FailedPreconditionError(
        "store '" + name_ + "' has " + std::to_string(out.size()) +
        " fresh examples; plan requires " +
        std::to_string(selector.min_examples));
  }
  return out;
}

Status ExampleStoreRegistry::Register(std::shared_ptr<ExampleStore> store) {
  FL_CHECK(store != nullptr);
  const std::string& name = store->name();
  if (!stores_.emplace(name, std::move(store)).second) {
    return AlreadyExistsError("example store '" + name + "' already registered");
  }
  return Status::Ok();
}

Result<ExampleStore*> ExampleStoreRegistry::Find(
    const std::string& name) const {
  const auto it = stores_.find(name);
  if (it == stores_.end()) {
    return NotFoundError("no example store named '" + name + "'");
  }
  return it->second.get();
}

}  // namespace fl::device
