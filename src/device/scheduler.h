// Multi-tenant on-device scheduling (Sec. 3, Multi-Tenancy; Sec. 11, Device
// Scheduling): "our multi-tenant on-device scheduler uses a simple worker
// queue for determining which training session to run next (we avoid running
// training sessions on-device in parallel because of their high resource
// consumption)."
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <string>

#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace fl::device {

// One app's registration of an FL population on this device ("An application
// configures the FL runtime by providing an FL population name and
// registering its example stores").
struct PopulationRegistration {
  std::string population;
  std::string example_store;
  Duration min_checkin_interval = Hours(1);  // JobScheduler cadence floor
};

class MultiTenantScheduler {
 public:
  Status RegisterPopulation(PopulationRegistration reg);
  Status UnregisterPopulation(const std::string& population);

  // The worker queue: next population due to run at `now`, respecting the
  // per-population cadence and any server-suggested pace-steering windows.
  // Returns nullopt when nothing is runnable.
  std::optional<std::string> NextSession(SimTime now) const;

  // Marks a session started; the population moves to the back of the queue
  // (strict FIFO worker queue — the paper notes this is "blind" to app usage
  // and calls smarter policies future work).
  void OnSessionStarted(const std::string& population, SimTime now);

  // Records the server-suggested reconnect window (pace steering).
  void SetEarliestCheckin(const std::string& population, SimTime earliest);

  // Earliest future time at which any registered population becomes
  // runnable; nullopt when nothing is registered.
  std::optional<SimTime> NextRunnableAt(SimTime now) const;

  bool running() const { return running_; }
  void OnSessionEnded() { running_ = false; }

  std::size_t registered_count() const { return entries_.size(); }
  Result<const PopulationRegistration*> Find(
      const std::string& population) const;

 private:
  struct Entry {
    PopulationRegistration reg;
    SimTime earliest_next;  // max(last run + cadence, pace-steering window)
  };

  std::map<std::string, Entry> entries_;
  std::deque<std::string> queue_;  // FIFO order among registered populations
  bool running_ = false;           // no parallel sessions
};

}  // namespace fl::device
