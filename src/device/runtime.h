// The on-device FL runtime (Sec. 3): task execution against the app's
// example store. "the FL runtime receives the FL plan, queries the app's
// example store for data requested by the plan, and computes plan-determined
// model updates and metrics."
//
// Timing/interruption are decided by the fleet simulator (the runtime is
// pure computation); EstimateComputeDuration tells the simulator how long
// the work takes on a given device profile.
#pragma once

#include <optional>

#include "src/common/rng.h"
#include "src/device/example_store.h"
#include "src/fedavg/client_update.h"
#include "src/sim/availability.h"
#include "src/tensor/checkpoint.h"

namespace fl::device {

struct TaskExecution {
  // Present for training plans; empty for evaluation plans.
  std::optional<fedavg::ClientUpdateResult> update;
  fedavg::ClientMetrics metrics;
  std::size_t examples_used = 0;
};

class FlRuntime {
 public:
  FlRuntime(std::uint32_t runtime_version, ExampleStoreRegistry* stores)
      : runtime_version_(runtime_version), stores_(stores) {}

  std::uint32_t runtime_version() const { return runtime_version_; }

  // Queries the store per the plan's selection criteria and runs the plan.
  // Fails (kFailedPrecondition) when the device lacks data or runs a
  // runtime older than the plan requires.
  Result<TaskExecution> ExecutePlan(const plan::FLPlan& plan,
                                    const Checkpoint& global, SimTime now,
                                    Rng& rng) const;

  // How many examples the plan would consume right now (0 if below minimum).
  std::size_t AvailableExamples(const plan::FLPlan& plan, SimTime now) const;

 private:
  std::uint32_t runtime_version_;
  ExampleStoreRegistry* stores_;
};

// Wall-clock the execution occupies on a device: examples * epochs at the
// profile's training throughput (drives straggler behaviour, Fig. 8).
Duration EstimateComputeDuration(const plan::FLPlan& plan,
                                 std::size_t example_count,
                                 const sim::DeviceProfile& profile);

}  // namespace fl::device
