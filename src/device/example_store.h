// Example stores (Sec. 3): "Applications are responsible for making their
// data available to the FL runtime as an example store by implementing an
// API we provide. ... We recommend that applications limit the total storage
// footprint of their example stores, and automatically remove old data after
// a pre-designated expiration time."
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/data/example.h"
#include "src/plan/plan.h"

namespace fl::device {

// The API applications implement to expose data to the FL runtime.
class ExampleStore {
 public:
  virtual ~ExampleStore() = default;

  virtual const std::string& name() const = 0;

  // Returns examples matching the plan's selection criteria, newest first,
  // at most `selector.max_examples`. Fails with kFailedPrecondition when
  // fewer than `selector.min_examples` match.
  virtual Result<std::vector<data::Example>> Query(
      const plan::ExampleSelector& selector, SimTime now) const = 0;

  virtual std::size_t size() const = 0;
};

// Bounded in-memory store with automatic expiration — the stand-in for the
// paper's example SQLite store.
class InMemoryExampleStore final : public ExampleStore {
 public:
  struct Options {
    std::size_t max_examples = 10'000;       // storage footprint limit
    Duration expiration = Hours(24 * 14);    // pre-designated expiration
  };

  InMemoryExampleStore(std::string name, Options options)
      : name_(std::move(name)), options_(options) {}

  const std::string& name() const override { return name_; }

  // Appends an example; evicts oldest entries beyond the footprint limit.
  void Add(data::Example example);
  void AddBatch(std::vector<data::Example> examples);

  // Drops entries older than the expiration window.
  void ExpireOld(SimTime now);

  Result<std::vector<data::Example>> Query(
      const plan::ExampleSelector& selector, SimTime now) const override;

  std::size_t size() const override { return examples_.size(); }

 private:
  std::string name_;
  Options options_;
  std::deque<data::Example> examples_;  // ordered by insertion (≈ time)
};

// Per-app registry mapping store names to stores ("registering its example
// stores", Sec. 3).
class ExampleStoreRegistry {
 public:
  Status Register(std::shared_ptr<ExampleStore> store);
  Result<ExampleStore*> Find(const std::string& name) const;
  std::size_t count() const { return stores_.size(); }

 private:
  std::map<std::string, std::shared_ptr<ExampleStore>> stores_;
};

}  // namespace fl::device
