#include "src/device/attestation.h"

#include <cstring>

namespace fl::device {

crypto::Digest AttestationAuthority::Mac(DeviceId device, std::uint64_t nonce,
                                         std::uint64_t secret) const {
  std::uint8_t key[8];
  std::uint8_t msg[16];
  for (int i = 0; i < 8; ++i) {
    key[i] = static_cast<std::uint8_t>(secret >> (8 * i));
    msg[i] = static_cast<std::uint8_t>(device.value >> (8 * i));
    msg[8 + i] = static_cast<std::uint8_t>(nonce >> (8 * i));
  }
  return crypto::HmacSha256(std::span<const std::uint8_t>(key, 8),
                            std::span<const std::uint8_t>(msg, 16));
}

AttestationToken AttestationAuthority::Issue(DeviceId device,
                                             std::uint64_t nonce) const {
  return AttestationToken{device, nonce, Mac(device, nonce, secret_)};
}

AttestationToken AttestationAuthority::Forge(DeviceId device,
                                             std::uint64_t nonce,
                                             std::uint64_t wrong_secret) const {
  return AttestationToken{device, nonce, Mac(device, nonce, wrong_secret)};
}

bool AttestationAuthority::Verify(const AttestationToken& token) const {
  const crypto::Digest expected = Mac(token.device, token.nonce, secret_);
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    diff |= expected[i] ^ token.mac[i];
  }
  return diff == 0;
}

}  // namespace fl::device
