#include "src/device/runtime.h"

#include <algorithm>

namespace fl::device {

Result<TaskExecution> FlRuntime::ExecutePlan(const plan::FLPlan& plan,
                                             const Checkpoint& global,
                                             SimTime now, Rng& rng) const {
  if (plan.min_runtime_version > runtime_version_) {
    return FailedPreconditionError(
        "plan requires runtime v" + std::to_string(plan.min_runtime_version) +
        "; device runs v" + std::to_string(runtime_version_));
  }
  FL_ASSIGN_OR_RETURN(ExampleStore * store,
                      stores_->Find(plan.device.selector.store_name));
  FL_ASSIGN_OR_RETURN(std::vector<data::Example> examples,
                      store->Query(plan.device.selector, now));

  TaskExecution out;
  out.examples_used = examples.size();
  if (plan.device.kind == plan::TaskKind::kTraining) {
    FL_ASSIGN_OR_RETURN(
        fedavg::ClientUpdateResult result,
        fedavg::RunClientUpdate(plan.device, global, examples,
                                runtime_version_, rng));
    out.metrics = result.metrics;
    out.update = std::move(result);
  } else {
    FL_ASSIGN_OR_RETURN(out.metrics,
                        fedavg::RunClientEvaluation(plan.device, global,
                                                    examples,
                                                    runtime_version_));
  }
  return out;
}

std::size_t FlRuntime::AvailableExamples(const plan::FLPlan& plan,
                                         SimTime now) const {
  auto store = stores_->Find(plan.device.selector.store_name);
  if (!store.ok()) return 0;
  auto examples = (*store)->Query(plan.device.selector, now);
  return examples.ok() ? examples->size() : 0;
}

Duration EstimateComputeDuration(const plan::FLPlan& plan,
                                 std::size_t example_count,
                                 const sim::DeviceProfile& profile) {
  const double per_sec = std::max(1.0, profile.examples_per_sec);
  const double total = static_cast<double>(example_count) *
                       static_cast<double>(std::max<std::size_t>(
                           1, plan.device.epochs));
  const double seconds = total / per_sec;
  return Millis(static_cast<std::int64_t>(seconds * 1000.0) + 1);
}

}  // namespace fl::device
