// Folded ("collapsed") stack profiles: the interchange format between the
// in-process profiler and every consumer (/profilez, fl_analyze --profile,
// fl_top's hot-functions panel, diagnostic bundles, flamegraph.pl).
//
// One line per unique stack, root first, semicolon-separated, with a count:
//   phase:training;actor:none;main;RunRound;FedAvg::Accumulate 42
// The synthetic "phase:<name>" root frame (and "actor:<name>" when inside a
// server actor) carries the ProfileTag, so phase attribution survives any
// folded-format tool untouched and PhaseBreakdown() can slice by protocol
// phase with plain string matching.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/profiler/cpu_profiler.h"
#include "src/profiler/heap_profiler.h"

namespace fl::analytics {

class Symbolizer;

// Aggregated weight for one frame across every stack it appears in.
struct FrameWeight {
  std::string name;
  std::uint64_t self = 0;   // samples with this frame as leaf
  std::uint64_t total = 0;  // samples with this frame anywhere (deduped)
};

class FoldedProfile {
 public:
  // Adds `count` to the stack (root-first frame names). Empty stacks are
  // ignored.
  void Add(const std::vector<std::string>& frames, std::uint64_t count);

  // Merges another profile into this one.
  void Merge(const FoldedProfile& other);

  // Parses folded text (one "frame;frame;frame count" per line). Lines
  // without a trailing count or with a zero count are skipped. Inverse of
  // ToString().
  static FoldedProfile Parse(const std::string& text);

  // Serializes in deterministic (lexicographic stack) order.
  std::string ToString() const;

  std::uint64_t total_weight() const { return total_weight_; }
  std::size_t stack_count() const { return stacks_.size(); }
  const std::map<std::string, std::uint64_t>& stacks() const {
    return stacks_;
  }

  // Heaviest frames by self weight (leaf attribution), descending. Synthetic
  // phase:/actor: frames are excluded — they are tags, not code.
  std::vector<FrameWeight> TopBySelf(std::size_t n) const;

  // Heaviest frames by total weight (anywhere in the stack, counted once
  // per stack), descending, phase:/actor: frames excluded.
  std::vector<FrameWeight> TopByTotal(std::size_t n) const;

  // Weight per phase tag, keyed by phase name ("training", ...). Stacks
  // whose root frame is not a phase: tag are keyed under "untagged".
  std::map<std::string, std::uint64_t> PhaseBreakdown() const;

  // Same slicing for actor: frames; stacks without one go to "none".
  std::map<std::string, std::uint64_t> ActorBreakdown() const;

 private:
  std::map<std::string, std::uint64_t> stacks_;  // joined stack -> weight
  std::uint64_t total_weight_ = 0;
};

// Symbolizes and folds collected CPU samples. Each sample contributes
// weight 1; frames arrive leaf-first from the profiler and are reversed to
// root-first here. The sample's tag becomes synthetic root frames.
FoldedProfile FoldCpuSamples(const std::vector<profiler::CpuSample>& samples,
                             Symbolizer& symbolizer);

// Folds heap allocation sites; weight is live_bytes (live=true) or
// total_bytes. Site tags become synthetic root frames like CPU samples.
FoldedProfile FoldHeapSites(const std::vector<profiler::HeapSiteStats>& sites,
                            Symbolizer& symbolizer, bool live);

// Human-readable report: total weight, per-phase and per-actor breakdowns,
// and top-N tables by self and total weight. `unit` labels the weight
// column ("samples", "bytes").
std::string RenderProfileReport(const FoldedProfile& profile,
                                const std::string& unit, std::size_t top_n);

}  // namespace fl::analytics
