#include "src/analytics/journal.h"

#include <array>
#include <charconv>
#include <cinttypes>

namespace fl::analytics {
namespace {

// Flush the in-memory buffer to disk once it crosses this size; large enough
// that a fleet-sim round costs a handful of fwrite calls, small enough that
// a crash loses little.
constexpr std::size_t kFlushThreshold = 64 * 1024;

struct NameEntry {
  const char* name;
};

constexpr std::array<NameEntry, 6> kSourceNames = {{
    {"device"},
    {"selector"},
    {"master"},
    {"aggregator"},
    {"coordinator"},
    {"sim"},
}};

constexpr std::array<NameEntry, 21> kEventNames = {{
    {"checkin"},
    {"plan_downloaded"},
    {"train_start"},
    {"train_complete"},
    {"upload_start"},
    {"upload_complete"},
    {"upload_rejected"},
    {"interrupted"},
    {"error"},
    {"session_end"},
    {"checkin_accepted"},
    {"checkin_rejected"},
    {"round_open"},
    {"phase"},
    {"report_accepted"},
    {"report_rejected"},
    {"round_commit"},
    {"round_abandoned"},
    {"round_outcome"},
    {"sim_round_start"},
    {"sim_round_complete"},
}};

void AppendEscaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '\n': out += "\\n"; break;
      case '\\': out += "\\\\"; break;
      default: out += c;
    }
  }
}

std::string Unescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '\\' && i + 1 < s.size()) {
      ++i;
      out += (s[i] == 'n') ? '\n' : s[i];
    } else {
      out += s[i];
    }
  }
  return out;
}

// Splits the next space-delimited token off `rest`; returns false when
// `rest` is empty.
bool NextToken(std::string_view& rest, std::string_view* token) {
  while (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (rest.empty()) return false;
  const std::size_t end = rest.find(' ');
  *token = rest.substr(0, end);
  rest.remove_prefix(end == std::string_view::npos ? rest.size() : end);
  return true;
}

bool ParseInt64(std::string_view token, std::int64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

bool ParseUint64(std::string_view token, std::uint64_t* out) {
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), *out);
  return ec == std::errc() && ptr == token.data() + token.size();
}

}  // namespace

const char* JournalSourceName(JournalSource s) {
  const auto i = static_cast<std::size_t>(s);
  return i < kSourceNames.size() ? kSourceNames[i].name : "unknown";
}

Result<JournalSource> ParseJournalSource(std::string_view name) {
  for (std::size_t i = 0; i < kSourceNames.size(); ++i) {
    if (name == kSourceNames[i].name) {
      return static_cast<JournalSource>(i);
    }
  }
  return InvalidArgumentError("unknown journal source: " + std::string(name));
}

const char* JournalEventName(JournalEventKind k) {
  const auto i = static_cast<std::size_t>(k);
  return i < kEventNames.size() ? kEventNames[i].name : "unknown";
}

Result<JournalEventKind> ParseJournalEvent(std::string_view name) {
  for (std::size_t i = 0; i < kEventNames.size(); ++i) {
    if (name == kEventNames[i].name) {
      return static_cast<JournalEventKind>(i);
    }
  }
  return InvalidArgumentError("unknown journal event: " + std::string(name));
}

JournalEventKind JournalEventForSession(SessionEvent e) {
  // The first nine JournalEventKind values mirror SessionEvent in order.
  return static_cast<JournalEventKind>(static_cast<std::uint8_t>(e));
}

bool SessionEventForJournal(JournalEventKind k, SessionEvent* out) {
  const auto i = static_cast<std::uint8_t>(k);
  if (i > static_cast<std::uint8_t>(SessionEvent::kError)) return false;
  *out = static_cast<SessionEvent>(i);
  return true;
}

std::string JournalRecord::Serialize() const {
  char head[160];
  const int n = std::snprintf(
      head, sizeof(head),
      "%" PRId64 " %" PRId64 " %s %s %" PRIu64 " %" PRIu64 " %" PRIu64,
      sim_time.millis, wall_us, JournalSourceName(source),
      JournalEventName(event), device.value, session.value, round.value);
  std::string out(head, static_cast<std::size_t>(n));
  if (!detail.empty()) {
    out += ' ';
    AppendEscaped(out, detail);
  }
  return out;
}

Result<JournalRecord> JournalRecord::Parse(std::string_view line) {
  JournalRecord rec;
  std::string_view rest = line;
  std::string_view tok;

  if (!NextToken(rest, &tok) || !ParseInt64(tok, &rec.sim_time.millis)) {
    return InvalidArgumentError("journal line: bad sim_time");
  }
  if (!NextToken(rest, &tok) || !ParseInt64(tok, &rec.wall_us)) {
    return InvalidArgumentError("journal line: bad wall_us");
  }
  if (!NextToken(rest, &tok)) {
    return InvalidArgumentError("journal line: missing source");
  }
  FL_ASSIGN_OR_RETURN(rec.source, ParseJournalSource(tok));
  if (!NextToken(rest, &tok)) {
    return InvalidArgumentError("journal line: missing event");
  }
  FL_ASSIGN_OR_RETURN(rec.event, ParseJournalEvent(tok));
  if (!NextToken(rest, &tok) || !ParseUint64(tok, &rec.device.value)) {
    return InvalidArgumentError("journal line: bad device id");
  }
  if (!NextToken(rest, &tok) || !ParseUint64(tok, &rec.session.value)) {
    return InvalidArgumentError("journal line: bad session id");
  }
  if (!NextToken(rest, &tok) || !ParseUint64(tok, &rec.round.value)) {
    return InvalidArgumentError("journal line: bad round id");
  }
  if (!rest.empty() && rest.front() == ' ') rest.remove_prefix(1);
  if (!rest.empty()) rec.detail = Unescape(rest);
  return rec;
}

bool DetailField(std::string_view detail, std::string_view key,
                 std::string* value) {
  std::string_view rest = detail;
  std::string_view tok;
  while (NextToken(rest, &tok)) {
    if (tok.size() > key.size() + 1 && tok.substr(0, key.size()) == key &&
        tok[key.size()] == '=') {
      value->assign(tok.substr(key.size() + 1));
      return true;
    }
  }
  return false;
}

std::int64_t DetailInt(std::string_view detail, std::string_view key,
                       std::int64_t fallback) {
  std::string v;
  if (!DetailField(detail, key, &v)) return fallback;
  std::int64_t out = 0;
  if (!ParseInt64(v, &out)) return fallback;
  return out;
}

Journal& Journal::Global() {
  static Journal* journal = new Journal();
  return *journal;
}

Journal::~Journal() { Close(); }

Status Journal::Open(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return FailedPreconditionError("journal already open");
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return UnavailableError("cannot open journal file: " + path);
  }
  file_ = f;
  buffer_.clear();
  buffer_ += kHeader;
  buffer_ += '\n';
  events_written_.store(0, std::memory_order_relaxed);
  bytes_written_.store(buffer_.size(), std::memory_order_relaxed);
  journal_internal::g_enabled.store(true, std::memory_order_relaxed);
  return Status::Ok();
}

bool Journal::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

void Journal::Append(const JournalRecord& record) {
  const std::string line = record.Serialize();
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  buffer_ += line;
  buffer_ += '\n';
  events_written_.fetch_add(1, std::memory_order_relaxed);
  bytes_written_.fetch_add(line.size() + 1, std::memory_order_relaxed);
  if (buffer_.size() >= kFlushThreshold) FlushLocked();
}

void Journal::FlushLocked() {
  if (file_ == nullptr || buffer_.empty()) return;
  std::fwrite(buffer_.data(), 1, buffer_.size(), file_);
  std::fflush(file_);
  buffer_.clear();
}

void Journal::Flush() {
  std::lock_guard<std::mutex> lock(mu_);
  FlushLocked();
}

bool Journal::FlushBestEffort() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  FlushLocked();
  return true;
}

void Journal::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  FlushLocked();
  std::fclose(file_);
  file_ = nullptr;
  journal_internal::g_enabled.store(false, std::memory_order_relaxed);
}

}  // namespace fl::analytics
