#include "src/analytics/monitor.h"

#include <cmath>

namespace fl::analytics {

bool DeviationMonitor::Observe(SimTime t, double value) {
  bool alerted = false;
  if (window_.size() >= params_.warmup) {
    double mean = 0;
    for (double v : window_) mean += v;
    mean /= static_cast<double>(window_.size());
    double var = 0;
    for (double v : window_) var += (v - mean) * (v - mean);
    var /= static_cast<double>(window_.size());
    const double sigma = std::max(std::sqrt(var), params_.min_sigma);
    if (std::fabs(value - mean) > params_.sigma_threshold * sigma) {
      alerts_.push_back(Alert{
          t, metric_, value, mean, params_.sigma_threshold,
          metric_ + " deviated: observed " + std::to_string(value) +
              " vs baseline mean " + std::to_string(mean)});
      alerted = true;
    }
  }
  // Alerting samples are excluded from the baseline: folding an outlier into
  // the window would drag the trailing mean toward it and inflate sigma,
  // masking follow-up anomalies (a sustained incident would self-normalize
  // after one alert). The baseline tracks normal behavior only.
  if (!alerted) {
    window_.push_back(value);
    if (window_.size() > params_.window) {
      window_.erase(window_.begin());
    }
  }
  return alerted;
}

bool ThresholdMonitor::Observe(SimTime t, double value) {
  if (value <= max_) return false;
  alerts_.push_back(Alert{t, metric_, value, max_, 0,
                          metric_ + " exceeded threshold " +
                              std::to_string(max_) + ": observed " +
                              std::to_string(value)});
  return true;
}

}  // namespace fl::analytics
