// Sliding-window metric store (Sec. 5 live ops plane): per-series ring
// buffers at several downsampled resolutions (1 s / 10 s / 5 min by
// default), fed by the ops::MetricsSampler and queried by the status-server
// endpoints, fl_top, and MonitorHub's windowed-rate watches.
//
// The store is clock-agnostic: callers stamp every Record() with a
// millisecond timestamp of whatever clock they live on (the discrete-event
// sim clock inside FLSystem, the wall clock in the standalone background
// sampler), so tests drive it with an injected clock.
//
// Concurrency: one mutex guards the series map and every ring. Writes are
// a handful of array stores per resolution (no allocation after a series'
// first Record), reads copy out small vectors; both sides are far off any
// hot path (the sampler ticks every few hundred ms, HTTP reads are human-
// rate), so a single short-held lock is the simple TSan-clean choice.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace fl::analytics {

class SlidingWindowStore {
 public:
  struct Resolution {
    std::int64_t slot_ms = 0;  // width of one ring slot
    std::size_t slots = 0;     // ring capacity (span = slot_ms * slots)
  };

  struct Options {
    // Finest-to-coarsest. Defaults: 1 s x 120 (2 min), 10 s x 360 (1 h),
    // 5 min x 288 (24 h).
    std::vector<Resolution> resolutions;
  };

  struct Point {
    std::int64_t t_ms = 0;  // slot start time
    double value = 0;       // last recorded value in the slot
  };

  SlidingWindowStore();
  explicit SlidingWindowStore(Options opts);

  // Records one sample of `series` at time `t_ms`. Values are treated as
  // levels (gauges) or cumulative totals (counters) purely by how they are
  // queried later; the store keeps first/last/min/max/sum/count per slot.
  void Record(std::string_view series, std::int64_t t_ms, double value);

  // --- queries -----------------------------------------------------------
  // All window queries look back `window_ms` from the latest recorded time
  // of the series and pick the finest resolution whose span covers the
  // window (clamped to the coarsest).

  // Last recorded value / its timestamp; false when the series is unknown.
  bool Latest(std::string_view series, double* value,
              std::int64_t* t_ms = nullptr) const;

  // For cumulative counters: latest value minus the earliest value seen in
  // the window, clamped to >= 0 (a process restart resets totals).
  double WindowDelta(std::string_view series, std::int64_t window_ms) const;
  // WindowDelta scaled to events per second over the observed span.
  double WindowRatePerSec(std::string_view series,
                          std::int64_t window_ms) const;

  // For gauges: mean of per-slot means over the window.
  double WindowMean(std::string_view series, std::int64_t window_ms) const;
  // Sample quantile (p in [0,100]) over the per-slot last-values in the
  // window — an approximation at the chosen slot resolution.
  double WindowQuantile(std::string_view series, double p,
                        std::int64_t window_ms) const;

  // Per-slot last-values at the resolution with `slot_ms` (must be one of
  // the configured resolutions), oldest first. Empty slots are skipped.
  std::vector<Point> Series(std::string_view series,
                            std::int64_t slot_ms) const;

  std::vector<std::string> SeriesNames() const;
  const std::vector<Resolution>& resolutions() const {
    return opts_.resolutions;
  }
  std::size_t series_count() const;

 private:
  struct Slot {
    std::int64_t start_ms = -1;  // -1 = never written
    double first = 0, last = 0, min = 0, max = 0, sum = 0;
    std::uint64_t count = 0;
  };
  struct Ring {
    std::vector<Slot> slots;
  };
  struct SeriesData {
    std::vector<Ring> rings;  // parallel to opts_.resolutions
    std::int64_t latest_ms = 0;
    double latest_value = 0;
    bool any = false;
  };

  // Collects live slots of the finest resolution covering `window_ms`,
  // oldest first. Caller holds mu_.
  std::vector<Slot> WindowSlotsLocked(const SeriesData& s,
                                      std::int64_t window_ms) const;
  const SeriesData* FindLocked(std::string_view series) const;

  Options opts_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<SeriesData>, std::less<>> series_;
};

}  // namespace fl::analytics
