#include "src/analytics/flight_dump.h"

#include <unistd.h>

#include <array>

namespace fl::analytics {
namespace {

// Mirrors the tracer's span codes (src/telemetry/trace.cc).
constexpr std::uint8_t kFlightSpanSource = 250;
constexpr std::uint8_t kFlightSpanBegin = 1;

constexpr std::array<const char*, 17> kReasonNames = {{
    "",                   // kNone
    "waiting pool full",  // selector strings, verbatim
    "not accepting",
    "quota reduced",
    "held too long",
    "round_full",
    "round_abandoned",
    "runtime_too_old",
    "late",
    "corrupt",
    "accumulate",
    "selection timeout",
    "below min_report",
    "master end of life",
    "commit",
    "master_lost",
    "other",
}};

constexpr std::array<const char*, 4> kPhaseNames = {{
    "selection",
    "configuration",
    "reporting",
    "closing",
}};

bool IsJournalKind(std::uint8_t source, std::uint8_t kind) {
  return source <= static_cast<std::uint8_t>(JournalSource::kSim) &&
         kind <= static_cast<std::uint8_t>(JournalEventKind::kSimRoundComplete);
}

FlightReason ReasonOf(std::uint16_t aux_b) {
  const std::uint8_t code = static_cast<std::uint8_t>(aux_b & 0xffu);
  return code < kReasonNames.size() ? static_cast<FlightReason>(code)
                                    : FlightReason::kOther;
}

// Inverse of PackOutcomeReason's high byte; false when no outcome encoded.
bool OutcomeOf(std::uint16_t aux_b, protocol::RoundOutcome* out) {
  const std::uint8_t hi = static_cast<std::uint8_t>(aux_b >> 8);
  if (hi == 0 || hi > 4) return false;
  *out = static_cast<protocol::RoundOutcome>(hi - 1);
  return true;
}

// --- async-signal-safe formatting (FlightDumpToFd) ---

void PutU64(char** p, std::uint64_t v) {
  char tmp[20];
  int n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  while (n > 0) *(*p)++ = tmp[--n];
}

void PutStr(char** p, const char* s) {
  while (*s != '\0') *(*p)++ = *s++;
}

void WriteAll(int fd, const char* data, std::size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, data, len);
    if (n <= 0) return;  // best effort: the process is usually dying
    data += n;
    len -= static_cast<std::size_t>(n);
  }
}

}  // namespace

const char* FlightReasonName(FlightReason r) {
  const auto i = static_cast<std::size_t>(r);
  return i < kReasonNames.size() ? kReasonNames[i] : "other";
}

FlightReason FlightReasonForDetail(std::string_view reason) {
  for (std::size_t i = 1; i < kReasonNames.size(); ++i) {
    if (reason == kReasonNames[i]) return static_cast<FlightReason>(i);
  }
  return FlightReason::kOther;
}

bool JournalRecordFromFlight(const telemetry::FlightRecord& rec,
                             JournalRecord* out) {
  if (!IsJournalKind(rec.source, rec.kind)) return false;
  out->sim_time = SimTime{static_cast<std::int64_t>(rec.sim_ms)};
  out->wall_us = static_cast<std::int64_t>(rec.wall_us);
  out->source = static_cast<JournalSource>(rec.source);
  out->event = static_cast<JournalEventKind>(rec.kind);
  out->device = DeviceId{rec.device};
  out->session = SessionId{rec.session};
  out->round = RoundId{rec.round};
  out->detail.clear();
  const FlightReason reason = ReasonOf(rec.aux_b);
  switch (out->event) {
    case JournalEventKind::kSessionEnd:
      out->detail = "completed=" + std::to_string(rec.aux_a);
      break;
    case JournalEventKind::kCheckinRejected:
    case JournalEventKind::kReportRejected:
      out->detail = std::string("reason=") + FlightReasonName(reason);
      break;
    case JournalEventKind::kReportAccepted:
      if (rec.aux_a == 1) out->detail = "mode=secagg";
      break;
    case JournalEventKind::kRoundOpen:
      out->detail = "goal=" + std::to_string(rec.aux_a) +
                    " min_report=" + std::to_string(rec.aux_b);
      break;
    case JournalEventKind::kPhase:
      out->detail =
          std::string("phase=") +
          (rec.aux_a < kPhaseNames.size() ? kPhaseNames[rec.aux_a] : "unknown");
      break;
    case JournalEventKind::kRoundCommit:
      out->detail = "contributors=" + std::to_string(rec.aux_a) +
                    " min_report=" + std::to_string(rec.aux_b);
      break;
    case JournalEventKind::kRoundAbandoned:
    case JournalEventKind::kRoundOutcome: {
      protocol::RoundOutcome outcome;
      if (OutcomeOf(rec.aux_b, &outcome)) {
        out->detail =
            std::string("outcome=") + protocol::RoundOutcomeName(outcome);
        if (outcome == protocol::RoundOutcome::kCommitted) {
          out->detail += " contributors=" + std::to_string(rec.aux_a);
        }
      }
      if (reason != FlightReason::kNone) {
        if (!out->detail.empty()) out->detail += ' ';
        out->detail += std::string("reason=") + FlightReasonName(reason);
      }
      break;
    }
    default:
      break;
  }
  return true;
}

std::string FlightDumpText() {
  std::string out = Journal::kHeader;
  out += '\n';
  JournalRecord rec;
  for (const telemetry::FlightRecord& f :
       telemetry::FlightRecorder::Global().Snapshot()) {
    if (JournalRecordFromFlight(f, &rec)) {
      out += rec.Serialize();
      out += '\n';
    } else if (f.source == kFlightSpanSource) {
      out += f.kind == kFlightSpanBegin ? "#span begin " : "#span end ";
      out += std::to_string(f.sim_ms) + ' ' + std::to_string(f.wall_us);
      out += " name_hash=" + std::to_string(f.aux_a);
      out += " span_lo=" + std::to_string(f.aux_b);
      if (f.round != 0) out += " round=" + std::to_string(f.round);
      if (f.session != 0) out += " session=" + std::to_string(f.session);
      if (f.device != 0) out += " device=" + std::to_string(f.device);
      out += '\n';
    }
  }
  return out;
}

std::size_t FlightDumpToFd(int fd) {
  static const char kHeaderLine[] = "#fl-journal v1\n";
  WriteAll(fd, kHeaderLine, sizeof(kHeaderLine) - 1);
  std::size_t written = 0;
  telemetry::FlightRecorder::Global().ForEachUnordered(
      [fd, &written](const telemetry::FlightRecord& f) {
        // Worst case per line: 7 u64 fields + names + detail < 256 bytes.
        char buf[320];
        char* p = buf;
        if (IsJournalKind(f.source, f.kind)) {
          PutU64(&p, f.sim_ms);
          *p++ = ' ';
          PutU64(&p, f.wall_us);
          *p++ = ' ';
          PutStr(&p, JournalSourceName(static_cast<JournalSource>(f.source)));
          *p++ = ' ';
          PutStr(&p, JournalEventName(static_cast<JournalEventKind>(f.kind)));
          *p++ = ' ';
          PutU64(&p, f.device);
          *p++ = ' ';
          PutU64(&p, f.session);
          *p++ = ' ';
          PutU64(&p, f.round);
          const auto kind = static_cast<JournalEventKind>(f.kind);
          const FlightReason reason = ReasonOf(f.aux_b);
          switch (kind) {
            case JournalEventKind::kSessionEnd:
              PutStr(&p, " completed=");
              PutU64(&p, f.aux_a);
              break;
            case JournalEventKind::kCheckinRejected:
            case JournalEventKind::kReportRejected:
              PutStr(&p, " reason=");
              PutStr(&p, FlightReasonName(reason));
              break;
            case JournalEventKind::kReportAccepted:
              if (f.aux_a == 1) PutStr(&p, " mode=secagg");
              break;
            case JournalEventKind::kRoundOpen:
              PutStr(&p, " goal=");
              PutU64(&p, f.aux_a);
              PutStr(&p, " min_report=");
              PutU64(&p, f.aux_b);
              break;
            case JournalEventKind::kPhase:
              PutStr(&p, " phase=");
              PutStr(&p, f.aux_a < kPhaseNames.size() ? kPhaseNames[f.aux_a]
                                                      : "unknown");
              break;
            case JournalEventKind::kRoundCommit:
              PutStr(&p, " contributors=");
              PutU64(&p, f.aux_a);
              PutStr(&p, " min_report=");
              PutU64(&p, f.aux_b);
              break;
            case JournalEventKind::kRoundAbandoned:
            case JournalEventKind::kRoundOutcome: {
              protocol::RoundOutcome outcome;
              if (OutcomeOf(f.aux_b, &outcome)) {
                PutStr(&p, " outcome=");
                PutStr(&p, protocol::RoundOutcomeName(outcome));
                if (outcome == protocol::RoundOutcome::kCommitted) {
                  PutStr(&p, " contributors=");
                  PutU64(&p, f.aux_a);
                }
              }
              if (reason != FlightReason::kNone) {
                PutStr(&p, " reason=");
                PutStr(&p, FlightReasonName(reason));
              }
              break;
            }
            default:
              break;
          }
        } else if (f.source == kFlightSpanSource) {
          PutStr(&p, f.kind == kFlightSpanBegin ? "#span begin "
                                                : "#span end ");
          PutU64(&p, f.sim_ms);
          *p++ = ' ';
          PutU64(&p, f.wall_us);
          PutStr(&p, " name_hash=");
          PutU64(&p, f.aux_a);
        } else {
          return;
        }
        *p++ = '\n';
        WriteAll(fd, buf, static_cast<std::size_t>(p - buf));
        ++written;
      });
  return written;
}

}  // namespace fl::analytics
