// ASCII dashboards (Sec. 5): "They are aggregated and presented in
// dashboards to be analyzed" / "We chart counts of these sequence
// visualizations in our dashboards."
//
// These renderers regenerate the paper's evaluation artefacts (Figs. 5-9,
// Table 1) as terminal output in the bench binaries.
#pragma once

#include <string>
#include <vector>

#include "src/analytics/events.h"
#include "src/analytics/timeseries.h"

namespace fl::analytics {

// Renders one or more aligned time-series as horizontally-scaled rows of
// ASCII bars, one character column per bucket group.
struct SeriesSpec {
  std::string label;
  const TimeSeries* series = nullptr;
  bool use_rate_per_hour = false;  // events per hour
  bool use_mean = false;           // bucket means (gauge-style series)
  // default: bucket sums (counter-style series)
};

std::string RenderSeriesChart(const std::vector<SeriesSpec>& specs,
                              std::size_t width = 72);

// Renders the Table 1 layout: shape | count | percent.
std::string RenderSessionShapeTable(const SessionShapeTally& tally,
                                    std::size_t max_rows = 10);

// Simple fixed-width table helper used by all bench binaries.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);
  void AddRow(std::vector<std::string> cells);
  std::string Render() const;

  static std::string Num(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace fl::analytics
