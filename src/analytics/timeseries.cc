#include "src/analytics/timeseries.h"

#include <algorithm>
#include <cmath>

namespace fl::analytics {

void TimeSeries::Add(SimTime t, double value) {
  if (t < start_) return;  // before the observation window
  const auto bucket = static_cast<std::size_t>(
      (t - start_).millis / width_.millis);
  if (bucket >= sums_.size()) {
    sums_.resize(bucket + 1, 0.0);
    counts_.resize(bucket + 1, 0);
  }
  sums_[bucket] += value;
  ++counts_[bucket];
}

double TimeSeries::Sum(std::size_t bucket) const {
  return bucket < sums_.size() ? sums_[bucket] : 0.0;
}

std::size_t TimeSeries::Count(std::size_t bucket) const {
  return bucket < counts_.size() ? counts_[bucket] : 0;
}

double TimeSeries::Mean(std::size_t bucket) const {
  const std::size_t c = Count(bucket);
  return c > 0 ? Sum(bucket) / static_cast<double>(c) : 0.0;
}

double TimeSeries::RatePerHour(std::size_t bucket) const {
  const double hours = static_cast<double>(width_.millis) / (3600.0 * 1000.0);
  return Sum(bucket) / hours;
}

std::vector<double> TimeSeries::Means() const {
  std::vector<double> out(sums_.size());
  for (std::size_t i = 0; i < sums_.size(); ++i) out[i] = Mean(i);
  return out;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), buckets_(buckets, 0) {
  FL_CHECK(hi > lo && buckets > 0);
}

void Histogram::Add(double v) {
  ++total_;
  sum_ += v;
  if (v < lo_) {
    ++underflow_;
    return;
  }
  if (v >= hi_) {
    ++overflow_;
    return;
  }
  const auto idx = static_cast<std::size_t>(
      (v - lo_) / (hi_ - lo_) * static_cast<double>(buckets_.size()));
  ++buckets_[std::min(idx, buckets_.size() - 1)];
}

double Histogram::Percentile(double p) const {
  if (total_ == 0) return lo_;
  const double target =
      std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(total_);
  double acc = static_cast<double>(underflow_);
  // Underflow mass can only ever report the range floor — but only when it
  // exists. (The old `acc >= target` check returned lo_ for p=0 even on
  // histograms with no underflow at all, under-reporting the low edge.)
  if (underflow_ > 0 && acc >= target) return lo_;
  const double bucket_span =
      (hi_ - lo_) / static_cast<double>(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const double c = static_cast<double>(buckets_[i]);
    const double next = acc + c;
    if (next >= target && buckets_[i] > 0) {
      // Interpolate within the bucket, treating the c samples as sitting at
      // bucket midpoints: frac is clamped to [0.5/c, 1 - 0.5/c] so edge
      // quantiles never report the exact bucket boundary and a single-sample
      // bucket answers its midpoint for every p (raw interpolation let p99
      // of one sample claim the bucket's top edge and p1 its bottom).
      double frac = (target - acc) / c;
      frac = std::clamp(frac, 0.5 / c, 1.0 - 0.5 / c);
      return lo_ + (static_cast<double>(i) + frac) * bucket_span;
    }
    acc = next;
  }
  return hi_;
}

std::string Histogram::Render(std::size_t width) const {
  static const char* kBlocks[] = {" ", ".", ":", "-", "=", "+", "*", "#", "%", "@"};
  std::string out;
  if (buckets_.empty() || total_ == 0) return out;
  const std::size_t group = std::max<std::size_t>(1, buckets_.size() / width);
  std::size_t max_count = 1;
  for (std::size_t i = 0; i < buckets_.size(); i += group) {
    std::size_t g = 0;
    for (std::size_t j = i; j < std::min(i + group, buckets_.size()); ++j) {
      g += buckets_[j];
    }
    max_count = std::max(max_count, g);
  }
  for (std::size_t i = 0; i < buckets_.size(); i += group) {
    std::size_t g = 0;
    for (std::size_t j = i; j < std::min(i + group, buckets_.size()); ++j) {
      g += buckets_[j];
    }
    const auto level = static_cast<std::size_t>(
        9.0 * static_cast<double>(g) / static_cast<double>(max_count));
    out += kBlocks[std::min<std::size_t>(level, 9)];
  }
  return out;
}

}  // namespace fl::analytics
