#include "src/analytics/window_store.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace fl::analytics {

namespace {
SlidingWindowStore::Options DefaultOptions() {
  SlidingWindowStore::Options opts;
  opts.resolutions = {{1'000, 120}, {10'000, 360}, {300'000, 288}};
  return opts;
}
}  // namespace

SlidingWindowStore::SlidingWindowStore()
    : SlidingWindowStore(DefaultOptions()) {}

SlidingWindowStore::SlidingWindowStore(Options opts) : opts_(std::move(opts)) {
  if (opts_.resolutions.empty()) opts_ = DefaultOptions();
  for (const Resolution& r : opts_.resolutions) {
    FL_CHECK(r.slot_ms > 0 && r.slots > 0);
  }
}

void SlidingWindowStore::Record(std::string_view series, std::int64_t t_ms,
                                double value) {
  if (t_ms < 0) return;
  const std::scoped_lock lock(mu_);
  auto it = series_.find(series);
  if (it == series_.end()) {
    auto data = std::make_unique<SeriesData>();
    data->rings.resize(opts_.resolutions.size());
    for (std::size_t i = 0; i < opts_.resolutions.size(); ++i) {
      data->rings[i].slots.resize(opts_.resolutions[i].slots);
    }
    it = series_.emplace(std::string(series), std::move(data)).first;
  }
  SeriesData& s = *it->second;
  s.latest_ms = std::max(s.latest_ms, t_ms);
  s.latest_value = value;
  s.any = true;
  for (std::size_t i = 0; i < opts_.resolutions.size(); ++i) {
    const Resolution& res = opts_.resolutions[i];
    const std::int64_t slot_start = t_ms - t_ms % res.slot_ms;
    Slot& slot = s.rings[i].slots[static_cast<std::size_t>(
        (t_ms / res.slot_ms) % static_cast<std::int64_t>(res.slots))];
    if (slot.start_ms != slot_start) {
      slot = Slot{slot_start, value, value, value, value, value, 1};
    } else {
      slot.last = value;
      slot.min = std::min(slot.min, value);
      slot.max = std::max(slot.max, value);
      slot.sum += value;
      ++slot.count;
    }
  }
}

const SlidingWindowStore::SeriesData* SlidingWindowStore::FindLocked(
    std::string_view series) const {
  const auto it = series_.find(series);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<SlidingWindowStore::Slot> SlidingWindowStore::WindowSlotsLocked(
    const SeriesData& s, std::int64_t window_ms) const {
  // Finest resolution whose full span covers the window; fall back to the
  // coarsest when the window outreaches everything.
  std::size_t pick = opts_.resolutions.size() - 1;
  for (std::size_t i = 0; i < opts_.resolutions.size(); ++i) {
    const Resolution& r = opts_.resolutions[i];
    if (r.slot_ms * static_cast<std::int64_t>(r.slots) >= window_ms) {
      pick = i;
      break;
    }
  }
  const Resolution& res = opts_.resolutions[pick];
  const std::int64_t from = s.latest_ms - window_ms;
  std::vector<Slot> out;
  for (const Slot& slot : s.rings[pick].slots) {
    if (slot.start_ms < 0 || slot.count == 0) continue;
    // Stale ring entries from a previous lap are older than the window by
    // construction; the start_ms check below drops them.
    if (slot.start_ms + res.slot_ms <= from || slot.start_ms > s.latest_ms) {
      continue;
    }
    out.push_back(slot);
  }
  std::sort(out.begin(), out.end(),
            [](const Slot& a, const Slot& b) { return a.start_ms < b.start_ms; });
  return out;
}

bool SlidingWindowStore::Latest(std::string_view series, double* value,
                                std::int64_t* t_ms) const {
  const std::scoped_lock lock(mu_);
  const SeriesData* s = FindLocked(series);
  if (s == nullptr || !s->any) return false;
  if (value != nullptr) *value = s->latest_value;
  if (t_ms != nullptr) *t_ms = s->latest_ms;
  return true;
}

double SlidingWindowStore::WindowDelta(std::string_view series,
                                       std::int64_t window_ms) const {
  const std::scoped_lock lock(mu_);
  const SeriesData* s = FindLocked(series);
  if (s == nullptr || !s->any) return 0.0;
  const std::vector<Slot> slots = WindowSlotsLocked(*s, window_ms);
  if (slots.empty()) return 0.0;
  return std::max(0.0, slots.back().last - slots.front().first);
}

double SlidingWindowStore::WindowRatePerSec(std::string_view series,
                                            std::int64_t window_ms) const {
  std::int64_t span_ms = 0;
  double delta = 0.0;
  {
    const std::scoped_lock lock(mu_);
    const SeriesData* s = FindLocked(series);
    if (s == nullptr || !s->any) return 0.0;
    const std::vector<Slot> slots = WindowSlotsLocked(*s, window_ms);
    if (slots.size() < 2) return 0.0;
    delta = std::max(0.0, slots.back().last - slots.front().first);
    span_ms = slots.back().start_ms - slots.front().start_ms;
  }
  if (span_ms <= 0) return 0.0;
  return delta / (static_cast<double>(span_ms) / 1000.0);
}

double SlidingWindowStore::WindowMean(std::string_view series,
                                      std::int64_t window_ms) const {
  const std::scoped_lock lock(mu_);
  const SeriesData* s = FindLocked(series);
  if (s == nullptr || !s->any) return 0.0;
  const std::vector<Slot> slots = WindowSlotsLocked(*s, window_ms);
  double sum = 0.0;
  std::uint64_t n = 0;
  for (const Slot& slot : slots) {
    sum += slot.sum;
    n += slot.count;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

double SlidingWindowStore::WindowQuantile(std::string_view series, double p,
                                          std::int64_t window_ms) const {
  std::vector<double> values;
  {
    const std::scoped_lock lock(mu_);
    const SeriesData* s = FindLocked(series);
    if (s == nullptr || !s->any) return 0.0;
    for (const Slot& slot : WindowSlotsLocked(*s, window_ms)) {
      values.push_back(slot.last);
    }
  }
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 *
                      static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + (values[hi] - values[lo]) * frac;
}

std::vector<SlidingWindowStore::Point> SlidingWindowStore::Series(
    std::string_view series, std::int64_t slot_ms) const {
  const std::scoped_lock lock(mu_);
  const SeriesData* s = FindLocked(series);
  if (s == nullptr || !s->any) return {};
  std::size_t pick = opts_.resolutions.size();
  for (std::size_t i = 0; i < opts_.resolutions.size(); ++i) {
    if (opts_.resolutions[i].slot_ms == slot_ms) pick = i;
  }
  if (pick == opts_.resolutions.size()) return {};
  std::vector<Point> out;
  for (const Slot& slot : s->rings[pick].slots) {
    if (slot.start_ms < 0 || slot.count == 0) continue;
    if (slot.start_ms > s->latest_ms) continue;
    out.push_back(Point{slot.start_ms, slot.last});
  }
  std::sort(out.begin(), out.end(),
            [](const Point& a, const Point& b) { return a.t_ms < b.t_ms; });
  return out;
}

std::vector<std::string> SlidingWindowStore::SeriesNames() const {
  const std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::size_t SlidingWindowStore::series_count() const {
  const std::scoped_lock lock(mu_);
  return series_.size();
}

}  // namespace fl::analytics
