// Fixed-bucket time series and histograms backing the operational dashboards
// (Sec. 5: log entries "are aggregated and presented in dashboards").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace fl::analytics {

// Accumulates values into fixed-width time buckets from a start time.
class TimeSeries {
 public:
  TimeSeries(SimTime start, Duration bucket_width)
      : start_(start), width_(bucket_width) {
    FL_CHECK(bucket_width.millis > 0);
  }

  void Add(SimTime t, double value = 1.0);

  std::size_t bucket_count() const { return sums_.size(); }
  Duration bucket_width() const { return width_; }
  SimTime start() const { return start_; }
  SimTime BucketStart(std::size_t i) const {
    return start_ + width_ * static_cast<std::int64_t>(i);
  }

  double Sum(std::size_t bucket) const;
  double Mean(std::size_t bucket) const;
  std::size_t Count(std::size_t bucket) const;

  // Rate per hour in a bucket (for round-completion-rate plots, Fig. 5).
  double RatePerHour(std::size_t bucket) const;

  std::vector<double> Sums() const { return sums_; }
  std::vector<double> Means() const;

 private:
  SimTime start_;
  Duration width_;
  std::vector<double> sums_;
  std::vector<std::size_t> counts_;
};

// Reservoir-free histogram with explicit bounds for duration distributions
// (Fig. 8).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double v);
  std::size_t total() const { return total_; }
  // Midpoint-clamped interpolation: p in [0, 100]; a single-sample bucket
  // answers its midpoint for every p, and estimates stay off exact bucket
  // boundaries.
  double Percentile(double p) const;
  double Mean() const { return total_ > 0 ? sum_ / static_cast<double>(total_) : 0; }

  // Sparkline-style ASCII rendering of the density.
  std::string Render(std::size_t width = 60) const;

 private:
  double lo_, hi_;
  std::vector<std::size_t> buckets_;
  std::size_t total_ = 0;
  double sum_ = 0;
  std::size_t underflow_ = 0, overflow_ = 0;
};

}  // namespace fl::analytics
