// Device-side training-session event log and the session-shape encoding of
// Sec. 5 / Table 1:
//
// "We also log an event for every state in a training round, and use these
// logs to generate ASCII visualizations of the sequence of state transitions
// happening across all devices."
//
// Legend (Table 1): '-' = FL server checkin, 'v' = downloaded plan,
// '[' = training started, ']' = training completed, '+' = upload started,
// '^' = upload completed, '#' = upload rejected, '!' = interrupted,
// '*' = error.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/id.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace fl::analytics {

enum class SessionEvent : std::uint8_t {
  kCheckin = 0,       // '-'
  kDownloadedPlan,    // 'v'
  kTrainingStarted,   // '['
  kTrainingCompleted, // ']'
  kUploadStarted,     // '+'
  kUploadCompleted,   // '^'
  kUploadRejected,    // '#'
  kInterrupted,       // '!'
  kError,             // '*'
};

char SessionEventGlyph(SessionEvent e);

// Inverse of SessionTrace::Shape(): decodes a Table 1 glyph string back into
// the event sequence (kInvalidArgument on an unknown glyph). The offline log
// analyzer uses this to rebuild traces from recorded shapes.
Result<std::vector<SessionEvent>> ParseShape(std::string_view shape);

// Device activity states charted over time (Fig. 6): the paper plots
// "participating" and "waiting" (plus rare "closing" and "attesting").
enum class DeviceState : std::uint8_t {
  kIdle = 0,       // not connected (eligible or not)
  kAttesting,
  kWaiting,        // checked in, held by a Selector
  kParticipating,  // configured into a round: download/train/upload
  kClosing,
};

const char* DeviceStateName(DeviceState s);

// One device's event trace for one training session; its shape string is
// the Table 1 visualization.
struct SessionTrace {
  SessionId session;
  DeviceId device;
  std::vector<SessionEvent> events;

  std::string Shape() const;
};

// Aggregates session shapes into the Table 1 distribution.
class SessionShapeTally {
 public:
  void Record(const SessionTrace& trace);
  void RecordShape(const std::string& shape);

  std::size_t total() const { return total_; }
  // Shapes with counts, most frequent first.
  std::vector<std::pair<std::string, std::size_t>> Ranked() const;
  double Fraction(const std::string& shape) const;

 private:
  std::map<std::string, std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace fl::analytics
