// Journal-typed view over the telemetry flight recorder. fl_telemetry keeps
// the rings protocol-agnostic (opaque u8 source/kind, two aux words); this
// header owns the encoding: journal sources/events map one-to-one onto the
// flight codes, free-form reason strings become FlightReason codes, and the
// dump synthesizes `#fl-journal v1`-format lines that fl_analyze ingests
// exactly like a real journal (minus byte-accounting details, which the
// rings do not carry).
//
// RecordFlight() is the always-on sibling of AppendJournal(): emission sites
// call it unconditionally (it self-gates on one relaxed load), *before* any
// `if (JournalEnabled())` block, so the last kSlotsPerThread events per
// thread exist even when nothing else is recording.
#pragma once

#include <cstdint>
#include <string>

#include "src/analytics/journal.h"
#include "src/protocol/round_config.h"
#include "src/telemetry/flight_recorder.h"

namespace fl::analytics {

// Why a device was turned away / a report refused / a round lost. Encoded in
// the flight record's aux_b (low byte); FlightReasonName returns the detail
// string the dump emits, chosen to match the journal's where the journal
// uses a fixed string ("late", "round_full", ...).
enum class FlightReason : std::uint8_t {
  kNone = 0,
  // Selector rejections (detail strings match selector.cc verbatim).
  kWaitingPoolFull,   // "waiting pool full"
  kNotAccepting,      // "not accepting"
  kQuotaReduced,      // "quota reduced"
  kHeldTooLong,       // "held too long"
  // Master / configuration rejections.
  kRoundFull,         // "round_full"
  kRoundAbandonedReject,  // "round_abandoned" (pending links on abandon)
  kRuntimeTooOld,     // "runtime_too_old"
  // Aggregator report rejections.
  kLate,              // "late"
  kCorrupt,           // "corrupt"
  kAccumulate,        // "accumulate"
  // Round-loss reasons (abandon / coordinator outcome).
  kSelectionTimeout,  // "selection timeout"
  kBelowMinReports,   // "below min_report"
  kMasterEndOfLife,   // "master end of life"
  kCommitFailed,      // "commit"
  kMasterLost,        // "master_lost"
  kOther,
};

const char* FlightReasonName(FlightReason r);
// Inverse for call sites that hold a free-form reason string (the selector's
// RejectLink); unknown strings map to kOther.
FlightReason FlightReasonForDetail(std::string_view reason);

// aux_b packing for round-level records: low byte = FlightReason, high byte
// = RoundOutcome + 1 (0 = no outcome recorded).
inline std::uint16_t PackOutcomeReason(protocol::RoundOutcome outcome,
                                       FlightReason reason) {
  return static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(reason) |
      ((static_cast<std::uint16_t>(outcome) + 1) << 8));
}

// The always-on emission hook. aux_a carries the per-kind count (goal,
// contributors, phase index, completed flag); aux_b the reason/outcome.
inline void RecordFlight(SimTime t, JournalSource source,
                         JournalEventKind kind, DeviceId device = DeviceId{},
                         SessionId session = SessionId{},
                         RoundId round = RoundId{}, std::uint32_t aux_a = 0,
                         std::uint16_t aux_b = 0) {
  if (!telemetry::FlightRecorderEnabled()) return;
  telemetry::FlightRecorder::Global().Record(
      static_cast<std::uint8_t>(source), static_cast<std::uint8_t>(kind),
      static_cast<std::uint64_t>(t.millis), device.value, session.value,
      round.value, aux_a, aux_b);
}

// Decodes one flight record back into a journal record (detail synthesized
// from aux_a/aux_b per kind). Returns false for non-journal records (span
// begin/end from the tracer, unknown codes).
bool JournalRecordFromFlight(const telemetry::FlightRecord& rec,
                             JournalRecord* out);

// Every valid slot, seq-ordered, rendered as `#fl-journal v1` text. Span
// records become `#span ...` comment lines (parsers skip '#'). Allocates;
// for the in-process bundle path.
std::string FlightDumpText();

// Async-signal-safe dump: no allocation, no locking, records in arbitrary
// order (fl_analyze sorts by sim time on ingest). Writes directly to `fd`
// with write(2). Returns the number of records written.
std::size_t FlightDumpToFd(int fd);

}  // namespace fl::analytics
