#include "src/analytics/monitor_hub.h"

#include "src/common/status.h"

namespace fl::analytics {

void MonitorHub::WatchCounterDelta(const std::string& counter_name,
                                   DeviationMonitor::Params params) {
  watches_.push_back(Watch{Kind::kCounterDeltaDeviation, counter_name,
                           DeviationMonitor(counter_name + "_delta", params),
                           ThresholdMonitor(counter_name, 0), 0, false});
}

void MonitorHub::WatchCounterDeltaThreshold(const std::string& counter_name,
                                            double max_delta) {
  watches_.push_back(
      Watch{Kind::kCounterDeltaThreshold, counter_name,
            DeviationMonitor(counter_name, DeviationMonitor::Params{}),
            ThresholdMonitor(counter_name + "_delta", max_delta), 0, false});
}

void MonitorHub::WatchGauge(const std::string& gauge_name,
                            DeviationMonitor::Params params) {
  watches_.push_back(Watch{Kind::kGauge, gauge_name,
                           DeviationMonitor(gauge_name, params),
                           ThresholdMonitor(gauge_name, 0), 0, false,
                           Duration{}});
}

void MonitorHub::WatchCounterWindowRate(const std::string& counter_name,
                                        Duration window,
                                        double max_per_window) {
  FL_CHECK(window.millis > 0);
  watches_.push_back(
      Watch{Kind::kCounterWindowRate, counter_name,
            DeviationMonitor(counter_name, DeviationMonitor::Params{}),
            ThresholdMonitor(counter_name + "_per_window", max_per_window), 0,
            false, window});
}

std::size_t MonitorHub::Poll(SimTime now,
                             const telemetry::MetricsSnapshot& snapshot) {
  std::size_t raised = 0;
  for (Watch& w : watches_) {
    switch (w.kind) {
      case Kind::kCounterDeltaDeviation:
      case Kind::kCounterDeltaThreshold: {
        const auto* c = snapshot.FindCounter(w.metric);
        if (c == nullptr) break;
        if (!w.seeded) {
          // First sight of the counter: establish the base so a large
          // pre-existing total doesn't read as one giant delta.
          w.last_counter = c->value;
          w.seeded = true;
          break;
        }
        const double delta =
            static_cast<double>(c->value - w.last_counter);
        w.last_counter = c->value;
        if (w.kind == Kind::kCounterDeltaDeviation) {
          if (w.deviation.Observe(now, delta)) ++raised;
        } else {
          if (w.threshold.Observe(now, delta)) ++raised;
        }
        break;
      }
      case Kind::kGauge: {
        const auto* g = snapshot.FindGauge(w.metric);
        if (g == nullptr) break;
        if (w.deviation.Observe(now, g->value)) ++raised;
        break;
      }
      case Kind::kCounterWindowRate: {
        const auto* c = snapshot.FindCounter(w.metric);
        if (c == nullptr) break;
        window_store_.Record(w.metric, now.millis,
                             static_cast<double>(c->value));
        const double per_window =
            window_store_.WindowDelta(w.metric, w.window.millis);
        if (w.threshold.Observe(now, per_window)) ++raised;
        break;
      }
    }
  }
  return raised;
}

std::size_t MonitorHub::Poll(SimTime now) {
  return Poll(now, telemetry::MetricsRegistry::Global().Snapshot());
}

std::size_t MonitorHub::alert_count() const {
  std::size_t n = 0;
  for (const Watch& w : watches_) {
    n += w.deviation.alerts().size() + w.threshold.alerts().size();
  }
  return n;
}

std::vector<Alert> MonitorHub::AllAlerts() const {
  std::vector<Alert> out;
  for (const Watch& w : watches_) {
    out.insert(out.end(), w.deviation.alerts().begin(),
               w.deviation.alerts().end());
    out.insert(out.end(), w.threshold.alerts().begin(),
               w.threshold.alerts().end());
  }
  return out;
}

}  // namespace fl::analytics
