// MonitorHub closes the Sec. 5 loop: the paper's health metrics are "fed
// into automatic time-series monitors that trigger alerts on substantial
// deviations". Here the metrics come straight from the telemetry
// MetricsRegistry — the hub is polled periodically (the fleet sim's stats
// sampler tick), diffs counter values against the previous poll, and feeds
// the resulting rates plus gauge levels into Deviation/Threshold monitors.
#pragma once

#include <string>
#include <vector>

#include "src/analytics/monitor.h"
#include "src/analytics/window_store.h"
#include "src/telemetry/metrics.h"

namespace fl::analytics {

class MonitorHub {
 public:
  // Alerts when a counter's per-poll increment deviates from its trailing
  // baseline (e.g. a spike in rejections between two samples).
  void WatchCounterDelta(const std::string& counter_name,
                         DeviationMonitor::Params params);

  // Alerts when a counter's per-poll increment exceeds a fixed ceiling.
  void WatchCounterDeltaThreshold(const std::string& counter_name,
                                  double max_delta);

  // Alerts when a gauge's sampled level deviates from its trailing baseline.
  void WatchGauge(const std::string& gauge_name,
                  DeviationMonitor::Params params);

  // Windowed-rate mode, backed by a SlidingWindowStore: alerts when more
  // than `max_per_window` counter increments land inside the trailing
  // `window` (e.g. "abandoned rounds per 10 min"), regardless of how large
  // the cumulative total has grown. Unlike the per-poll delta watches this
  // is robust to the polling cadence: the window, not the poll interval,
  // defines the rate.
  void WatchCounterWindowRate(const std::string& counter_name,
                              Duration window, double max_per_window);

  // Feeds one snapshot to every watch; returns alerts raised by this poll.
  // Metrics absent from the snapshot are skipped (counters that have not
  // been touched yet simply don't advance their watch).
  std::size_t Poll(SimTime now, const telemetry::MetricsSnapshot& snapshot);

  // Convenience: snapshots the global registry and polls with it.
  std::size_t Poll(SimTime now);

  std::size_t watch_count() const { return watches_.size(); }
  std::size_t alert_count() const;
  // All alerts across all watches, in watch order.
  std::vector<Alert> AllAlerts() const;

 private:
  enum class Kind {
    kCounterDeltaDeviation,
    kCounterDeltaThreshold,
    kGauge,
    kCounterWindowRate,
  };

  struct Watch {
    Kind kind;
    std::string metric;
    // Exactly one of the monitors is active, per `kind`.
    DeviationMonitor deviation;
    ThresholdMonitor threshold;
    std::uint64_t last_counter = 0;
    bool seeded = false;  // first counter poll only seeds last_counter
    Duration window{};    // kCounterWindowRate only
  };

  std::vector<Watch> watches_;
  // Counter totals recorded at poll time for the window-rate watches.
  SlidingWindowStore window_store_;
};

}  // namespace fl::analytics
