#include "src/analytics/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "src/analytics/symbolizer.h"

namespace fl::analytics {

namespace {

constexpr char kFrameSep = ';';

bool IsTagFrame(const std::string& frame) {
  return frame.rfind("phase:", 0) == 0 || frame.rfind("actor:", 0) == 0;
}

std::vector<std::string> SplitFrames(const std::string& stack) {
  std::vector<std::string> out;
  std::size_t begin = 0;
  while (begin <= stack.size()) {
    const std::size_t end = stack.find(kFrameSep, begin);
    if (end == std::string::npos) {
      out.push_back(stack.substr(begin));
      break;
    }
    out.push_back(stack.substr(begin, end - begin));
    begin = end + 1;
  }
  return out;
}

// Frame names must not smuggle the folded format's separators; seen with
// e.g. "operator delete(void*)" which is fine, but guard against ';' and
// raw spaces breaking "frame;frame count" parsing.
std::string SanitizeFrame(const std::string& name) {
  std::string out = name.empty() ? std::string("??") : name;
  for (char& c : out) {
    if (c == kFrameSep || c == '\n') c = ':';
    else if (c == ' ') c = '_';
  }
  return out;
}

}  // namespace

void FoldedProfile::Add(const std::vector<std::string>& frames,
                        std::uint64_t count) {
  if (frames.empty() || count == 0) return;
  std::string key;
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i > 0) key += kFrameSep;
    key += frames[i];
  }
  stacks_[key] += count;
  total_weight_ += count;
}

void FoldedProfile::Merge(const FoldedProfile& other) {
  for (const auto& [stack, count] : other.stacks_) {
    stacks_[stack] += count;
    total_weight_ += count;
  }
}

FoldedProfile FoldedProfile::Parse(const std::string& text) {
  FoldedProfile profile;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.find_last_of(' ');
    if (space == std::string::npos || space == 0) continue;
    const std::string stack = line.substr(0, space);
    std::uint64_t count = 0;
    try {
      count = std::stoull(line.substr(space + 1));
    } catch (...) {
      continue;
    }
    if (count == 0 || stack.empty()) continue;
    profile.stacks_[stack] += count;
    profile.total_weight_ += count;
  }
  return profile;
}

std::string FoldedProfile::ToString() const {
  std::string out;
  for (const auto& [stack, count] : stacks_) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::vector<FrameWeight> FoldedProfile::TopBySelf(std::size_t n) const {
  std::unordered_map<std::string, FrameWeight> weights;
  for (const auto& [stack, count] : stacks_) {
    const std::vector<std::string> frames = SplitFrames(stack);
    // Leaf = last real (non-tag) frame.
    for (auto it = frames.rbegin(); it != frames.rend(); ++it) {
      if (IsTagFrame(*it)) continue;
      FrameWeight& w = weights[*it];
      w.name = *it;
      w.self += count;
      break;
    }
    std::unordered_set<std::string> seen;
    for (const std::string& frame : frames) {
      if (IsTagFrame(frame) || !seen.insert(frame).second) continue;
      FrameWeight& w = weights[frame];
      w.name = frame;
      w.total += count;
    }
  }
  std::vector<FrameWeight> out;
  out.reserve(weights.size());
  for (auto& [name, w] : weights) out.push_back(std::move(w));
  std::sort(out.begin(), out.end(), [](const FrameWeight& a,
                                       const FrameWeight& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.name < b.name;
  });
  if (out.size() > n) out.resize(n);
  return out;
}

std::vector<FrameWeight> FoldedProfile::TopByTotal(std::size_t n) const {
  std::vector<FrameWeight> all = TopBySelf(stacks_.size() * 8 + 8);
  std::sort(all.begin(), all.end(), [](const FrameWeight& a,
                                       const FrameWeight& b) {
    if (a.total != b.total) return a.total > b.total;
    return a.name < b.name;
  });
  if (all.size() > n) all.resize(n);
  return all;
}

std::map<std::string, std::uint64_t> FoldedProfile::PhaseBreakdown() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [stack, count] : stacks_) {
    if (stack.rfind("phase:", 0) == 0) {
      const std::size_t end = stack.find(kFrameSep);
      const std::string phase =
          stack.substr(6, end == std::string::npos ? std::string::npos
                                                   : end - 6);
      out[phase] += count;
    } else {
      out["untagged"] += count;
    }
  }
  return out;
}

std::map<std::string, std::uint64_t> FoldedProfile::ActorBreakdown() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [stack, count] : stacks_) {
    std::string actor = "none";
    for (const std::string& frame : SplitFrames(stack)) {
      if (frame.rfind("actor:", 0) == 0) {
        actor = frame.substr(6);
        break;
      }
      if (!IsTagFrame(frame)) break;  // tags only appear at the root
    }
    out[actor] += count;
  }
  return out;
}

namespace {

void AppendTagFrames(std::uint8_t phase, std::uint8_t actor,
                     std::vector<std::string>& frames) {
  const auto p = static_cast<profiler::Phase>(
      phase < static_cast<std::uint8_t>(profiler::Phase::kCount) ? phase : 0);
  frames.push_back(std::string("phase:") + profiler::PhaseName(p));
  if (actor != 0) {
    const auto a = static_cast<profiler::ActorTag>(
        actor <= static_cast<std::uint8_t>(profiler::ActorTag::kOther) ? actor
                                                                       : 0);
    frames.push_back(std::string("actor:") + profiler::ActorTagName(a));
  }
}

void AppendSymbolized(const std::vector<std::uintptr_t>& leaf_first,
                      Symbolizer& symbolizer,
                      std::vector<std::string>& frames) {
  for (auto it = leaf_first.rbegin(); it != leaf_first.rend(); ++it) {
    frames.push_back(SanitizeFrame(symbolizer.Resolve(*it).name));
  }
}

}  // namespace

FoldedProfile FoldCpuSamples(const std::vector<profiler::CpuSample>& samples,
                             Symbolizer& symbolizer) {
  FoldedProfile profile;
  std::vector<std::string> frames;
  for (const profiler::CpuSample& sample : samples) {
    if (sample.frames.empty()) continue;
    frames.clear();
    AppendTagFrames(sample.phase, sample.actor, frames);
    AppendSymbolized(sample.frames, symbolizer, frames);
    profile.Add(frames, 1);
  }
  return profile;
}

FoldedProfile FoldHeapSites(const std::vector<profiler::HeapSiteStats>& sites,
                            Symbolizer& symbolizer, bool live) {
  FoldedProfile profile;
  std::vector<std::string> frames;
  for (const profiler::HeapSiteStats& site : sites) {
    const std::uint64_t weight = live ? site.live_bytes : site.total_bytes;
    if (weight == 0 || site.frames.empty()) continue;
    frames.clear();
    AppendTagFrames(site.phase, site.actor, frames);
    AppendSymbolized(site.frames, symbolizer, frames);
    profile.Add(frames, weight);
  }
  return profile;
}

std::string RenderProfileReport(const FoldedProfile& profile,
                                const std::string& unit, std::size_t top_n) {
  std::ostringstream out;
  const std::uint64_t total = profile.total_weight();
  out << "profile: " << total << " " << unit << " across "
      << profile.stack_count() << " unique stacks\n";
  if (total == 0) return out.str();

  auto pct = [total](std::uint64_t w) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%5.1f%%",
                  100.0 * static_cast<double>(w) / static_cast<double>(total));
    return std::string(buf);
  };

  out << "\nby phase:\n";
  const auto phase_map = profile.PhaseBreakdown();
  std::vector<std::pair<std::string, std::uint64_t>> phases(phase_map.begin(),
                                                            phase_map.end());
  std::sort(phases.begin(), phases.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (const auto& [phase, weight] : phases) {
    out << "  " << pct(weight) << "  " << weight << "  " << phase << "\n";
  }

  const auto actors = profile.ActorBreakdown();
  if (actors.size() > 1 || actors.count("none") == 0) {
    out << "\nby actor:\n";
    std::vector<std::pair<std::string, std::uint64_t>> rows(actors.begin(),
                                                            actors.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });
    for (const auto& [actor, weight] : rows) {
      out << "  " << pct(weight) << "  " << weight << "  " << actor << "\n";
    }
  }

  out << "\ntop " << top_n << " by self " << unit << ":\n";
  for (const FrameWeight& w : profile.TopBySelf(top_n)) {
    out << "  " << pct(w.self) << "  self=" << w.self << "  total=" << w.total
        << "  " << w.name << "\n";
  }

  out << "\ntop " << top_n << " by total " << unit << ":\n";
  for (const FrameWeight& w : profile.TopByTotal(top_n)) {
    out << "  " << pct(w.total) << "  total=" << w.total << "  self=" << w.self
        << "  " << w.name << "\n";
  }
  return out.str();
}

}  // namespace fl::analytics
