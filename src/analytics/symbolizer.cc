#include "src/analytics/symbolizer.h"

#include <dlfcn.h>

#include <cstdio>
#include <cstdlib>
#include <cxxabi.h>
#include <fstream>
#include <sstream>

namespace fl::analytics {

std::string Demangle(const std::string& mangled) {
  int status = 0;
  char* out = abi::__cxa_demangle(mangled.c_str(), nullptr, nullptr, &status);
  if (status == 0 && out != nullptr) {
    std::string result(out);
    std::free(out);
    return result;
  }
  std::free(out);
  return mangled;
}

std::vector<MapsEntry> ParseProcMaps(const std::string& maps_text) {
  std::vector<MapsEntry> out;
  std::istringstream in(maps_text);
  std::string line;
  while (std::getline(in, line)) {
    // 55d1c2a00000-55d1c2b00000 r-xp 00024000 fd:01 123  /usr/bin/foo
    unsigned long long start = 0, end = 0, offset = 0;
    char perms[8] = {0};
    int path_pos = -1;
    if (std::sscanf(line.c_str(), "%llx-%llx %7s %llx %*s %*s %n", &start,
                    &end, perms, &offset, &path_pos) < 4) {
      continue;
    }
    if (perms[2] != 'x') continue;
    MapsEntry entry;
    entry.start = static_cast<std::uintptr_t>(start);
    entry.end = static_cast<std::uintptr_t>(end);
    entry.offset = static_cast<std::uintptr_t>(offset);
    if (path_pos >= 0 && static_cast<std::size_t>(path_pos) < line.size()) {
      entry.path = line.substr(static_cast<std::size_t>(path_pos));
    }
    out.push_back(std::move(entry));
  }
  return out;
}

std::vector<MapsEntry> ReadOwnProcMaps() {
  std::ifstream in("/proc/self/maps");
  if (!in) return {};
  std::ostringstream buf;
  buf << in.rdbuf();
  return ParseProcMaps(buf.str());
}

namespace {

std::string BaseName(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

std::string ModuleOffsetName(std::uintptr_t address) {
  static const std::vector<MapsEntry>* const maps =
      new std::vector<MapsEntry>(ReadOwnProcMaps());  // leaked, stable
  for (const MapsEntry& entry : *maps) {
    if (address >= entry.start && address < entry.end) {
      const std::uintptr_t file_off = address - entry.start + entry.offset;
      char buf[32];
      std::snprintf(buf, sizeof(buf), "+0x%llx",
                    static_cast<unsigned long long>(file_off));
      const std::string mod =
          entry.path.empty() ? "anon" : BaseName(entry.path);
      return mod + buf;
    }
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(address));
  return buf;
}

}  // namespace

const SymbolizedFrame& Symbolizer::Resolve(std::uintptr_t address) {
  auto it = cache_.find(address);
  if (it != cache_.end()) return it->second;

  SymbolizedFrame frame;
  frame.address = address;
  // The recorded PC is the *return* address for every non-leaf frame;
  // subtract 1 so a call at the very end of a function does not resolve
  // into the next symbol.
  Dl_info info;
  if (dladdr(reinterpret_cast<void*>(address - 1), &info) != 0 &&
      info.dli_sname != nullptr) {
    frame.name = Demangle(info.dli_sname);
    frame.exact = true;
  } else {
    frame.name = ModuleOffsetName(address);
    frame.exact = false;
  }
  return cache_.emplace(address, std::move(frame)).first->second;
}

std::vector<SymbolizedFrame> Symbolizer::ResolveAll(
    const std::vector<std::uintptr_t>& addresses) {
  std::vector<SymbolizedFrame> out;
  out.reserve(addresses.size());
  for (std::uintptr_t address : addresses) out.push_back(Resolve(address));
  return out;
}

}  // namespace fl::analytics
