// Durable event journal (Sec. 5): "we also log an event for every state in a
// training round" — devices and server actors append one structured record
// per lifecycle event to a line-delimited log that survives the process, so
// session shapes (Table 1) can be regenerated offline and bugs show up as
// "deviations from the expected state sequences" (checked by
// tools/log_analyzer + the fl_analyze CLI).
//
// Gating mirrors telemetry: JournalEnabled() is one relaxed atomic load,
// false until a journal file is opened, so every emission site costs ~one
// predictable branch when journaling is off. Writes go through a buffered
// sink (format into a stack buffer, append to a heap buffer under a mutex,
// flush to disk in large blocks), so the enabled path stays cheap too.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <string_view>

#include "src/analytics/events.h"
#include "src/common/id.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"
#include "src/telemetry/telemetry.h"  // WallMicros

namespace fl::analytics {

// Who appended the record. One value per paper actor (Sec. 4.2) plus the
// in-process modeling simulator (Sec. 7.1).
enum class JournalSource : std::uint8_t {
  kDevice = 0,
  kSelector,
  kMaster,
  kAggregator,
  kCoordinator,
  kSim,
};

const char* JournalSourceName(JournalSource s);
Result<JournalSource> ParseJournalSource(std::string_view name);

// Every journaled lifecycle event. The first block mirrors SessionEvent
// one-to-one (device-side, Table 1 glyphs); the rest are server/sim states.
enum class JournalEventKind : std::uint8_t {
  // --- device session events (Table 1) ---
  kCheckin = 0,        // '-'
  kPlanDownloaded,     // 'v'
  kTrainStart,         // '['
  kTrainComplete,      // ']'
  kUploadStart,        // '+'
  kUploadComplete,     // '^'
  kUploadRejected,     // '#'
  kInterrupted,        // '!'
  kError,              // '*'
  kSessionEnd,         // device session teardown (not part of the shape)
  // --- server events ---
  kCheckinAccepted,    // selector admitted the device to its waiting pool
  kCheckinRejected,    // selector/master/aggregator turned the device away
  kRoundOpen,          // master aggregator spawned for a round
  kPhase,              // round phase transition (detail = phase name)
  kReportAccepted,     // aggregator folded a device report into the sum
  kReportRejected,     // aggregator refused a report (late/corrupt)
  kRoundCommit,        // master reached the participant goal
  kRoundAbandoned,     // master gave up (detail = outcome + reason)
  kRoundOutcome,       // coordinator's final verdict for the round
  // --- modeling simulator (tools/simulation_runner) ---
  kSimRoundStart,
  kSimRoundComplete,
};

const char* JournalEventName(JournalEventKind k);
Result<JournalEventKind> ParseJournalEvent(std::string_view name);

// Device SessionEvent <-> JournalEventKind (the first nine kinds).
JournalEventKind JournalEventForSession(SessionEvent e);
// Returns false when `k` is not a device session event.
bool SessionEventForJournal(JournalEventKind k, SessionEvent* out);

// One journal line. Ids use 0 for "not applicable" (e.g. a round-level
// event has no device/session; a pre-assignment device event has no round).
struct JournalRecord {
  SimTime sim_time;
  std::int64_t wall_us = 0;
  JournalSource source = JournalSource::kDevice;
  JournalEventKind event = JournalEventKind::kCheckin;
  DeviceId device;
  SessionId session;
  RoundId round;
  // Free-form key=value details (reason, phase name, contributors=N ...).
  // May contain spaces; newlines/backslashes are escaped on the wire.
  std::string detail;

  // One line, no trailing newline:
  //   <sim_ms> <wall_us> <source> <event> <device> <session> <round> [detail]
  std::string Serialize() const;
  static Result<JournalRecord> Parse(std::string_view line);
};

// Pulls "key=value" out of a record detail string ("a=1 b=x y"). Values run
// to the next space; returns false when the key is absent.
bool DetailField(std::string_view detail, std::string_view key,
                 std::string* value);
// Integer convenience over DetailField; returns `fallback` when missing or
// non-numeric.
std::int64_t DetailInt(std::string_view detail, std::string_view key,
                       std::int64_t fallback);

namespace journal_internal {
inline std::atomic<bool> g_enabled{false};
}  // namespace journal_internal

// One relaxed load; every emission site is written
// `if (JournalEnabled()) { ... }` so a disabled deployment performs no
// formatting, locking, or allocation.
inline bool JournalEnabled() {
  return journal_internal::g_enabled.load(std::memory_order_relaxed);
}

// The process-wide journal sink. Open() enables JournalEnabled(); Close()
// flushes and disables it. Append() is thread-safe (the parallel round
// engine emits from pool workers).
class Journal {
 public:
  static Journal& Global();

  Journal() = default;
  ~Journal();
  Journal(const Journal&) = delete;
  Journal& operator=(const Journal&) = delete;

  // Creates/truncates `path`, writes the header line, and flips the global
  // enabled flag on success.
  Status Open(const std::string& path);
  bool is_open() const;
  // Flushes buffered records to disk (fwrite + fflush).
  void Flush();
  // Crash-path flush: try-locks the mutex so a fatal-signal handler that
  // interrupted a writer mid-append skips the flush instead of deadlocking.
  // Returns false when the lock was contended (buffer left as-is). Not
  // strictly async-signal-safe (fwrite/fflush), but the process is dying and
  // losing the tail is the alternative.
  bool FlushBestEffort();
  // Flush + close + disable. Idempotent.
  void Close();

  void Append(const JournalRecord& record);

  std::uint64_t events_written() const {
    return events_written_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytes_written() const {
    return bytes_written_.load(std::memory_order_relaxed);
  }

  // The journal format version header ("#fl-journal v1"); parsers skip
  // every line starting with '#'.
  static constexpr const char* kHeader = "#fl-journal v1";

 private:
  void FlushLocked();

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string buffer_;
  std::atomic<std::uint64_t> events_written_{0};
  std::atomic<std::uint64_t> bytes_written_{0};
};

// Emission convenience: stamps the wall clock and appends to the global
// journal. Callers must pre-check JournalEnabled() so disabled deployments
// never reach the formatting/locking path.
inline void AppendJournal(SimTime t, JournalSource source,
                          JournalEventKind event,
                          DeviceId device = DeviceId{},
                          SessionId session = SessionId{},
                          RoundId round = RoundId{}, std::string detail = {}) {
  JournalRecord rec;
  rec.sim_time = t;
  rec.wall_us = telemetry::WallMicros();
  rec.source = source;
  rec.event = event;
  rec.device = device;
  rec.session = session;
  rec.round = round;
  rec.detail = std::move(detail);
  Journal::Global().Append(rec);
}

}  // namespace fl::analytics
