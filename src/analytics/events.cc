#include "src/analytics/events.h"

#include <algorithm>

namespace fl::analytics {

char SessionEventGlyph(SessionEvent e) {
  switch (e) {
    case SessionEvent::kCheckin: return '-';
    case SessionEvent::kDownloadedPlan: return 'v';
    case SessionEvent::kTrainingStarted: return '[';
    case SessionEvent::kTrainingCompleted: return ']';
    case SessionEvent::kUploadStarted: return '+';
    case SessionEvent::kUploadCompleted: return '^';
    case SessionEvent::kUploadRejected: return '#';
    case SessionEvent::kInterrupted: return '!';
    case SessionEvent::kError: return '*';
  }
  return '?';
}

const char* DeviceStateName(DeviceState s) {
  switch (s) {
    case DeviceState::kIdle: return "idle";
    case DeviceState::kAttesting: return "attesting";
    case DeviceState::kWaiting: return "waiting";
    case DeviceState::kParticipating: return "participating";
    case DeviceState::kClosing: return "closing";
  }
  return "unknown";
}

std::string SessionTrace::Shape() const {
  std::string s;
  s.reserve(events.size());
  for (SessionEvent e : events) s.push_back(SessionEventGlyph(e));
  return s;
}

void SessionShapeTally::Record(const SessionTrace& trace) {
  RecordShape(trace.Shape());
}

void SessionShapeTally::RecordShape(const std::string& shape) {
  ++counts_[shape];
  ++total_;
}

std::vector<std::pair<std::string, std::size_t>> SessionShapeTally::Ranked()
    const {
  std::vector<std::pair<std::string, std::size_t>> out(counts_.begin(),
                                                       counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double SessionShapeTally::Fraction(const std::string& shape) const {
  if (total_ == 0) return 0.0;
  const auto it = counts_.find(shape);
  return it == counts_.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(total_);
}

}  // namespace fl::analytics
