#include "src/analytics/events.h"

#include <algorithm>

namespace fl::analytics {

char SessionEventGlyph(SessionEvent e) {
  switch (e) {
    case SessionEvent::kCheckin: return '-';
    case SessionEvent::kDownloadedPlan: return 'v';
    case SessionEvent::kTrainingStarted: return '[';
    case SessionEvent::kTrainingCompleted: return ']';
    case SessionEvent::kUploadStarted: return '+';
    case SessionEvent::kUploadCompleted: return '^';
    case SessionEvent::kUploadRejected: return '#';
    case SessionEvent::kInterrupted: return '!';
    case SessionEvent::kError: return '*';
  }
  return '?';
}

const char* DeviceStateName(DeviceState s) {
  switch (s) {
    case DeviceState::kIdle: return "idle";
    case DeviceState::kAttesting: return "attesting";
    case DeviceState::kWaiting: return "waiting";
    case DeviceState::kParticipating: return "participating";
    case DeviceState::kClosing: return "closing";
  }
  return "unknown";
}

Result<std::vector<SessionEvent>> ParseShape(std::string_view shape) {
  std::vector<SessionEvent> events;
  events.reserve(shape.size());
  for (char c : shape) {
    switch (c) {
      case '-': events.push_back(SessionEvent::kCheckin); break;
      case 'v': events.push_back(SessionEvent::kDownloadedPlan); break;
      case '[': events.push_back(SessionEvent::kTrainingStarted); break;
      case ']': events.push_back(SessionEvent::kTrainingCompleted); break;
      case '+': events.push_back(SessionEvent::kUploadStarted); break;
      case '^': events.push_back(SessionEvent::kUploadCompleted); break;
      case '#': events.push_back(SessionEvent::kUploadRejected); break;
      case '!': events.push_back(SessionEvent::kInterrupted); break;
      case '*': events.push_back(SessionEvent::kError); break;
      default:
        return InvalidArgumentError(std::string("unknown shape glyph '") +
                                    c + "'");
    }
  }
  return events;
}

std::string SessionTrace::Shape() const {
  std::string s;
  s.reserve(events.size());
  for (SessionEvent e : events) s.push_back(SessionEventGlyph(e));
  return s;
}

void SessionShapeTally::Record(const SessionTrace& trace) {
  RecordShape(trace.Shape());
}

void SessionShapeTally::RecordShape(const std::string& shape) {
  ++counts_[shape];
  ++total_;
}

std::vector<std::pair<std::string, std::size_t>> SessionShapeTally::Ranked()
    const {
  std::vector<std::pair<std::string, std::size_t>> out(counts_.begin(),
                                                       counts_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

double SessionShapeTally::Fraction(const std::string& shape) const {
  if (total_ == 0) return 0.0;
  const auto it = counts_.find(shape);
  return it == counts_.end()
             ? 0.0
             : static_cast<double>(it->second) / static_cast<double>(total_);
}

}  // namespace fl::analytics
