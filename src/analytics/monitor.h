// Automatic time-series monitors (Sec. 5): health metrics are "fed into
// automatic time-series monitors that trigger alerts on substantial
// deviations" — this is how the paper's team discovered, e.g., "that the
// drop out rates of training participants were much higher than expected".
#pragma once

#include <string>
#include <vector>

#include "src/common/sim_time.h"

namespace fl::analytics {

struct Alert {
  SimTime time;
  std::string metric;
  double observed = 0;
  double expected_mean = 0;
  double threshold_sigma = 0;
  std::string message;
};

// Rolling-window deviation monitor: alerts when an observation departs from
// the trailing mean by more than `sigma_threshold` standard deviations
// (after a warm-up period).
class DeviationMonitor {
 public:
  struct Params {
    std::size_t window = 48;        // trailing samples forming the baseline
    double sigma_threshold = 4.0;
    std::size_t warmup = 12;        // samples before alerting is armed
    double min_sigma = 1e-6;        // floor to avoid zero-variance alarms
  };

  DeviationMonitor(std::string metric_name, Params params)
      : metric_(std::move(metric_name)), params_(params) {}

  // Feeds one observation; returns true if it raised an alert.
  bool Observe(SimTime t, double value);

  const std::vector<Alert>& alerts() const { return alerts_; }
  const std::string& metric() const { return metric_; }

 private:
  std::string metric_;
  Params params_;
  std::vector<double> window_;
  std::vector<Alert> alerts_;
};

// Static-threshold monitor (e.g., "drop-out rate must stay below 15%").
class ThresholdMonitor {
 public:
  ThresholdMonitor(std::string metric_name, double max_value)
      : metric_(std::move(metric_name)), max_(max_value) {}

  bool Observe(SimTime t, double value);
  const std::vector<Alert>& alerts() const { return alerts_; }

 private:
  std::string metric_;
  double max_;
  std::vector<Alert> alerts_;
};

}  // namespace fl::analytics
