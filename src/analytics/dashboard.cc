#include "src/analytics/dashboard.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace fl::analytics {
namespace {
const char kLevels[] = " .:-=+*#%@";
}  // namespace

std::string RenderSeriesChart(const std::vector<SeriesSpec>& specs,
                              std::size_t width) {
  std::ostringstream os;
  std::size_t buckets = 0;
  for (const auto& s : specs) {
    buckets = std::max(buckets, s.series->bucket_count());
  }
  if (buckets == 0) return "(no data)\n";
  const std::size_t group = std::max<std::size_t>(1, buckets / width);

  for (const auto& spec : specs) {
    double max_v = 1e-12;
    std::vector<double> grouped;
    for (std::size_t i = 0; i < buckets; i += group) {
      double v = 0;
      for (std::size_t j = i; j < std::min(i + group, buckets); ++j) {
        v += spec.use_rate_per_hour ? spec.series->RatePerHour(j)
             : spec.use_mean        ? spec.series->Mean(j)
                                    : spec.series->Sum(j);
      }
      v /= static_cast<double>(group);
      grouped.push_back(v);
      max_v = std::max(max_v, v);
    }
    os << spec.label << " (max " << TextTable::Num(max_v) << ")\n  |";
    for (double v : grouped) {
      const auto level =
          static_cast<std::size_t>(9.0 * std::max(0.0, v) / max_v);
      os << kLevels[std::min<std::size_t>(level, 9)];
    }
    os << "|\n";
  }
  // Time axis annotation.
  const auto& first = *specs.front().series;
  os << "  start=" << FormatSimTime(first.start()) << " bucket="
     << first.bucket_width().Minutes() << "min x" << group << "\n";
  return os.str();
}

std::string RenderSessionShapeTable(const SessionShapeTally& tally,
                                    std::size_t max_rows) {
  TextTable t({"Session Shape", "Count", "Percent"});
  std::size_t rows = 0;
  for (const auto& [shape, count] : tally.Ranked()) {
    if (rows++ >= max_rows) break;
    char pct[16];
    std::snprintf(pct, sizeof(pct), "%.0f%%",
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(std::max<std::size_t>(1, tally.total())));
    t.AddRow({shape, std::to_string(count), pct});
  }
  return t.Render();
}

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t i = 0; i < headers_.size(); ++i) {
    widths[i] = headers_[i].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " |";
    }
    os << "\n";
  };
  auto emit_sep = [&] {
    os << "+";
    for (std::size_t w : widths) os << std::string(w + 2, '-') << "+";
    os << "\n";
  };
  emit_sep();
  emit_row(headers_);
  emit_sep();
  for (const auto& row : rows_) emit_row(row);
  emit_sep();
  return os.str();
}

std::string TextTable::Num(double v, int precision) {
  char buf[48];
  if (std::fabs(v) >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3g", v);
  } else {
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  }
  return buf;
}

}  // namespace fl::analytics
