// Offline symbolization for profiler samples. Runs strictly in normal
// context (allocates, takes locks): the async-signal-safe side of the
// profiler only ever records raw PCs; names are attached here.
//
// Resolution order per address:
//  1. dladdr() — works for exported symbols; the FL_PROFILER build sets
//     CMAKE_ENABLE_EXPORTS (-rdynamic) so statically linked function
//     symbols land in the dynamic table.
//  2. C++ names are demangled via abi::__cxa_demangle.
//  3. Fallback: "<module>+0x<offset>" derived from /proc/self/maps, which
//     stays resolvable offline (addr2line) when paired with the maps copy
//     the crash handler writes next to raw dumps.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace fl::analytics {

struct SymbolizedFrame {
  std::uintptr_t address = 0;
  std::string name;       // demangled symbol or module+offset fallback
  bool exact = false;     // true if a symbol (not just a module) matched
};

class Symbolizer {
 public:
  Symbolizer() = default;

  // Resolves one PC. Results are memoized; repeated addresses are O(1).
  const SymbolizedFrame& Resolve(std::uintptr_t address);

  // Resolves a whole stack (leaf first in, leaf first out).
  std::vector<SymbolizedFrame> ResolveAll(
      const std::vector<std::uintptr_t>& addresses);

  std::size_t cache_size() const { return cache_.size(); }

 private:
  std::unordered_map<std::uintptr_t, SymbolizedFrame> cache_;
};

// Demangles a mangled C++ symbol name; returns the input unchanged if it
// does not demangle (C symbols, already-plain names).
std::string Demangle(const std::string& mangled);

// One mapped executable region of the current process.
struct MapsEntry {
  std::uintptr_t start = 0;
  std::uintptr_t end = 0;
  std::uintptr_t offset = 0;
  std::string path;
};

// Parses the executable ("x" permission) entries of a /proc/self/maps-format
// text. Exposed for tests; Symbolizer uses the live file.
std::vector<MapsEntry> ParseProcMaps(const std::string& maps_text);

// Reads /proc/self/maps (empty vector on non-Linux / failure).
std::vector<MapsEntry> ReadOwnProcMaps();

}  // namespace fl::analytics
