// Federated Analytics — the Sec. 11 "Federated Computation" direction,
// implemented: "We aim to generalize our system from Federated Learning to
// Federated Computation ... One application area we are seeing is in
// Federated Analytics, which would allow us to monitor aggregate device
// statistics without logging raw device data to the cloud."
//
// A federated histogram query: every client reduces its local data to a
// fixed-width count vector; the server learns only the (optionally
// securely-aggregated) sum. No ML anywhere — which is the point the paper
// makes: "this paper contains no explicit mentioning of any ML logic".
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace fl::tools {

struct HistogramQueryConfig {
  std::size_t buckets = 16;
  // When true, client vectors are summed under Secure Aggregation in groups
  // (Sec. 6), so no individual histogram is ever visible to the server.
  bool secure = true;
  std::size_t group_size = 32;        // SecAgg group (>= k of Sec. 6)
  double threshold_fraction = 0.66;   // Shamir threshold within a group
  // Fraction of clients that drop out mid-protocol (simulated unreliability;
  // secure groups recover, insecure sums simply miss them).
  double dropout_rate = 0.0;
  std::uint64_t seed = 1;
};

struct HistogramResult {
  std::vector<std::uint64_t> counts;     // per-bucket totals
  std::size_t clients_contributing = 0;  // clients included in the sum
  std::size_t groups = 0;                // SecAgg instances run
};

// Runs the query over the given per-client histograms (each already reduced
// on-device). With `secure`, each group of clients runs the full four-round
// SecAgg protocol and only group sums reach the aggregate — mirroring the
// per-Aggregator grouping of Sec. 6.
Result<HistogramResult> RunFederatedHistogram(
    const std::vector<std::vector<std::uint32_t>>& client_histograms,
    const HistogramQueryConfig& config);

// Convenience: build per-client histograms by bucketing a value extracted
// from each client's records.
template <typename Record>
std::vector<std::uint32_t> Bucketize(
    const std::vector<Record>& records, std::size_t buckets,
    const std::function<std::size_t(const Record&)>& bucket_of) {
  std::vector<std::uint32_t> hist(buckets, 0);
  for (const Record& r : records) {
    const std::size_t b = bucket_of(r);
    if (b < buckets) ++hist[b];
  }
  return hist;
}

}  // namespace fl::tools
