#include "src/tools/federated_analytics.h"

#include <algorithm>
#include <cstring>

#include "src/secagg/client.h"
#include "src/secagg/server.h"

namespace fl::tools {
namespace {

crypto::Key256 KeyFrom(Rng& rng) {
  crypto::Key256 k;
  for (auto& b : k) b = static_cast<std::uint8_t>(rng.Next());
  return k;
}

// Runs one SecAgg instance over `members` histograms; drop-outs happen
// between ShareKeys and Commit. Returns the group sum (empty on abort).
Result<std::vector<std::uint32_t>> SecureGroupSum(
    const std::vector<const std::vector<std::uint32_t>*>& members,
    std::size_t buckets, double threshold_fraction, double dropout_rate,
    Rng& rng, std::size_t* contributing) {
  const std::size_t n = members.size();
  const std::size_t threshold = std::max<std::size_t>(
      2, static_cast<std::size_t>(threshold_fraction * n + 0.999));

  std::vector<secagg::SecAggClient> clients;
  clients.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    clients.emplace_back(static_cast<secagg::ParticipantIndex>(i + 1),
                         threshold, buckets, KeyFrom(rng));
  }
  secagg::SecAggServer server(threshold, buckets);

  for (auto& c : clients) {
    FL_RETURN_IF_ERROR(server.CollectAdvertisement(c.AdvertiseKeys()));
  }
  FL_ASSIGN_OR_RETURN(secagg::KeyDirectory directory,
                      server.FinishAdvertising());
  for (auto& c : clients) {
    FL_ASSIGN_OR_RETURN(secagg::ShareKeysMessage msg,
                        c.ShareKeys(directory));
    FL_RETURN_IF_ERROR(server.CollectShares(msg));
  }
  FL_ASSIGN_OR_RETURN(std::vector<secagg::ParticipantIndex> u1,
                      server.FinishSharing());

  std::vector<bool> dropped(n, false);
  std::size_t survivors = 0;
  for (std::size_t i = 0; i < n; ++i) {
    dropped[i] = rng.Bernoulli(dropout_rate);
    if (!dropped[i]) ++survivors;
  }
  // Keep the protocol viable: force enough survivors.
  for (std::size_t i = 0; i < n && survivors < threshold + 1; ++i) {
    if (dropped[i]) {
      dropped[i] = false;
      ++survivors;
    }
  }

  for (std::size_t i = 0; i < n; ++i) {
    if (dropped[i]) continue;
    for (const secagg::EncryptedShare& s :
         server.SharesFor(static_cast<secagg::ParticipantIndex>(i + 1))) {
      clients[i].ReceiveShare(s);
    }
    FL_ASSIGN_OR_RETURN(secagg::MaskedInput masked,
                        clients[i].MaskInput(*members[i], u1));
    FL_RETURN_IF_ERROR(server.CollectMaskedInput(masked));
  }
  FL_ASSIGN_OR_RETURN(secagg::UnmaskingRequest request,
                      server.FinishCommit());
  for (std::size_t i = 0; i < n; ++i) {
    if (dropped[i]) continue;
    FL_ASSIGN_OR_RETURN(secagg::UnmaskingResponse resp,
                        clients[i].Unmask(request));
    FL_RETURN_IF_ERROR(server.CollectUnmaskingResponse(resp));
  }
  *contributing += server.committed().size();
  return server.Finalize();
}

}  // namespace

Result<HistogramResult> RunFederatedHistogram(
    const std::vector<std::vector<std::uint32_t>>& client_histograms,
    const HistogramQueryConfig& config) {
  if (client_histograms.empty()) {
    return InvalidArgumentError("no client histograms");
  }
  for (const auto& h : client_histograms) {
    if (h.size() != config.buckets) {
      return InvalidArgumentError("client histogram width mismatch");
    }
  }
  Rng rng(config.seed);
  HistogramResult result;
  result.counts.assign(config.buckets, 0);

  if (!config.secure) {
    for (const auto& h : client_histograms) {
      if (rng.Bernoulli(config.dropout_rate)) continue;
      for (std::size_t b = 0; b < config.buckets; ++b) {
        result.counts[b] += h[b];
      }
      ++result.clients_contributing;
    }
    return result;
  }

  // Secure path: SecAgg per group of >= 3 clients.
  const std::size_t group = std::max<std::size_t>(3, config.group_size);
  for (std::size_t start = 0; start < client_histograms.size();
       start += group) {
    const std::size_t end =
        std::min(client_histograms.size(), start + group);
    if (end - start < 3) break;  // leftover too small for a secure group
    std::vector<const std::vector<std::uint32_t>*> members;
    for (std::size_t i = start; i < end; ++i) {
      members.push_back(&client_histograms[i]);
    }
    auto sum = SecureGroupSum(members, config.buckets,
                              config.threshold_fraction, config.dropout_rate,
                              rng, &result.clients_contributing);
    if (!sum.ok()) continue;  // a failed group contributes nothing
    ++result.groups;
    for (std::size_t b = 0; b < config.buckets; ++b) {
      result.counts[b] += (*sum)[b];
    }
  }
  if (result.groups == 0) {
    return AbortedError("every secure aggregation group failed");
  }
  return result;
}

}  // namespace fl::tools
