// In-process FL simulation for modeling work (Sec. 7.1): "Our modeling tools
// allow deployment of FL tasks to a simulated FL server and a fleet of cloud
// jobs emulating devices on a large proxy dataset. The simulation executes
// the same code as we run on device."
//
// No protocol/network/actors: just Algorithm 1 over per-client example sets.
// Used for hyperparameter exploration, pre-training on proxy data, and the
// convergence benches (which need thousands of rounds cheaply).
#pragma once

#include <functional>
#include <vector>

#include "src/common/rng.h"
#include "src/data/example.h"
#include "src/fedavg/client_update.h"
#include "src/fedavg/server_aggregate.h"
#include "src/graph/model_zoo.h"
#include "src/plan/plan.h"

namespace fl::tools {

struct SimulationConfig {
  std::size_t clients_per_round = 20;   // K in Algorithm 1
  std::size_t rounds = 100;
  double client_failure_rate = 0.0;     // fraction of selected that drop
  std::uint64_t seed = 17;
  // Evaluate on held-out data every `eval_every` rounds (0 = never).
  std::size_t eval_every = 10;
  // Worker threads for the round engine. 1 (the default) runs the exact
  // sequential path — bit-for-bit seed-compatible with earlier versions.
  // N > 1 executes each round's client updates on an N-thread pool with one
  // FedAvgAccumulator shard per thread, merged in fixed shard order
  // (Aggregator → Master Aggregator, Sec. 4.2). All randomness is pre-drawn
  // sequentially, so results are deterministic for a fixed (seed, threads)
  // pair; thread count only changes floating-point merge order.
  std::size_t threads = 1;
};

struct RoundPoint {
  std::size_t round = 0;
  double train_loss = 0;
  double eval_loss = 0;
  double eval_accuracy = 0;   // top-1 recall for LM tasks
  bool has_eval = false;
};

struct SimulationResult {
  Checkpoint final_model;
  std::vector<RoundPoint> trajectory;
  std::size_t rounds_run = 0;
};

// Runs FedAvg (per the plan's hyperparameters) over `client_data` — one
// entry per simulated client — sampling clients uniformly each round.
Result<SimulationResult> RunFedAvgSimulation(
    const plan::FLPlan& plan, const Checkpoint& init,
    const std::vector<std::vector<data::Example>>& client_data,
    std::span<const data::Example> eval_data, const SimulationConfig& config);

// Centralized SGD baseline over the pooled data (the "server-trained" model
// of Sec. 8), using the same graph/executor stack.
Result<SimulationResult> RunCentralizedBaseline(
    const plan::FLPlan& plan, const Checkpoint& init,
    std::span<const data::Example> train_data,
    std::span<const data::Example> eval_data, std::size_t epochs,
    const SimulationConfig& config);

}  // namespace fl::tools
