#include "src/tools/deployment_gate.h"

#include <cmath>

namespace fl::tools {
namespace {

// One release-test run: execute the plan on the proxy data under the given
// runtime version and collect before/after losses.
Result<TestRunContext> RunOnce(const plan::FLPlan& plan,
                               const Checkpoint& init_params,
                               std::span<const data::Example> proxy,
                               std::uint32_t runtime_version, Rng& rng) {
  TestRunContext ctx;
  ctx.runtime_version = runtime_version;
  ctx.examples = proxy.size();

  FL_ASSIGN_OR_RETURN(
      fedavg::ClientMetrics before,
      fedavg::RunClientEvaluation(plan.device, init_params, proxy,
                                  runtime_version));
  ctx.loss_before = before.mean_loss;

  if (plan.device.kind == plan::TaskKind::kTraining) {
    Rng shuffle = rng.Fork();
    FL_ASSIGN_OR_RETURN(
        fedavg::ClientUpdateResult update,
        fedavg::RunClientUpdate(plan.device, init_params, proxy,
                                runtime_version, shuffle));
    // Apply the single-client update exactly as the server would.
    Checkpoint after = init_params;
    Checkpoint delta = update.weighted_delta;
    delta.Scale(1.0f / update.weight);
    FL_RETURN_IF_ERROR(after.AddInPlace(delta));
    FL_ASSIGN_OR_RETURN(
        fedavg::ClientMetrics post,
        fedavg::RunClientEvaluation(plan.device, after, proxy,
                                    runtime_version));
    ctx.loss_after = post.mean_loss;
    ctx.accuracy_after = post.mean_accuracy;
  } else {
    ctx.loss_after = before.mean_loss;
    ctx.accuracy_after = before.mean_accuracy;
  }
  return ctx;
}

}  // namespace

DeploymentReport RunDeploymentGate(const DeploymentCandidate& candidate,
                                   std::uint32_t oldest_supported_version,
                                   Rng& rng) {
  DeploymentReport report;

  // Gate 1: auditable, peer-reviewed code.
  if (!candidate.code_reviewed) {
    report.failures.push_back("plan was not built from peer-reviewed code");
  }
  if (candidate.tests.empty()) {
    report.failures.push_back("no bundled test predicates");
  }
  if (candidate.proxy_data.empty()) {
    report.failures.push_back("no proxy data for simulation tests");
  }

  // Gate 3: resource envelope.
  report.resources =
      plan::EstimateResources(candidate.plan, candidate.init_params);
  if (const Status s =
          plan::CheckWithinLimits(report.resources, candidate.limits);
      !s.ok()) {
    report.failures.push_back(s.ToString());
  }

  // Versioned plan generation.
  auto plans = plan::VersionedPlanSet::Generate(candidate.plan,
                                                oldest_supported_version);
  if (!plans.ok()) {
    report.failures.push_back("versioning failed: " +
                              plans.status().ToString());
    return report;
  }

  // Gates 2 + 4: bundled tests must pass on every claimed runtime version,
  // against the exact plan that version would be served.
  if (!candidate.proxy_data.empty()) {
    for (const auto& [version, versioned_plan] : plans->plans()) {
      auto ctx = RunOnce(versioned_plan, candidate.init_params,
                         candidate.proxy_data, version, rng);
      if (!ctx.ok()) {
        report.failures.push_back("release test run failed on runtime v" +
                                  std::to_string(version) + ": " +
                                  ctx.status().ToString());
        continue;
      }
      report.loss_by_version[version] = ctx->loss_after;
      for (std::size_t i = 0; i < candidate.tests.size(); ++i) {
        if (const Status s = candidate.tests[i](*ctx); !s.ok()) {
          report.failures.push_back(
              "test predicate #" + std::to_string(i) + " failed on v" +
              std::to_string(version) + ": " + s.ToString());
        }
      }
    }
    // Semantic equivalence across versions: losses must agree closely
    // (lowered ops are approximations; release tests bound the drift).
    if (report.loss_by_version.size() > 1) {
      const double base = report.loss_by_version.begin()->second;
      for (const auto& [version, loss] : report.loss_by_version) {
        if (std::fabs(loss - base) >
            0.05 * std::max(1.0, std::fabs(base))) {
          report.failures.push_back(
              "versioned plan v" + std::to_string(version) +
              " diverges from baseline loss (" + std::to_string(loss) +
              " vs " + std::to_string(base) + ")");
        }
      }
    }
  }

  report.accepted = report.failures.empty();
  if (report.accepted) {
    report.versioned_plans = std::move(plans).value();
  }
  return report;
}

TestPredicate LossDecreases() {
  return [](const TestRunContext& ctx) -> Status {
    if (ctx.loss_after < ctx.loss_before) return Status::Ok();
    return FailedPreconditionError(
        "loss did not decrease: " + std::to_string(ctx.loss_before) + " -> " +
        std::to_string(ctx.loss_after));
  };
}

TestPredicate LossFinite() {
  return [](const TestRunContext& ctx) -> Status {
    if (std::isfinite(ctx.loss_after) && std::isfinite(ctx.loss_before)) {
      return Status::Ok();
    }
    return FailedPreconditionError("non-finite loss");
  };
}

TestPredicate AccuracyAtLeast(double min_accuracy) {
  return [min_accuracy](const TestRunContext& ctx) -> Status {
    if (ctx.accuracy_after >= min_accuracy) return Status::Ok();
    return FailedPreconditionError(
        "accuracy " + std::to_string(ctx.accuracy_after) + " below " +
        std::to_string(min_accuracy));
  };
}

}  // namespace fl::tools
