#include "src/tools/log_analyzer.h"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/analytics/dashboard.h"

namespace fl::tools {
namespace {

using analytics::JournalEventKind;
using analytics::JournalRecord;
using analytics::JournalSource;
using analytics::SessionEvent;

// Legal device session state machine (Table 1 glyph adjacency). '-' opens
// every session; '*' may follow any live state (device-side failure), '!'
// any assigned state (the agent only interrupts after 'v' marks
// assignment); '^', '#', '!', '*' are terminal.
bool LegalTransition(SessionEvent from, SessionEvent to) {
  switch (from) {
    case SessionEvent::kCheckin:
      return to == SessionEvent::kDownloadedPlan || to == SessionEvent::kError;
    case SessionEvent::kDownloadedPlan:
      return to == SessionEvent::kTrainingStarted ||
             to == SessionEvent::kInterrupted || to == SessionEvent::kError;
    case SessionEvent::kTrainingStarted:
      return to == SessionEvent::kTrainingCompleted ||
             to == SessionEvent::kInterrupted || to == SessionEvent::kError;
    case SessionEvent::kTrainingCompleted:
      return to == SessionEvent::kUploadStarted ||
             to == SessionEvent::kInterrupted || to == SessionEvent::kError;
    case SessionEvent::kUploadStarted:
      return to == SessionEvent::kUploadCompleted ||
             to == SessionEvent::kUploadRejected ||
             to == SessionEvent::kInterrupted || to == SessionEvent::kError;
    case SessionEvent::kUploadCompleted:
    case SessionEvent::kUploadRejected:
    case SessionEvent::kInterrupted:
    case SessionEvent::kError:
      return false;  // terminal
  }
  return false;
}

// selection -> configuration -> reporting -> closing.
int PhaseIndex(std::string_view name) {
  if (name == "selection") return 0;
  if (name == "configuration") return 1;
  if (name == "reporting") return 2;
  if (name == "closing") return 3;
  return -1;
}

struct SessionState {
  DeviceId device;
  std::vector<SessionEvent> events;
  SimTime last_time;
  std::size_t last_line = 0;
  bool report_accepted = false;  // server-side cross-join flag
  bool closed = false;           // session_end seen
};

struct RoundState {
  RoundTimeline timeline;
  int last_phase_index = -1;
  bool has_closing = false;
  SimTime closing_at;
  SimTime last_time;
  std::size_t last_line = 0;
};

class Analyzer {
 public:
  AnalysisReport Run(std::string_view text) {
    std::size_t line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      std::string_view line =
          text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                         : eol - pos);
      ++line_no;
      if (!line.empty() && line.front() != '#') {
        ++report_.lines;
        auto rec = JournalRecord::Parse(line);
        if (!rec.ok()) {
          ++report_.parse_errors;
          report_.violations.push_back(InvariantViolation{
              "parse-error", line_no, DeviceId{}, SessionId{}, RoundId{},
              rec.status().ToString()});
        } else {
          ++report_.records;
          Ingest(line_no, *rec);
        }
      }
      if (eol == std::string_view::npos) break;
      pos = eol + 1;
    }
    Finish();
    return std::move(report_);
  }

 private:
  void Violate(std::string rule, std::size_t line, const JournalRecord& rec,
               std::string message) {
    report_.violations.push_back(InvariantViolation{
        std::move(rule), line, rec.device, rec.session, rec.round,
        std::move(message)});
  }

  RoundState* FindRound(RoundId round) {
    const auto it = round_index_.find(round);
    return it == round_index_.end() ? nullptr : &rounds_[it->second];
  }

  // Per-round server events must arrive in sim-time order; a regression
  // means records were reordered after the fact.
  RoundState* TouchRound(std::size_t line, const JournalRecord& rec) {
    RoundState* round = FindRound(rec.round);
    if (round == nullptr) {
      Violate("unknown-round", line, rec,
              "event references a round with no round_open");
      return nullptr;
    }
    if (round->last_line != 0 && rec.sim_time < round->last_time) {
      Violate("out-of-order", line, rec,
              "round event precedes line " +
                  std::to_string(round->last_line) + " in sim time");
    }
    round->last_time = rec.sim_time;
    round->last_line = line;
    round->timeline.last_event_at = rec.sim_time;
    return round;
  }

  void Ingest(std::size_t line, const JournalRecord& rec) {
    SessionEvent se;
    if (analytics::SessionEventForJournal(rec.event, &se)) {
      IngestDeviceEvent(line, rec, se);
      return;
    }
    switch (rec.event) {
      case JournalEventKind::kSessionEnd: {
        SessionState& st = sessions_[rec.session];
        st.closed = true;
        ++report_.sessions_closed;
        // The tally mirrors FleetStats::OnSessionTrace: only sessions with
        // at least two events enter the Table 1 distribution.
        if (st.events.size() >= 2) {
          analytics::SessionTrace trace;
          trace.session = rec.session;
          trace.device = st.device;
          trace.events = st.events;
          report_.tally.Record(trace);
        }
        break;
      }
      case JournalEventKind::kRoundOpen: {
        RoundState state;
        state.timeline.round = rec.round;
        state.timeline.opened_at = rec.sim_time;
        state.timeline.last_event_at = rec.sim_time;
        state.timeline.goal = static_cast<std::size_t>(
            analytics::DetailInt(rec.detail, "goal", 0));
        state.timeline.min_report = static_cast<std::size_t>(
            analytics::DetailInt(rec.detail, "min_report", 0));
        state.last_time = rec.sim_time;
        state.last_line = line;
        round_index_[rec.round] = rounds_.size();
        rounds_.push_back(std::move(state));
        break;
      }
      case JournalEventKind::kPhase: {
        RoundState* round = TouchRound(line, rec);
        if (round == nullptr) break;
        std::string phase;
        analytics::DetailField(rec.detail, "phase", &phase);
        const int idx = PhaseIndex(phase);
        if (idx <= round->last_phase_index) {
          Violate("phase-order", line, rec,
                  "phase '" + phase + "' out of order (after " +
                      (round->timeline.phases.empty()
                           ? std::string("<none>")
                           : round->timeline.phases.back().name) +
                      ")");
        }
        round->last_phase_index = idx;
        round->timeline.phases.push_back(
            RoundTimeline::PhaseSpan{phase, rec.sim_time, Duration{}});
        if (phase == "closing") {
          round->has_closing = true;
          round->closing_at = rec.sim_time;
        }
        break;
      }
      case JournalEventKind::kReportAccepted: {
        RoundState* round = TouchRound(line, rec);
        sessions_[rec.session].report_accepted = true;
        if (round == nullptr) break;
        ++round->timeline.reports_accepted;
        round->timeline.accepted_wire_bytes = static_cast<std::uint64_t>(
            analytics::DetailInt(rec.detail, "wire_bytes", 0)) +
            round->timeline.accepted_wire_bytes;
        // Plaintext accepts must land inside the reporting window; secagg
        // commits are exempt (phases 2/3 legitimately outlive the flush).
        std::string mode;
        analytics::DetailField(rec.detail, "mode", &mode);
        if (round->has_closing && rec.sim_time > round->closing_at &&
            mode != "secagg") {
          Violate("accept-after-close", line, rec,
                  "report accepted after the round's closing phase");
        }
        break;
      }
      case JournalEventKind::kReportRejected: {
        RoundState* round = TouchRound(line, rec);
        if (round == nullptr) break;
        ++round->timeline.reports_rejected;
        std::string reason;
        analytics::DetailField(rec.detail, "reason", &reason);
        if (reason == "late") ++round->timeline.stragglers;
        break;
      }
      case JournalEventKind::kCheckinAccepted:
        break;  // selector-side; no round yet
      case JournalEventKind::kCheckinRejected: {
        // Selector rejections carry no round; master/aggregator ones do.
        if (rec.round.value == 0) break;
        RoundState* round = TouchRound(line, rec);
        if (round != nullptr) ++round->timeline.checkins_rejected;
        break;
      }
      case JournalEventKind::kRoundCommit: {
        RoundState* round = TouchRound(line, rec);
        if (round == nullptr) break;
        round->timeline.committed = true;
        round->timeline.contributors = static_cast<std::size_t>(
            analytics::DetailInt(rec.detail, "contributors", 0));
        const auto min_report = static_cast<std::size_t>(analytics::DetailInt(
            rec.detail, "min_report",
            static_cast<std::int64_t>(round->timeline.min_report)));
        if (round->timeline.contributors < min_report) {
          Violate("commit-below-goal", line, rec,
                  "committed with " +
                      std::to_string(round->timeline.contributors) +
                      " contributors; needs " + std::to_string(min_report));
        }
        analytics::DetailField(rec.detail, "codec", &round->timeline.codec);
        std::string wire;
        if (analytics::DetailField(rec.detail, "wire_bytes", &wire)) {
          round->timeline.has_commit_wire_bytes = true;
          round->timeline.commit_wire_bytes = static_cast<std::uint64_t>(
              analytics::DetailInt(rec.detail, "wire_bytes", 0));
          // Commit accounting must equal the sum of journaled accepts: the
          // aggregators ship cumulative accepted bytes with every progress
          // message, so even a crashed cohort's accepts stay counted.
          if (round->timeline.commit_wire_bytes !=
              round->timeline.accepted_wire_bytes) {
            Violate("wire-bytes-mismatch", line, rec,
                    "commit wire_bytes=" +
                        std::to_string(round->timeline.commit_wire_bytes) +
                        " but journaled accepts sum to " +
                        std::to_string(round->timeline.accepted_wire_bytes));
          }
        }
        break;
      }
      case JournalEventKind::kRoundAbandoned: {
        RoundState* round = TouchRound(line, rec);
        if (round == nullptr) break;
        std::string outcome;
        analytics::DetailField(rec.detail, "outcome", &outcome);
        round->timeline.outcome = outcome;
        std::string reason;
        if (analytics::DetailField(rec.detail, "reason", &reason)) {
          // The reason value runs to the next space; keep the free-form tail.
          const std::size_t at = rec.detail.find("reason=");
          round->timeline.abort_reason = rec.detail.substr(at + 7);
        }
        break;
      }
      case JournalEventKind::kRoundOutcome: {
        RoundState* round = TouchRound(line, rec);
        if (round == nullptr) break;
        std::string outcome;
        analytics::DetailField(rec.detail, "outcome", &outcome);
        round->timeline.outcome = outcome;
        std::string reason;
        if (round->timeline.abort_reason.empty() &&
            analytics::DetailField(rec.detail, "reason", &reason)) {
          round->timeline.abort_reason = reason;
        }
        break;
      }
      case JournalEventKind::kSimRoundStart:
      case JournalEventKind::kSimRoundComplete:
        break;  // modeling-sim markers; no protocol invariants
      default:
        break;
    }
  }

  void IngestDeviceEvent(std::size_t line, const JournalRecord& rec,
                         SessionEvent se) {
    SessionState& st = sessions_[rec.session];
    st.device = rec.device;
    if (st.last_line != 0 && rec.sim_time < st.last_time) {
      Violate("out-of-order", line, rec,
              "session event precedes line " + std::to_string(st.last_line) +
                  " in sim time");
    }
    st.last_time = rec.sim_time;
    st.last_line = line;
    if (st.closed) {
      Violate("device-transition", line, rec,
              std::string("'") + analytics::SessionEventGlyph(se) +
                  "' after session_end");
    } else if (st.events.empty()) {
      if (se != SessionEvent::kCheckin) {
        Violate("device-transition", line, rec,
                std::string("session opens with '") +
                    analytics::SessionEventGlyph(se) + "' instead of '-'");
      }
    } else if (!LegalTransition(st.events.back(), se)) {
      Violate("device-transition", line, rec,
              std::string("illegal '") +
                  analytics::SessionEventGlyph(st.events.back()) + "' -> '" +
                  analytics::SessionEventGlyph(se) + "'");
    }
    if (se == SessionEvent::kUploadCompleted && !st.report_accepted) {
      // Cross-join with the server log: a device-side '^' must have a
      // matching aggregator report_accepted earlier in the journal.
      Violate("orphan-upload", line, rec,
              "upload_complete with no server report_accepted");
    }
    st.events.push_back(se);
  }

  void Finish() {
    for (const auto& [session, st] : sessions_) {
      if (!st.closed && !st.events.empty()) ++report_.sessions_open;
    }
    report_.rounds.reserve(rounds_.size());
    for (RoundState& round : rounds_) {
      // Phase durations: to the next phase, or to the round's last event.
      auto& phases = round.timeline.phases;
      for (std::size_t i = 0; i < phases.size(); ++i) {
        const SimTime end = i + 1 < phases.size()
                                ? phases[i + 1].entered_at
                                : round.timeline.last_event_at;
        phases[i].duration = end - phases[i].entered_at;
      }
      report_.rounds.push_back(std::move(round.timeline));
    }
  }

  AnalysisReport report_;
  std::map<SessionId, SessionState> sessions_;
  std::vector<RoundState> rounds_;
  std::map<RoundId, std::size_t> round_index_;
};

}  // namespace

AnalysisReport AnalyzeJournal(std::string_view text) {
  return Analyzer().Run(text);
}

namespace {

// A diagnostic-bundle directory stands in for its flight-recorder dump, so
// `fl_analyze <bundle-dir>` works the same as `fl_analyze <journal>`.
std::string ResolveJournalPath(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode)) {
    return path + "/flight_recorder.log";
  }
  return path;
}

}  // namespace

Result<AnalysisReport> AnalyzeJournalFile(const std::string& path) {
  const std::string resolved = ResolveJournalPath(path);
  std::ifstream in(resolved, std::ios::binary);
  if (!in) {
    return UnavailableError("cannot open journal: " + resolved);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return AnalyzeJournal(buf.str());
}

Result<CriticalPathReport> AnalyzeCriticalPathFile(const std::string& path,
                                                   RoundId round) {
  const std::string resolved = ResolveJournalPath(path);
  std::ifstream in(resolved, std::ios::binary);
  if (!in) {
    return UnavailableError("cannot open journal: " + resolved);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return AnalyzeCriticalPath(buf.str(), round);
}

namespace {

// Per-session scratch while walking one round's device records.
struct DeviceBuild {
  CriticalPathReport::DeviceLatency d;
  SimTime train_start_at{};
  SimTime upload_start_at{};
  bool interrupted = false;
  bool error = false;
  bool rejected_late = false;
};

}  // namespace

CriticalPathReport AnalyzeCriticalPath(std::string_view text, RoundId round) {
  // Parse every record up front and re-sort by sim time: flight-recorder
  // dumps interleave per-thread rings in capture order, not event order.
  std::vector<JournalRecord> records;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    if (!line.empty() && line.front() != '#') {
      auto rec = JournalRecord::Parse(line);
      if (rec.ok()) records.push_back(std::move(*rec));
    }
    if (eol == std::string_view::npos) break;
    pos = eol + 1;
  }
  std::stable_sort(records.begin(), records.end(),
                   [](const JournalRecord& a, const JournalRecord& b) {
                     return a.sim_time < b.sim_time;
                   });

  CriticalPathReport rep;
  rep.round = round;
  std::map<SessionId, DeviceBuild> devices;
  std::vector<SimTime> accept_times;
  SimTime opened_at{};
  SimTime last_event_at{};
  bool has_reporting_at = false;
  bool ended = false;

  for (const JournalRecord& rec : records) {
    if (rec.round != round) continue;
    last_event_at = rec.sim_time;
    SessionEvent se;
    if (analytics::SessionEventForJournal(rec.event, &se)) {
      DeviceBuild& b = devices[rec.session];
      b.d.session = rec.session;
      b.d.device = rec.device;
      switch (se) {
        case SessionEvent::kDownloadedPlan:
          b.d.configured_at = rec.sim_time;
          break;
        case SessionEvent::kTrainingStarted:
          b.d.train_started = true;
          b.train_start_at = rec.sim_time;
          break;
        case SessionEvent::kTrainingCompleted:
          b.d.trained = true;
          b.d.train_duration = rec.sim_time - b.train_start_at;
          break;
        case SessionEvent::kUploadStarted:
          b.upload_start_at = rec.sim_time;
          break;
        case SessionEvent::kUploadCompleted:
          b.d.uploaded = true;
          b.d.upload_duration = rec.sim_time - b.upload_start_at;
          break;
        case SessionEvent::kUploadRejected:
          b.rejected_late = true;
          break;
        case SessionEvent::kInterrupted:
          b.interrupted = true;
          break;
        case SessionEvent::kError:
          b.error = true;
          break;
        case SessionEvent::kCheckin:
          break;  // pre-assignment; carries no round in practice
      }
      continue;
    }
    switch (rec.event) {
      case JournalEventKind::kRoundOpen:
        rep.found = true;
        opened_at = rec.sim_time;
        rep.goal = static_cast<std::size_t>(
            analytics::DetailInt(rec.detail, "goal", 0));
        rep.min_report = static_cast<std::size_t>(
            analytics::DetailInt(rec.detail, "min_report", 0));
        break;
      case JournalEventKind::kPhase: {
        std::string phase;
        analytics::DetailField(rec.detail, "phase", &phase);
        rep.phases.push_back(
            RoundTimeline::PhaseSpan{phase, rec.sim_time, Duration{}});
        if (phase == "reporting") {
          rep.reporting_at = rec.sim_time;
          has_reporting_at = true;
        }
        break;
      }
      case JournalEventKind::kReportAccepted: {
        DeviceBuild& b = devices[rec.session];
        b.d.session = rec.session;
        if (b.d.device.value == 0) b.d.device = rec.device;
        b.d.accepted = true;
        b.d.accepted_at = rec.sim_time;
        accept_times.push_back(rec.sim_time);
        break;
      }
      case JournalEventKind::kReportRejected: {
        std::string reason;
        analytics::DetailField(rec.detail, "reason", &reason);
        if (reason == "late") {
          DeviceBuild& b = devices[rec.session];
          b.d.session = rec.session;
          if (b.d.device.value == 0) b.d.device = rec.device;
          b.rejected_late = true;
        }
        break;
      }
      case JournalEventKind::kRoundCommit:
        if (rep.outcome.empty()) rep.outcome = "committed";
        rep.round_end_at = rec.sim_time;
        ended = true;
        break;
      case JournalEventKind::kRoundAbandoned: {
        std::string outcome;
        if (analytics::DetailField(rec.detail, "outcome", &outcome)) {
          rep.outcome = outcome;
        }
        const std::size_t at = rec.detail.find("reason=");
        if (at != std::string::npos) {
          rep.abort_reason = rec.detail.substr(at + 7);
        }
        rep.round_end_at = rec.sim_time;
        ended = true;
        break;
      }
      case JournalEventKind::kRoundOutcome: {
        std::string outcome;
        if (analytics::DetailField(rec.detail, "outcome", &outcome)) {
          rep.outcome = outcome;
        }
        std::string reason;
        if (rep.abort_reason.empty() &&
            analytics::DetailField(rec.detail, "reason", &reason) &&
            reason != "none") {
          rep.abort_reason = reason;
        }
        rep.round_end_at = rec.sim_time;
        ended = true;
        break;
      }
      default:
        break;
    }
  }

  if (!ended) rep.round_end_at = last_event_at;
  if (!has_reporting_at) rep.reporting_at = opened_at;

  // Phase durations: to the next phase, or to the round's end.
  for (std::size_t i = 0; i < rep.phases.size(); ++i) {
    const SimTime end = i + 1 < rep.phases.size()
                            ? rep.phases[i + 1].entered_at
                            : rep.round_end_at;
    rep.phases[i].duration = end - rep.phases[i].entered_at;
    if (rep.phases[i].duration >= rep.bounding_duration) {
      rep.bounding_phase = rep.phases[i].name;
      rep.bounding_duration = rep.phases[i].duration;
    }
  }

  rep.accepts = accept_times.size();
  if (!accept_times.empty()) {
    rep.first_accept_at = accept_times.front();
    rep.last_accept_at = accept_times.back();
    // The accept that satisfied the goal count; with fewer accepts than
    // min_report (an abandoned round), the wait ran to the last one seen.
    const std::size_t goal_index =
        rep.min_report == 0 ? accept_times.size()
                            : std::min(rep.min_report, accept_times.size());
    rep.goal_accept_at = accept_times[goal_index - 1];
    rep.goal_wait = rep.goal_accept_at - rep.reporting_at;
    rep.aggregation_wait = rep.round_end_at - rep.last_accept_at;
  }

  for (auto& [session, b] : devices) {
    if (b.d.accepted) {
      b.d.fate = "completed";
    } else if (b.rejected_late) {
      b.d.fate = "rejected_late";
    } else if (b.error) {
      b.d.fate = "error";
    } else if (b.interrupted) {
      b.d.fate = "interrupted";
    } else {
      b.d.fate = "silent";
    }
    if (b.d.fate != "completed") ++rep.stragglers;
    if (b.d.accepted &&
        (!rep.has_critical_device ||
         b.d.accepted_at > rep.critical_device.accepted_at)) {
      rep.has_critical_device = true;
      rep.critical_device = b.d;
    }
    rep.devices.push_back(std::move(b.d));
  }
  return rep;
}

std::string RenderCriticalPath(const CriticalPathReport& report) {
  std::ostringstream out;
  out << "Critical path for round " << report.round.value << ":\n";
  if (!report.found) {
    out << "  round not found (no round_open record)\n";
    if (report.devices.empty() && report.accepts == 0) return out.str();
    out << "  (partial view: ring buffers may have wrapped past the open)\n";
  }
  out << "  outcome: " << (report.outcome.empty() ? "open" : report.outcome);
  if (!report.abort_reason.empty()) {
    out << "  reason: " << report.abort_reason;
  }
  out << "\n  goal=" << report.goal << " min_report=" << report.min_report
      << " accepts=" << report.accepts << '\n';
  for (const auto& phase : report.phases) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "    %-14s %s  +%.1fs\n",
                  phase.name.c_str(),
                  FormatSimTime(phase.entered_at).c_str(),
                  phase.duration.Seconds());
    out << buf;
  }
  if (!report.bounding_phase.empty()) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "  bounding phase: %s (+%.1fs)\n",
                  report.bounding_phase.c_str(),
                  report.bounding_duration.Seconds());
    out << buf;
  }
  if (report.accepts > 0) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  reporting window: goal wait +%.1fs (accept %zu at %s), "
                  "aggregation wait +%.1fs\n",
                  report.goal_wait.Seconds(),
                  std::min(report.min_report == 0 ? report.accepts
                                                  : report.min_report,
                           report.accepts),
                  FormatSimTime(report.goal_accept_at).c_str(),
                  report.aggregation_wait.Seconds());
    out << buf;
  }
  out << "  devices: " << report.devices.size() << " configured, "
      << report.stragglers << " straggler(s)\n";
  for (const auto& d : report.devices) {
    out << "    device " << d.device.value << " session " << d.session.value
        << ": " << d.fate;
    if (d.trained) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "  train +%.1fs",
                    d.train_duration.Seconds());
      out << buf;
    } else if (d.train_started) {
      out << "  train started, never finished";
    }
    if (d.uploaded) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "  upload +%.1fs",
                    d.upload_duration.Seconds());
      out << buf;
    }
    if (d.accepted) {
      out << "  accepted " << FormatSimTime(d.accepted_at);
    }
    out << '\n';
  }
  if (report.has_critical_device) {
    out << "  critical device: " << report.critical_device.device.value
        << " (last accepted report, "
        << FormatSimTime(report.critical_device.accepted_at) << ")\n";
  } else if (report.stragglers > 0) {
    out << "  no accepted report bounded the round; see stragglers above\n";
  }
  return out.str();
}

std::string RenderRoundTimelines(const AnalysisReport& report) {
  std::ostringstream out;
  out << "Rounds (" << report.rounds.size() << "):\n";
  for (const RoundTimeline& round : report.rounds) {
    out << "  round " << round.round.value << " opened "
        << FormatSimTime(round.opened_at);
    if (!round.outcome.empty()) out << "  outcome=" << round.outcome;
    if (round.committed) out << "  contributors=" << round.contributors;
    if (round.goal != 0) out << "  goal=" << round.goal;
    out << '\n';
    for (const auto& phase : round.phases) {
      char buf[96];
      std::snprintf(buf, sizeof(buf), "    %-14s %s  +%.1fs\n",
                    phase.name.c_str(),
                    FormatSimTime(phase.entered_at).c_str(),
                    phase.duration.Seconds());
      out << buf;
    }
    out << "    reports: " << round.reports_accepted << " accepted, "
        << round.reports_rejected << " rejected (" << round.stragglers
        << " stragglers); checkins rejected: " << round.checkins_rejected
        << '\n';
    if (round.accepted_wire_bytes != 0 || round.has_commit_wire_bytes) {
      out << "    traffic: " << round.accepted_wire_bytes
          << " upload bytes accepted";
      if (round.reports_accepted != 0) {
        out << " (" << round.accepted_wire_bytes / round.reports_accepted
            << " B/device)";
      }
      if (!round.codec.empty()) out << "  codec=" << round.codec;
      out << '\n';
    }
    if (!round.abort_reason.empty()) {
      out << "    abort: " << round.abort_reason << '\n';
    }
  }
  return out.str();
}

std::string RenderShapeTable(const AnalysisReport& report,
                             std::size_t max_rows) {
  return analytics::RenderSessionShapeTable(report.tally, max_rows);
}

std::string RenderViolations(const AnalysisReport& report) {
  std::ostringstream out;
  if (report.violations.empty()) {
    out << "No invariant violations.\n";
    return out.str();
  }
  out << report.violations.size() << " invariant violation(s):\n";
  for (const InvariantViolation& v : report.violations) {
    out << "  line " << v.line << " [" << v.rule << "]";
    if (v.device.value != 0) out << " device=" << v.device.value;
    if (v.session.value != 0) out << " session=" << v.session.value;
    if (v.round.value != 0) out << " round=" << v.round.value;
    out << ": " << v.message << '\n';
  }
  return out.str();
}

std::string RenderAnalysisReport(const AnalysisReport& report) {
  std::ostringstream out;
  out << "Journal: " << report.records << " records on " << report.lines
      << " lines (" << report.parse_errors << " parse errors), "
      << report.sessions_closed << " sessions closed, "
      << report.sessions_open << " still open.\n\n";
  out << RenderRoundTimelines(report) << '\n';
  out << "Session shapes (Table 1):\n"
      << RenderShapeTable(report) << '\n';
  out << RenderViolations(report);
  return out.str();
}

}  // namespace fl::tools
