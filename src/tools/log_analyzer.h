// Offline journal analysis (Sec. 5): replays a durable event journal
// (src/analytics/journal.h) written by a previous run and rebuilds, without
// the process that produced it,
//   (a) per-round timelines with per-phase durations and straggler/abort
//       attribution,
//   (b) the Table 1 session-shape distribution (bit-identical to the
//       in-process FleetStats tally), and
//   (c) a state-machine invariant report: device-side event sequences are
//       checked against the legal session state machine and cross-joined
//       with server-side accept/commit events, so dropped, reordered, or
//       contradictory records surface as named violations ("deviations from
//       the expected state sequences", Sec. 5).
// The fl_analyze CLI is a thin shell over this library.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/analytics/events.h"
#include "src/analytics/journal.h"
#include "src/common/status.h"

namespace fl::tools {

// One invariant breach, anchored to the 1-based journal line it was
// detected on.
struct InvariantViolation {
  std::string rule;  // "device-transition", "orphan-upload", ...
  std::size_t line = 0;
  DeviceId device;
  SessionId session;
  RoundId round;
  std::string message;
};

// One server round reconstructed from master/coordinator events.
struct RoundTimeline {
  RoundId round;
  SimTime opened_at;
  // Phases in journal order (selection, configuration, reporting, closing).
  struct PhaseSpan {
    std::string name;
    SimTime entered_at;
    Duration duration;  // to the next phase (or last event of the round)
  };
  std::vector<PhaseSpan> phases;
  SimTime last_event_at;
  std::size_t goal = 0;
  std::size_t min_report = 0;
  std::size_t reports_accepted = 0;
  std::size_t reports_rejected = 0;  // all reasons
  std::size_t stragglers = 0;        // report_rejected reason=late ('#')
  std::size_t checkins_rejected = 0; // master-side "round full"/abandon
  bool committed = false;
  std::size_t contributors = 0;
  std::string outcome;  // coordinator verdict ("committed", "failed", ...)
  std::string abort_reason;  // round_abandoned / failure attribution
  // Traffic attribution: per-accept wire_bytes summed from the aggregator
  // records, plus the total the master journaled at commit (they must
  // match — the "wire-bytes-mismatch" invariant).
  std::uint64_t accepted_wire_bytes = 0;
  bool has_commit_wire_bytes = false;
  std::uint64_t commit_wire_bytes = 0;
  std::string codec;  // round codec name from the commit record
};

struct AnalysisReport {
  std::size_t lines = 0;          // non-comment journal lines seen
  std::size_t records = 0;        // successfully parsed records
  std::size_t parse_errors = 0;
  std::size_t sessions_closed = 0;  // session_end seen
  std::size_t sessions_open = 0;    // trailing sessions without session_end
  // Table 1 distribution over closed sessions with >= 2 events — the same
  // rule FleetStats::OnSessionTrace applies, so a journal replay of a run
  // reproduces the in-process tally exactly.
  analytics::SessionShapeTally tally;
  std::vector<RoundTimeline> rounds;
  std::vector<InvariantViolation> violations;
};

// Analyzes journal text (header + one record per line). Unparseable lines
// are counted, reported as "parse-error" violations, and skipped.
AnalysisReport AnalyzeJournal(std::string_view text);

// Reads `path` and analyzes it. Fails only on I/O errors. When `path` is a
// diagnostic-bundle directory, reads its flight_recorder.log.
Result<AnalysisReport> AnalyzeJournalFile(const std::string& path);

// --------------------------------------------------------------------------
// Critical-path attribution: what bounded one round's latency?
//
// Reconstructed from the same journal text (a real journal or a flight-
// recorder dump): phase spans say which window dominated; within reporting,
// the goal wait (reporting start -> the accept that satisfied min_report)
// is separated from the aggregation wait (last accept -> round end); and
// every configured device is classified by fate, so the straggler that
// stalled an abandoned round is named, not inferred.
// --------------------------------------------------------------------------

struct CriticalPathReport {
  RoundId round;
  bool found = false;    // round_open for `round` was seen
  std::string outcome;   // "", "committed", "abandoned_reporting", ...
  std::string abort_reason;

  // Phase spans (journal order) and the dominating one.
  std::vector<RoundTimeline::PhaseSpan> phases;
  std::string bounding_phase;
  Duration bounding_duration{};

  std::size_t goal = 0;
  std::size_t min_report = 0;
  std::size_t accepts = 0;

  // Reporting-window decomposition (meaningful when accepts > 0).
  SimTime reporting_at{};    // phase=reporting entry (opened_at fallback)
  SimTime first_accept_at{};
  SimTime goal_accept_at{};  // the min_report-th accept (last when fewer)
  SimTime last_accept_at{};
  SimTime round_end_at{};    // commit/abandon/outcome (last event fallback)
  Duration goal_wait{};         // reporting_at -> goal_accept_at
  Duration aggregation_wait{};  // last_accept_at -> round_end_at

  // One configured participant of the round.
  struct DeviceLatency {
    DeviceId device;
    SessionId session;
    SimTime configured_at{};  // plan_downloaded ('v')
    bool train_started = false;
    bool trained = false;     // train_complete seen
    Duration train_duration{};
    bool uploaded = false;    // upload_complete seen
    Duration upload_duration{};
    bool accepted = false;
    SimTime accepted_at{};
    // "completed", "rejected_late", "interrupted", "error", "silent"
    // (configured but no terminal event inside the round — the classic
    // straggler the reporting window waits out).
    std::string fate;
  };
  std::vector<DeviceLatency> devices;  // configured participants, by device
  std::size_t stragglers = 0;          // fate != "completed"

  // The accepted contributor whose report arrived last: with a goal-count
  // window, that arrival IS the round's latency frontier.
  bool has_critical_device = false;
  DeviceLatency critical_device;
};

// Second-pass targeted analysis of one round. `text` is the same journal
// text AnalyzeJournal takes; records are re-sorted by sim time first, so
// unordered flight-recorder dumps analyze identically to real journals.
CriticalPathReport AnalyzeCriticalPath(std::string_view text, RoundId round);

// File/bundle-dir variant, mirroring AnalyzeJournalFile's path resolution.
Result<CriticalPathReport> AnalyzeCriticalPathFile(const std::string& path,
                                                   RoundId round);

// Human-readable rendering for `fl_analyze --critical-path`.
std::string RenderCriticalPath(const CriticalPathReport& report);

// Renderers for the CLI: per-round timelines, the Table 1 shape table, and
// the violation list. RenderAnalysisReport stitches all three together.
std::string RenderRoundTimelines(const AnalysisReport& report);
std::string RenderShapeTable(const AnalysisReport& report,
                             std::size_t max_rows = 10);
std::string RenderViolations(const AnalysisReport& report);
std::string RenderAnalysisReport(const AnalysisReport& report);

}  // namespace fl::tools
