// Versioning, testing, and deployment gate (Sec. 7.3):
//
// "An FL task that has been translated into an FL plan is not accepted by
// the server for deployment unless certain conditions are met. First, it
// must have been built from auditable, peer reviewed code. Second, it must
// have bundled test predicates for each FL task that pass in simulation.
// Third, the resources consumed during testing must be within a safe range
// of expected resources for the target population. And finally, the FL task
// tests must pass on every version of the TensorFlow runtime that the FL
// task claims to support."
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/data/example.h"
#include "src/fedavg/client_update.h"
#include "src/plan/resources.h"
#include "src/plan/versioning.h"

namespace fl::tools {

// What a bundled test predicate gets to inspect: the result of running the
// plan once, in simulation, on the engineer's proxy data.
struct TestRunContext {
  std::uint32_t runtime_version = 0;
  double loss_before = 0;
  double loss_after = 0;
  double accuracy_after = 0;
  std::size_t examples = 0;
};

using TestPredicate = std::function<Status(const TestRunContext&)>;

// A candidate deployment: plan + initial model + tests + proxy data.
struct DeploymentCandidate {
  plan::FLPlan plan;
  Checkpoint init_params;
  std::vector<data::Example> proxy_data;  // Sec. 7.1: proxy, never user data
  std::vector<TestPredicate> tests;
  bool code_reviewed = false;
  plan::ResourceLimits limits;
};

struct DeploymentReport {
  bool accepted = false;
  std::vector<std::string> failures;
  plan::ResourceEstimate resources;
  // Per-runtime-version losses from the release test runs (equal plans must
  // behave equivalently: "versioned and unversioned plans must pass the
  // same release tests").
  std::map<std::uint32_t, double> loss_by_version;
  plan::VersionedPlanSet versioned_plans;  // only valid when accepted
};

// Runs the full gate; on success the returned report carries the versioned
// plan set ready to serve.
DeploymentReport RunDeploymentGate(const DeploymentCandidate& candidate,
                                   std::uint32_t oldest_supported_version,
                                   Rng& rng);

// Canonical predicates engineers attach.
TestPredicate LossDecreases();
TestPredicate LossFinite();
TestPredicate AccuracyAtLeast(double min_accuracy);

}  // namespace fl::tools
