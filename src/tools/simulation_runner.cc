#include "src/tools/simulation_runner.h"

#include <algorithm>

namespace fl::tools {

Result<SimulationResult> RunFedAvgSimulation(
    const plan::FLPlan& plan, const Checkpoint& init,
    const std::vector<std::vector<data::Example>>& client_data,
    std::span<const data::Example> eval_data,
    const SimulationConfig& config) {
  if (client_data.empty()) {
    return InvalidArgumentError("no client data");
  }
  Rng rng(config.seed);
  SimulationResult result;
  Checkpoint global = init;
  const std::uint32_t runtime = plan.min_runtime_version;

  for (std::size_t round = 1; round <= config.rounds; ++round) {
    fedavg::FedAvgAccumulator acc(plan.server.aggregation, global);
    // Select 1.3K, keep the first K survivors (Algorithm 1's header).
    const std::size_t want = config.clients_per_round;
    std::size_t got = 0;
    double train_loss = 0;
    for (std::size_t attempts = 0;
         got < want && attempts < want * 4; ++attempts) {
      const std::size_t c = rng.UniformInt(client_data.size());
      if (client_data[c].empty()) continue;
      if (rng.Bernoulli(config.client_failure_rate)) continue;  // drop-out
      Rng shuffle = rng.Fork();
      auto update = fedavg::RunClientUpdate(plan.device, global,
                                            client_data[c], runtime, shuffle);
      if (!update.ok()) continue;
      train_loss += update->metrics.mean_loss;
      FL_RETURN_IF_ERROR(acc.Accumulate(std::move(update->weighted_delta),
                                        update->weight, update->metrics));
      ++got;
    }
    if (got == 0) {
      return AbortedError("round " + std::to_string(round) +
                          ": no client produced an update");
    }
    FL_ASSIGN_OR_RETURN(global, acc.Finalize(global));

    RoundPoint point;
    point.round = round;
    point.train_loss = train_loss / static_cast<double>(got);
    if (config.eval_every > 0 && round % config.eval_every == 0 &&
        !eval_data.empty()) {
      FL_ASSIGN_OR_RETURN(
          fedavg::ClientMetrics eval,
          fedavg::RunClientEvaluation(plan.device, global, eval_data,
                                      runtime));
      point.eval_loss = eval.mean_loss;
      point.eval_accuracy = eval.mean_accuracy;
      point.has_eval = true;
    }
    result.trajectory.push_back(point);
    result.rounds_run = round;
  }
  result.final_model = std::move(global);
  return result;
}

Result<SimulationResult> RunCentralizedBaseline(
    const plan::FLPlan& plan, const Checkpoint& init,
    std::span<const data::Example> train_data,
    std::span<const data::Example> eval_data, std::size_t epochs,
    const SimulationConfig& config) {
  if (train_data.empty()) return InvalidArgumentError("no training data");
  Rng rng(config.seed ^ 0xba5e11e5ULL);
  SimulationResult result;
  Checkpoint global = init;
  const std::uint32_t runtime = plan.min_runtime_version;

  // One "epoch" of centralized SGD == one ClientUpdate over all the data
  // with epochs=1 (identical code path as devices, Sec. 7.1).
  plan::DevicePlan device = plan.device;
  device.epochs = 1;

  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    Rng shuffle = rng.Fork();
    auto update = fedavg::RunClientUpdate(device, global, train_data,
                                          runtime, shuffle);
    if (!update.ok()) return update.status();
    Checkpoint delta = std::move(update->weighted_delta);
    delta.Scale(1.0f / update->weight);
    FL_RETURN_IF_ERROR(global.AddInPlace(delta));

    RoundPoint point;
    point.round = epoch;
    point.train_loss = update->metrics.mean_loss;
    if (config.eval_every > 0 && epoch % config.eval_every == 0 &&
        !eval_data.empty()) {
      FL_ASSIGN_OR_RETURN(
          fedavg::ClientMetrics eval,
          fedavg::RunClientEvaluation(device, global, eval_data, runtime));
      point.eval_loss = eval.mean_loss;
      point.eval_accuracy = eval.mean_accuracy;
      point.has_eval = true;
    }
    result.trajectory.push_back(point);
    result.rounds_run = epoch;
  }
  result.final_model = std::move(global);
  return result;
}

}  // namespace fl::tools
