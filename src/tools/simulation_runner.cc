#include "src/tools/simulation_runner.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/analytics/journal.h"
#include "src/common/thread_pool.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace fl::tools {
namespace {

// Telemetry handles for one simulation run; null/0 when telemetry is
// disabled at simulation start (the hot loops then pay one null check).
struct SimTelemetry {
  telemetry::Counter* updates_total = nullptr;
  telemetry::Counter* update_failures = nullptr;
};

SimTelemetry ResolveSimTelemetry() {
  SimTelemetry t;
  if (!telemetry::Enabled()) return t;
  auto& reg = telemetry::MetricsRegistry::Global();
  t.updates_total = reg.GetCounter("fl_sim_client_updates_total");
  t.update_failures = reg.GetCounter("fl_sim_client_update_failures_total");
  return t;
}

// One pre-drawn round participant: which client trains and the RNG its
// local shuffle uses. Drawn sequentially from the round RNG before any
// dispatch so the draw sequence is independent of thread scheduling.
struct PlannedClient {
  std::size_t client = 0;
  Rng shuffle{0};
};

// Runs the sequential selection loop's RNG draws (candidate index, drop-out
// coin, per-client fork) without training, collecting up to `want`
// survivors. Consumes exactly the same draws as the inline sequential loop
// does when every dispatched update succeeds.
std::vector<PlannedClient> PlanRound(
    Rng& rng, const std::vector<std::vector<data::Example>>& client_data,
    const SimulationConfig& config) {
  const std::size_t want = config.clients_per_round;
  std::vector<PlannedClient> planned;
  planned.reserve(want);
  for (std::size_t attempts = 0;
       planned.size() < want && attempts < want * 4; ++attempts) {
    const std::size_t c = rng.UniformInt(client_data.size());
    if (client_data[c].empty()) continue;
    if (rng.Bernoulli(config.client_failure_rate)) continue;  // drop-out
    planned.push_back(PlannedClient{c, rng.Fork()});
  }
  return planned;
}

// Per-worker aggregation shard — the in-process analogue of one ephemeral
// Aggregator actor (Sec. 4.2). Each shard owns its accumulator; shards are
// merged into the master in fixed index order after the join. Shards are
// pooled across rounds: Rearm zero-fills the accumulator in place, so the
// steady-state round loop never reallocates a model-sized sum buffer.
struct RoundShard {
  explicit RoundShard(plan::AggregationOp op, const Checkpoint& schema)
      : acc(op, schema) {}
  void Rearm() {
    acc.Reset();
    train_loss = 0;
    got = 0;
    status = Status::Ok();
  }
  fedavg::FedAvgAccumulator acc;
  double train_loss = 0;
  std::size_t got = 0;
  Status status = Status::Ok();
};

// Executes one round's client updates on the pool: candidate i runs on
// shard i % shards, each shard processing its candidates in ascending
// order. Returns (train_loss_sum, got) after the fixed-order shard merge.
Result<std::pair<double, std::size_t>> RunRoundOnPool(
    common::ThreadPool& pool, const plan::FLPlan& plan,
    const Checkpoint& global, std::uint32_t runtime,
    const std::vector<std::vector<data::Example>>& client_data,
    const std::vector<PlannedClient>& planned,
    std::vector<RoundShard>& shards, fedavg::FedAvgAccumulator& master,
    const SimTelemetry& telem, std::uint64_t round_span) {
  const std::size_t shard_count =
      std::max<std::size_t>(1, std::min(pool.size(), planned.size()));
  while (shards.size() < shard_count) {
    shards.emplace_back(plan.server.aggregation, global);
  }
  for (std::size_t s = 0; s < shard_count; ++s) shards[s].Rearm();

  pool.ParallelFor(shard_count, [&](std::size_t s) {
    RoundShard& shard = shards[s];
    for (std::size_t i = s; i < planned.size(); i += shard_count) {
      // Worker threads have no thread-local span context: parent the
      // client-update span on the round span explicitly.
      telemetry::ScopedSpan span("client_update", round_span);
      if (span.id() != 0) {
        span.AddAttr("client", std::to_string(planned[i].client));
      }
      // Copy the pre-drawn fork: the planned state itself stays pristine.
      Rng shuffle = planned[i].shuffle;
      auto update = fedavg::RunClientUpdate(plan.device, global,
                                            client_data[planned[i].client],
                                            runtime, shuffle);
      if (telem.updates_total != nullptr) telem.updates_total->Add();
      // A failed update is dropped without resampling (the sequential path
      // resamples; see the determinism contract in DESIGN.md).
      if (!update.ok()) {
        if (telem.update_failures != nullptr) telem.update_failures->Add();
        continue;
      }
      shard.train_loss += update->metrics.mean_loss;
      Status st = shard.acc.Accumulate(std::move(update->weighted_delta),
                                       update->weight, update->metrics);
      if (!st.ok()) {
        shard.status = st;
        return;
      }
      ++shard.got;
    }
  });

  double train_loss = 0;
  std::size_t got = 0;
  for (std::size_t s = 0; s < shard_count; ++s) {
    RoundShard& shard = shards[s];
    FL_RETURN_IF_ERROR(shard.status);
    train_loss += shard.train_loss;
    got += shard.got;
    // Fold the shard's sum in by reference — unlike MergeFrom, the shard
    // keeps its buffers for the next round's Rearm.
    FL_RETURN_IF_ERROR(master.AccumulateSum(shard.acc.delta_sum(),
                                            shard.acc.weight_sum(),
                                            shard.acc.contributions()));
  }
  return std::make_pair(train_loss, got);
}

}  // namespace

Result<SimulationResult> RunFedAvgSimulation(
    const plan::FLPlan& plan, const Checkpoint& init,
    const std::vector<std::vector<data::Example>>& client_data,
    std::span<const data::Example> eval_data,
    const SimulationConfig& config) {
  if (client_data.empty()) {
    return InvalidArgumentError("no client data");
  }
  Rng rng(config.seed);
  SimulationResult result;
  Checkpoint global = init;
  const std::uint32_t runtime = plan.min_runtime_version;

  // The pool outlives every round; threads==1 keeps the exact sequential
  // code path (and RNG consumption pattern) of earlier versions.
  const std::size_t threads = std::max<std::size_t>(1, config.threads);
  std::unique_ptr<common::ThreadPool> pool;
  if (threads > 1) {
    pool = std::make_unique<common::ThreadPool>(threads);
    if (telemetry::Enabled()) {
      // Queue-wait (enqueue -> dequeue) per pool task, in microseconds:
      // sustained growth here means the pool is oversubscribed.
      auto* wait_hist = telemetry::MetricsRegistry::Global().GetHistogram(
          "fl_sim_pool_queue_wait_micros",
          telemetry::HistogramOptions{1.0, 2.0, 24});
      pool->SetQueueWaitObserver([wait_hist](std::int64_t micros) {
        wait_hist->Observe(static_cast<double>(micros));
      });
    }
  }
  const SimTelemetry telem = ResolveSimTelemetry();

  // Round-pooled aggregation state: the master accumulator and the worker
  // shards are built once and zero-filled per round, so the per-round hot
  // loop allocates no model-sized buffers.
  fedavg::FedAvgAccumulator acc(plan.server.aggregation, global);
  std::vector<RoundShard> shard_pool;

  for (std::size_t round = 1; round <= config.rounds; ++round) {
    // Wall-clock span over the whole round; client-update spans nest under
    // it (workers parent on it explicitly, see RunRoundOnPool).
    telemetry::ScopedSpan round_span("sim_round");
    if (round_span.id() != 0) {
      round_span.AddAttr("round", std::to_string(round));
    }
    if (analytics::JournalEnabled()) {
      analytics::AppendJournal(
          SimTime{}, analytics::JournalSource::kSim,
          analytics::JournalEventKind::kSimRoundStart, DeviceId{}, SessionId{},
          RoundId{round}, "want=" + std::to_string(config.clients_per_round));
    }
    acc.Reset();
    // Select 1.3K, keep the first K survivors (Algorithm 1's header).
    const std::size_t want = config.clients_per_round;
    std::size_t got = 0;
    double train_loss = 0;
    if (pool == nullptr) {
      for (std::size_t attempts = 0;
           got < want && attempts < want * 4; ++attempts) {
        const std::size_t c = rng.UniformInt(client_data.size());
        if (client_data[c].empty()) continue;
        if (rng.Bernoulli(config.client_failure_rate)) continue;  // drop-out
        Rng shuffle = rng.Fork();
        telemetry::ScopedSpan span("client_update", round_span.id());
        auto update = fedavg::RunClientUpdate(plan.device, global,
                                              client_data[c], runtime,
                                              shuffle);
        if (telem.updates_total != nullptr) telem.updates_total->Add();
        if (!update.ok()) {
          if (telem.update_failures != nullptr) telem.update_failures->Add();
          continue;
        }
        train_loss += update->metrics.mean_loss;
        FL_RETURN_IF_ERROR(acc.Accumulate(std::move(update->weighted_delta),
                                          update->weight, update->metrics));
        ++got;
      }
    } else {
      const std::vector<PlannedClient> planned =
          PlanRound(rng, client_data, config);
      FL_ASSIGN_OR_RETURN(
          auto outcome,
          RunRoundOnPool(*pool, plan, global, runtime, client_data, planned,
                         shard_pool, acc, telem, round_span.id()));
      train_loss = outcome.first;
      got = outcome.second;
    }
    if (got == 0) {
      return AbortedError("round " + std::to_string(round) +
                          ": no client produced an update");
    }
    FL_RETURN_IF_ERROR(acc.FinalizeInPlace(global));
    if (analytics::JournalEnabled()) {
      analytics::AppendJournal(
          SimTime{}, analytics::JournalSource::kSim,
          analytics::JournalEventKind::kSimRoundComplete, DeviceId{},
          SessionId{}, RoundId{round}, "got=" + std::to_string(got));
    }

    RoundPoint point;
    point.round = round;
    point.train_loss = train_loss / static_cast<double>(got);
    if (config.eval_every > 0 && round % config.eval_every == 0 &&
        !eval_data.empty()) {
      FL_ASSIGN_OR_RETURN(
          fedavg::ClientMetrics eval,
          fedavg::RunClientEvaluation(plan.device, global, eval_data,
                                      runtime));
      point.eval_loss = eval.mean_loss;
      point.eval_accuracy = eval.mean_accuracy;
      point.has_eval = true;
    }
    result.trajectory.push_back(point);
    result.rounds_run = round;
  }
  result.final_model = std::move(global);
  return result;
}

Result<SimulationResult> RunCentralizedBaseline(
    const plan::FLPlan& plan, const Checkpoint& init,
    std::span<const data::Example> train_data,
    std::span<const data::Example> eval_data, std::size_t epochs,
    const SimulationConfig& config) {
  if (train_data.empty()) return InvalidArgumentError("no training data");
  Rng rng(config.seed ^ 0xba5e11e5ULL);
  SimulationResult result;
  Checkpoint global = init;
  const std::uint32_t runtime = plan.min_runtime_version;

  // One "epoch" of centralized SGD == one ClientUpdate over all the data
  // with epochs=1 (identical code path as devices, Sec. 7.1).
  plan::DevicePlan device = plan.device;
  device.epochs = 1;

  for (std::size_t epoch = 1; epoch <= epochs; ++epoch) {
    Rng shuffle = rng.Fork();
    auto update = fedavg::RunClientUpdate(device, global, train_data,
                                          runtime, shuffle);
    if (!update.ok()) return update.status();
    FL_RETURN_IF_ERROR(
        global.AddInPlace(update->weighted_delta, 1.0f / update->weight));

    RoundPoint point;
    point.round = epoch;
    point.train_loss = update->metrics.mean_loss;
    if (config.eval_every > 0 && epoch % config.eval_every == 0 &&
        !eval_data.empty()) {
      FL_ASSIGN_OR_RETURN(
          fedavg::ClientMetrics eval,
          fedavg::RunClientEvaluation(device, global, eval_data, runtime));
      point.eval_loss = eval.mean_loss;
      point.eval_accuracy = eval.mean_accuracy;
      point.has_eval = true;
    }
    result.trajectory.push_back(point);
    result.rounds_run = epoch;
  }
  result.final_model = std::move(global);
  return result;
}

}  // namespace fl::tools
