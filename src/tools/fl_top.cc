// fl_top: live terminal dashboard over a running deployment's ops plane
// (the Sec. 5 dashboards, pointed at the embedded status server instead of
// a log warehouse). Polls /statusz and /rounds, renders a refreshing page
// of health checks, fleet gauges, round-rate charts and the most recent
// round records.
//
//   fl_top --port 8080                # attach to a running sim
//   fl_top --demo                     # boot an in-process demo fleet
//   fl_top --port 8080 --frames 3 --plain   # CI-friendly finite run
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <mutex>

#include "src/analytics/dashboard.h"
#include "src/analytics/profile.h"
#include "src/analytics/timeseries.h"
#include "src/core/fl_system.h"
#include "src/data/blobs.h"
#include "src/graph/model_zoo.h"
#include "src/ops/http.h"
#include "src/ops/json.h"

namespace fl {
namespace {

struct TopOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  int interval_ms = 1000;
  int frames = 0;  // 0 = until interrupted
  bool plain = false;
  bool demo = false;
  std::size_t demo_devices = 800;
};

void PrintUsage() {
  std::fprintf(
      stderr,
      "usage: fl_top [--host H] [--port N] [--interval-ms N] [--frames N]\n"
      "              [--once] [--plain] [--demo [--devices N]]\n"
      "\n"
      "Attaches to the FL_STATUSZ ops plane of a running deployment and\n"
      "renders a live dashboard. --demo boots a small in-process fleet\n"
      "with an ephemeral status port and attaches to it.\n");
}

bool ParseArgs(int argc, char** argv, TopOptions* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fl_top: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--host") {
      const char* v = next("--host");
      if (v == nullptr) return false;
      opts->host = v;
    } else if (arg == "--port") {
      const char* v = next("--port");
      if (v == nullptr) return false;
      opts->port = std::atoi(v);
    } else if (arg == "--interval-ms") {
      const char* v = next("--interval-ms");
      if (v == nullptr) return false;
      opts->interval_ms = std::atoi(v);
    } else if (arg == "--frames") {
      const char* v = next("--frames");
      if (v == nullptr) return false;
      opts->frames = std::atoi(v);
    } else if (arg == "--devices") {
      const char* v = next("--devices");
      if (v == nullptr) return false;
      opts->demo_devices = static_cast<std::size_t>(std::atoll(v));
    } else if (arg == "--once") {
      opts->frames = 1;
    } else if (arg == "--plain") {
      opts->plain = true;
    } else if (arg == "--demo") {
      opts->demo = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return false;
    } else {
      std::fprintf(stderr, "fl_top: unknown flag %s\n", arg.c_str());
      PrintUsage();
      return false;
    }
  }
  if (!opts->demo && opts->port == 0) {
    std::fprintf(stderr, "fl_top: --port (or --demo) is required\n");
    PrintUsage();
    return false;
  }
  return true;
}

Result<ops::JsonValue> FetchJson(const TopOptions& opts,
                                 const std::string& path) {
  int status = 0;
  std::string body;
  if (Status s = ops::HttpGet(opts.host, opts.port, path, &status, &body);
      !s.ok()) {
    return s;
  }
  // /healthz answers 503 when unhealthy but still carries a JSON body.
  if (status != 200 && status != 503) {
    return Status{ErrorCode::kUnavailable,
                  path + " answered HTTP " + std::to_string(status)};
  }
  return ops::JsonValue::Parse(body);
}

double PathDouble(const ops::JsonValue& root, std::string_view path,
                  double fallback = 0) {
  const ops::JsonValue* v = root.FindPath(path);
  return v != nullptr ? v->AsDouble(fallback) : fallback;
}

std::string PathString(const ops::JsonValue& root, std::string_view path) {
  const ops::JsonValue* v = root.FindPath(path);
  return v != nullptr ? v->AsString() : std::string();
}

// Reconstructs a counter series from /statusz as a per-slot increment
// TimeSeries the chart renderer understands.
bool CounterSeriesFromStatusz(const ops::JsonValue& statusz,
                              const std::string& name,
                              std::unique_ptr<analytics::TimeSeries>* out) {
  const ops::JsonValue* entry = statusz.FindPath("series." + name);
  if (entry == nullptr) return false;
  const ops::JsonValue* points = entry->Find("points");
  const std::int64_t slot_ms =
      entry->Find("slot_ms") != nullptr ? entry->Find("slot_ms")->AsInt() : 0;
  if (points == nullptr || points->size() < 2 || slot_ms <= 0) return false;
  const std::int64_t start = (*points)[0][0].AsInt();
  *out = std::make_unique<analytics::TimeSeries>(SimTime{start},
                                                 Duration{slot_ms});
  for (std::size_t i = 1; i < points->size(); ++i) {
    const std::int64_t t = (*points)[i][0].AsInt();
    const double delta =
        (*points)[i][1].AsDouble() - (*points)[i - 1][1].AsDouble();
    (*out)->Add(SimTime{t}, delta > 0 ? delta : 0);
  }
  return true;
}

// "12.3M" style byte counts for the traffic columns.
std::string HumanBytes(double bytes) {
  char buf[32];
  if (bytes >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.2fG", bytes / 1e9);
  } else if (bytes >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.1fM", bytes / 1e6);
  } else if (bytes >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fK", bytes / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", bytes);
  }
  return buf;
}

// Background feed for the "hot functions" panel. /profilez blocks for its
// whole capture window, so fetching inline would stall the dashboard; a
// dedicated thread keeps one short capture in flight and publishes the
// latest top-8-by-self table. Silent when the deployment runs without
// FL_PROFILER (the 503 just leaves the panel empty).
class HotFunctionsFeed {
 public:
  void Start(std::string host, int port) {
    host_ = std::move(host);
    port_ = port;
    thread_ = std::thread([this] { Loop(); });
  }

  void Stop() {
    stop_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
  }

  std::string Render() const {
    std::lock_guard<std::mutex> lock(mu_);
    return panel_;
  }

 private:
  void Loop() {
    while (!stop_.load(std::memory_order_relaxed)) {
      int status = 0;
      std::string body;
      const Status s = ops::HttpGet(host_, port_,
                                    "/profilez?seconds=2&type=cpu", &status,
                                    &body);
      std::string panel;
      if (s.ok() && status == 200) {
        const auto profile = analytics::FoldedProfile::Parse(body);
        if (profile.total_weight() > 0) {
          panel = "\nhot functions (cpu self, last 2s)\n";
          char line[256];
          for (const auto& w : profile.TopBySelf(8)) {
            std::snprintf(line, sizeof(line), "  %5.1f%%  %s\n",
                          100.0 * static_cast<double>(w.self) /
                              static_cast<double>(profile.total_weight()),
                          w.name.c_str());
            panel += line;
          }
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        panel_ = std::move(panel);
      }
      // The capture itself took ~2 s; pause briefly so /profilez's busy
      // guard is not hammered when the profiler is off (fast 503s).
      for (int i = 0; i < 10 && !stop_.load(std::memory_order_relaxed); ++i) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
      }
    }
  }

  std::string host_;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  mutable std::mutex mu_;
  std::string panel_;
  std::thread thread_;
};

std::string RenderFrame(const ops::JsonValue& statusz,
                        const ops::JsonValue& rounds) {
  std::string out;
  char line[256];

  const std::string population = PathString(statusz, "population");
  const std::string sim_time = PathString(statusz, "sim_time");
  const double uptime = PathDouble(statusz, "uptime_wall_seconds");
  const ops::JsonValue* healthy = statusz.FindPath("health.healthy");
  std::snprintf(line, sizeof(line),
                "fl_top  %s  sim %s  up %.0fs  [%s]\n",
                population.c_str(), sim_time.c_str(), uptime,
                healthy == nullptr       ? "health n/a"
                : healthy->AsBool(false) ? "HEALTHY"
                                         : "UNHEALTHY");
  out += line;

  if (const ops::JsonValue* checks = statusz.FindPath("health.checks");
      checks != nullptr && checks->is_array()) {
    for (const auto& check : checks->items()) {
      const ops::JsonValue* ok = check.Find("ok");
      std::snprintf(line, sizeof(line), "  %-20s %-4s %s\n",
                    check.Find("name") != nullptr
                        ? check.Find("name")->AsString().c_str()
                        : "?",
                    ok != nullptr && ok->AsBool(false) ? "ok" : "FAIL",
                    check.Find("detail") != nullptr
                        ? check.Find("detail")->AsString().c_str()
                        : "");
      out += line;
    }
  }

  analytics::TextTable table({"committed", "abandoned", "commit/10m",
                              "abandon/10m", "accept/10m", "reject/10m",
                              "upB/10m", "dnB/10m", "actors", "pending ev"});
  table.AddRow({
      analytics::TextTable::Num(
          PathDouble(statusz, "round_totals.rounds_committed"), 0),
      analytics::TextTable::Num(
          PathDouble(statusz, "round_totals.rounds_abandoned"), 0),
      analytics::TextTable::Num(PathDouble(statusz, "windows.commit_per_10m"),
                                0),
      analytics::TextTable::Num(
          PathDouble(statusz, "windows.abandon_per_10m"), 0),
      analytics::TextTable::Num(PathDouble(statusz, "windows.accept_per_10m"),
                                0),
      analytics::TextTable::Num(PathDouble(statusz, "windows.reject_per_10m"),
                                0),
      HumanBytes(PathDouble(statusz, "windows.upload_bytes_per_10m")),
      HumanBytes(PathDouble(statusz, "windows.download_bytes_per_10m")),
      analytics::TextTable::Num(
          PathDouble(statusz, "gauges.fl_sim_live_actors"), 0),
      analytics::TextTable::Num(
          PathDouble(statusz, "gauges.fl_sim_event_queue_pending"), 0),
  });
  out += "\n" + table.Render();

  std::unique_ptr<analytics::TimeSeries> committed;
  std::unique_ptr<analytics::TimeSeries> abandoned;
  std::vector<analytics::SeriesSpec> specs;
  if (CounterSeriesFromStatusz(statusz, "fl_server_rounds_committed_total",
                               &committed)) {
    specs.push_back({"commits", committed.get(), false, false});
  }
  if (CounterSeriesFromStatusz(statusz, "fl_server_rounds_abandoned_total",
                               &abandoned)) {
    specs.push_back({"abandons", abandoned.get(), false, false});
  }
  if (!specs.empty()) {
    out += "\nround rate (per slot)\n";
    out += analytics::RenderSeriesChart(specs, 64);
  }

  std::unique_ptr<analytics::TimeSeries> up_bytes;
  std::unique_ptr<analytics::TimeSeries> down_bytes;
  std::vector<analytics::SeriesSpec> wire_specs;
  if (CounterSeriesFromStatusz(statusz, "fl_server_upload_bytes_total",
                               &up_bytes)) {
    wire_specs.push_back({"up", up_bytes.get(), false, false});
  }
  if (CounterSeriesFromStatusz(statusz, "fl_server_download_bytes_total",
                               &down_bytes)) {
    wire_specs.push_back({"down", down_bytes.get(), false, false});
  }
  if (!wire_specs.empty()) {
    out += "\nwire rate (bytes per slot)\n";
    out += analytics::RenderSeriesChart(wire_specs, 64);
  }

  if (const ops::JsonValue* recent = rounds.Find("rounds");
      recent != nullptr && recent->is_array() && recent->size() > 0) {
    analytics::TextTable rt({"round", "outcome", "contrib", "sel s",
                             "round s", "done", "drop"});
    const std::size_t take = std::min<std::size_t>(recent->size(), 10);
    for (std::size_t i = 0; i < take; ++i) {
      const ops::JsonValue& r = (*recent)[i];
      rt.AddRow({
          std::to_string(static_cast<unsigned long long>(
              PathDouble(r, "round"))),
          PathString(r, "outcome"),
          analytics::TextTable::Num(PathDouble(r, "contributors"), 0),
          analytics::TextTable::Num(PathDouble(r, "selection_seconds"), 1),
          analytics::TextTable::Num(PathDouble(r, "round_seconds"), 1),
          analytics::TextTable::Num(PathDouble(r, "completed"), 0),
          analytics::TextTable::Num(PathDouble(r, "dropped"), 0),
      });
    }
    out += "\nrecent rounds\n" + rt.Render();
  }
  return out;
}

int RunDashboard(const TopOptions& opts) {
  HotFunctionsFeed hot;
  hot.Start(opts.host, opts.port);
  int frame = 0;
  int consecutive_failures = 0;
  int rc = 0;
  while (opts.frames == 0 || frame < opts.frames) {
    auto statusz = FetchJson(opts, "/statusz");
    auto rounds = FetchJson(opts, "/rounds?limit=10");
    if (!statusz.ok() || !rounds.ok()) {
      if (++consecutive_failures >= 5) {
        std::fprintf(stderr, "fl_top: lost the ops plane: %s\n",
                     (!statusz.ok() ? statusz.status() : rounds.status())
                         .ToString()
                         .c_str());
        rc = 1;
        break;
      }
    } else {
      consecutive_failures = 0;
      std::string page = RenderFrame(statusz.value(), rounds.value());
      page += hot.Render();
      if (!opts.plain) std::fputs("\x1b[H\x1b[2J", stdout);
      std::fputs(page.c_str(), stdout);
      std::fflush(stdout);
      ++frame;
      if (opts.frames != 0 && frame >= opts.frames) break;
    }
    std::this_thread::sleep_for(
        std::chrono::milliseconds(opts.interval_ms));
  }
  hot.Stop();
  return rc;
}

// A small self-contained fleet with an ephemeral status port, so
// `fl_top --demo` works with zero setup.
std::unique_ptr<core::FLSystem> BootDemo(std::size_t devices) {
  core::FLSystemConfig config;
  config.population_name = "population/fl_top_demo";
  config.seed = 7;
  config.statusz_port = 0;  // ephemeral, regardless of FL_STATUSZ
  config.population.device_count = devices;
  config.population.mean_examples_per_sec = 1.5;
  config.selector_count = 2;
  config.coordinator_tick = Seconds(15);
  config.stats_bucket = Minutes(10);
  config.device_checkin_cadence = Minutes(10);

  auto system = std::make_unique<core::FLSystem>(config);
  Rng model_rng(1);
  const graph::Model model =
      graph::BuildLogisticRegression(8, 4, model_rng);
  plan::TrainingHyperparams hyper;
  hyper.learning_rate = 0.2f;
  hyper.epochs = 1;
  protocol::RoundConfig rc;
  rc.goal_count = 20;
  rc.overselection = 1.3;
  rc.selection_timeout = Minutes(5);
  rc.min_selection_fraction = 0.6;
  rc.reporting_deadline = Minutes(10);
  rc.min_reporting_fraction = 0.6;
  system->AddTrainingTask("demo-train", model, hyper, {}, rc, Seconds(30));
  auto blobs = std::make_shared<data::BlobsWorkload>(
      data::BlobsParams{.classes = 4, .feature_dim = 8}, 5);
  system->ProvisionData([blobs](const sim::DeviceProfile& profile,
                                core::DeviceAgent& agent, Rng&,
                                SimTime now) {
    agent.GetOrCreateStore("default").AddBatch(
        blobs->UserExamples(profile.id.value, 60, now));
  });
  system->Start();
  return system;
}

int Main(int argc, char** argv) {
  TopOptions opts;
  if (!ParseArgs(argc, argv, &opts)) return 2;

  std::unique_ptr<core::FLSystem> demo;
  std::atomic<bool> demo_stop{false};
  std::thread demo_thread;
  if (opts.demo) {
    demo = BootDemo(opts.demo_devices);
    if (demo->ops_plane() == nullptr) {
      std::fprintf(stderr, "fl_top: demo ops plane failed to start\n");
      return 1;
    }
    opts.host = "127.0.0.1";
    opts.port = demo->ops_plane()->port();
    std::fprintf(stderr, "fl_top: demo fleet on port %d\n", opts.port);
    // Drive the sim on a background thread; the dashboard polls over HTTP
    // exactly as it would against a separate process.
    core::FLSystem* sys = demo.get();
    demo_thread = std::thread([sys, &demo_stop] {
      while (!demo_stop.load(std::memory_order_relaxed)) {
        sys->RunFor(Minutes(2));
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
    });
  }

  const int rc = RunDashboard(opts);

  if (demo_thread.joinable()) {
    demo_stop.store(true, std::memory_order_relaxed);
    demo_thread.join();
  }
  return rc;
}

}  // namespace
}  // namespace fl

int main(int argc, char** argv) { return fl::Main(argc, argv); }
