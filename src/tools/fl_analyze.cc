// fl_analyze: offline analysis of a durable event journal (Sec. 5).
//
//   fl_analyze <journal>              full report: round timelines, Table 1
//                                     shape distribution, invariant check
//   fl_analyze --check <journal>      invariant check only; exit 1 on any
//                                     violation or parse error (CI gate)
//   fl_analyze --table <journal>      Table 1 session-shape table only
//   fl_analyze --timeline <journal>   per-round timelines only
//   fl_analyze --max-rows N           cap the shape table (default 10)
//   fl_analyze --critical-path R <journal>
//                                     what bounded round R's latency: phase
//                                     spans, goal-count vs aggregation wait,
//                                     per-device fates, straggler naming
//   fl_analyze --profile <folded>     profile report for a collapsed-stack
//                                     file (/profilez output or a bundle's
//                                     cpu_profile.folded): per-phase and
//                                     per-actor breakdowns, top-N self/total
//                                     tables; --max-rows N sets N
//
// <journal> may also be a diagnostic-bundle directory (FL_BUNDLE_DIR); its
// flight_recorder.log is analyzed in place of a journal file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "src/analytics/profile.h"
#include "src/tools/log_analyzer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fl_analyze [--check|--table|--timeline|--profile] "
               "[--critical-path R] [--max-rows N] "
               "<journal|bundle-dir|folded-profile>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kFull, kCheck, kTable, kTimeline, kCriticalPath, kProfile };
  Mode mode = Mode::kFull;
  std::size_t max_rows = 10;
  fl::RoundId cp_round{};
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      mode = Mode::kCheck;
    } else if (std::strcmp(arg, "--table") == 0) {
      mode = Mode::kTable;
    } else if (std::strcmp(arg, "--timeline") == 0) {
      mode = Mode::kTimeline;
    } else if (std::strcmp(arg, "--profile") == 0) {
      mode = Mode::kProfile;
    } else if (std::strcmp(arg, "--critical-path") == 0 && i + 1 < argc) {
      mode = Mode::kCriticalPath;
      cp_round = fl::RoundId{
          static_cast<std::uint64_t>(std::atoll(argv[++i]))};
    } else if (std::strcmp(arg, "--max-rows") == 0 && i + 1 < argc) {
      max_rows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  if (mode == Mode::kProfile) {
    std::ifstream in(path);
    if (!in) {
      std::fprintf(stderr, "fl_analyze: cannot open %s\n", path.c_str());
      return 2;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    const auto profile = fl::analytics::FoldedProfile::Parse(buf.str());
    if (profile.total_weight() == 0) {
      std::fprintf(stderr, "fl_analyze: %s has no folded stacks\n",
                   path.c_str());
      return 1;
    }
    std::fputs(
        fl::analytics::RenderProfileReport(profile, "samples", max_rows)
            .c_str(),
        stdout);
    return 0;
  }

  if (mode == Mode::kCriticalPath) {
    auto cp = fl::tools::AnalyzeCriticalPathFile(path, cp_round);
    if (!cp.ok()) {
      std::fprintf(stderr, "fl_analyze: %s\n", cp.status().ToString().c_str());
      return 2;
    }
    std::fputs(fl::tools::RenderCriticalPath(*cp).c_str(), stdout);
    // Exit 1 when the round left no trace, so scripts can gate on it.
    return cp->found || !cp->devices.empty() ? 0 : 1;
  }

  auto report = fl::tools::AnalyzeJournalFile(path);
  if (!report.ok()) {
    std::fprintf(stderr, "fl_analyze: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  switch (mode) {
    case Mode::kFull:
      std::fputs(fl::tools::RenderAnalysisReport(*report).c_str(), stdout);
      break;
    case Mode::kCheck:
      std::printf("checked %zu records across %zu sessions and %zu rounds\n",
                  report->records, report->sessions_closed,
                  report->rounds.size());
      std::fputs(fl::tools::RenderViolations(*report).c_str(), stdout);
      break;
    case Mode::kTable:
      std::fputs(fl::tools::RenderShapeTable(*report, max_rows).c_str(),
                 stdout);
      break;
    case Mode::kTimeline:
      std::fputs(fl::tools::RenderRoundTimelines(*report).c_str(), stdout);
      break;
    case Mode::kCriticalPath:
    case Mode::kProfile:
      break;  // handled above
  }
  // --check is the CI gate: violations (including parse errors) fail it.
  if (mode == Mode::kCheck && !report->violations.empty()) return 1;
  return 0;
}
