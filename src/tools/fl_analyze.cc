// fl_analyze: offline analysis of a durable event journal (Sec. 5).
//
//   fl_analyze <journal>              full report: round timelines, Table 1
//                                     shape distribution, invariant check
//   fl_analyze --check <journal>      invariant check only; exit 1 on any
//                                     violation or parse error (CI gate)
//   fl_analyze --table <journal>      Table 1 session-shape table only
//   fl_analyze --timeline <journal>   per-round timelines only
//   fl_analyze --max-rows N           cap the shape table (default 10)
//   fl_analyze --critical-path R <journal>
//                                     what bounded round R's latency: phase
//                                     spans, goal-count vs aggregation wait,
//                                     per-device fates, straggler naming
//
// <journal> may also be a diagnostic-bundle directory (FL_BUNDLE_DIR); its
// flight_recorder.log is analyzed in place of a journal file.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/tools/log_analyzer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fl_analyze [--check|--table|--timeline] "
               "[--critical-path R] [--max-rows N] <journal|bundle-dir>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kFull, kCheck, kTable, kTimeline, kCriticalPath };
  Mode mode = Mode::kFull;
  std::size_t max_rows = 10;
  fl::RoundId cp_round{};
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      mode = Mode::kCheck;
    } else if (std::strcmp(arg, "--table") == 0) {
      mode = Mode::kTable;
    } else if (std::strcmp(arg, "--timeline") == 0) {
      mode = Mode::kTimeline;
    } else if (std::strcmp(arg, "--critical-path") == 0 && i + 1 < argc) {
      mode = Mode::kCriticalPath;
      cp_round = fl::RoundId{
          static_cast<std::uint64_t>(std::atoll(argv[++i]))};
    } else if (std::strcmp(arg, "--max-rows") == 0 && i + 1 < argc) {
      max_rows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  if (mode == Mode::kCriticalPath) {
    auto cp = fl::tools::AnalyzeCriticalPathFile(path, cp_round);
    if (!cp.ok()) {
      std::fprintf(stderr, "fl_analyze: %s\n", cp.status().ToString().c_str());
      return 2;
    }
    std::fputs(fl::tools::RenderCriticalPath(*cp).c_str(), stdout);
    // Exit 1 when the round left no trace, so scripts can gate on it.
    return cp->found || !cp->devices.empty() ? 0 : 1;
  }

  auto report = fl::tools::AnalyzeJournalFile(path);
  if (!report.ok()) {
    std::fprintf(stderr, "fl_analyze: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  switch (mode) {
    case Mode::kFull:
      std::fputs(fl::tools::RenderAnalysisReport(*report).c_str(), stdout);
      break;
    case Mode::kCheck:
      std::printf("checked %zu records across %zu sessions and %zu rounds\n",
                  report->records, report->sessions_closed,
                  report->rounds.size());
      std::fputs(fl::tools::RenderViolations(*report).c_str(), stdout);
      break;
    case Mode::kTable:
      std::fputs(fl::tools::RenderShapeTable(*report, max_rows).c_str(),
                 stdout);
      break;
    case Mode::kTimeline:
      std::fputs(fl::tools::RenderRoundTimelines(*report).c_str(), stdout);
      break;
    case Mode::kCriticalPath:
      break;  // handled above
  }
  // --check is the CI gate: violations (including parse errors) fail it.
  if (mode == Mode::kCheck && !report->violations.empty()) return 1;
  return 0;
}
