// fl_analyze: offline analysis of a durable event journal (Sec. 5).
//
//   fl_analyze <journal>              full report: round timelines, Table 1
//                                     shape distribution, invariant check
//   fl_analyze --check <journal>      invariant check only; exit 1 on any
//                                     violation or parse error (CI gate)
//   fl_analyze --table <journal>      Table 1 session-shape table only
//   fl_analyze --timeline <journal>   per-round timelines only
//   fl_analyze --max-rows N           cap the shape table (default 10)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/tools/log_analyzer.h"

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage: fl_analyze [--check|--table|--timeline] "
               "[--max-rows N] <journal>\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  enum class Mode { kFull, kCheck, kTable, kTimeline };
  Mode mode = Mode::kFull;
  std::size_t max_rows = 10;
  std::string path;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--check") == 0) {
      mode = Mode::kCheck;
    } else if (std::strcmp(arg, "--table") == 0) {
      mode = Mode::kTable;
    } else if (std::strcmp(arg, "--timeline") == 0) {
      mode = Mode::kTimeline;
    } else if (std::strcmp(arg, "--max-rows") == 0 && i + 1 < argc) {
      max_rows = static_cast<std::size_t>(std::atoll(argv[++i]));
    } else if (arg[0] == '-') {
      return Usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return Usage();
    }
  }
  if (path.empty()) return Usage();

  auto report = fl::tools::AnalyzeJournalFile(path);
  if (!report.ok()) {
    std::fprintf(stderr, "fl_analyze: %s\n",
                 report.status().ToString().c_str());
    return 2;
  }

  switch (mode) {
    case Mode::kFull:
      std::fputs(fl::tools::RenderAnalysisReport(*report).c_str(), stdout);
      break;
    case Mode::kCheck:
      std::printf("checked %zu records across %zu sessions and %zu rounds\n",
                  report->records, report->sessions_closed,
                  report->rounds.size());
      std::fputs(fl::tools::RenderViolations(*report).c_str(), stdout);
      break;
    case Mode::kTable:
      std::fputs(fl::tools::RenderShapeTable(*report, max_rows).c_str(),
                 stdout);
      break;
    case Mode::kTimeline:
      std::fputs(fl::tools::RenderRoundTimelines(*report).c_str(), stdout);
      break;
  }
  // --check is the CI gate: violations (including parse errors) fail it.
  if (mode == Mode::kCheck && !report->violations.empty()) return 1;
  return 0;
}
