// Network model between devices and the FL server.
//
// The protocol layer asks this model how long a transfer takes and whether it
// fails. Failures and slow links are what the paper's reporting windows,
// straggler caps, and 130% over-selection exist to absorb (Sec. 2.2, Sec. 9).
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/common/sim_time.h"
#include "src/sim/availability.h"

namespace fl::sim {

enum class Direction { kDownload, kUpload };

struct TransferOutcome {
  bool success = true;
  bool corrupted = false;    // delivered but fails CRC (kDataLoss path)
  Duration duration;         // time until completion or failure detection
  std::uint64_t bytes_on_wire = 0;  // counted even for failed transfers
};

class NetworkModel {
 public:
  struct Params {
    Duration base_rtt = Millis(80);
    double rtt_jitter_sigma = 0.3;       // log-normal multiplier spread
    double transfer_failure_prob = 0.02; // per-transfer hard failure
    double corruption_prob = 0.001;      // delivered-but-corrupt
    // Failures waste on average this fraction of the transfer time/bytes.
    double failure_progress_mean = 0.5;
  };

  explicit NetworkModel(Params params, std::uint64_t seed)
      : params_(params), rng_(seed) {}

  // Samples the outcome of transferring `bytes` to/from `device`.
  TransferOutcome Transfer(const DeviceProfile& device, Direction dir,
                           std::uint64_t bytes);

  // Connection setup handshake time (used for check-in streams).
  Duration SampleRtt();

  const Params& params() const { return params_; }

 private:
  Params params_;
  Rng rng_;
};

}  // namespace fl::sim
