// Device availability model.
//
// The paper reports (Sec. 9, Appendix A) that device participation follows a
// strong diurnal pattern — devices are "more likely idle and charging at
// night", with a ~4x swing between daily low and high for a US-centric
// population — and that 6–10% of participants drop out mid-round, more by
// day than by night.
//
// We model each device as a two-state (eligible / ineligible) continuous-time
// Markov process whose ON-rate is modulated by a diurnal occupancy curve in
// the device's local time zone. The eligibility criteria being modelled are
// the paper's: idle + charging + connected to an unmetered network (Sec. 3).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/id.h"
#include "src/common/rng.h"
#include "src/common/sim_time.h"

namespace fl::sim {

// Target probability that a device is eligible as a function of local
// hour-of-day. Smooth day/night curve: a raised cosine peaking at
// `peak_hour` (default 2am) scaled so that peak/trough occupancy ratio is
// approximately `swing`.
class DiurnalCurve {
 public:
  struct Params {
    double peak_hour = 2.0;       // local time of maximum availability
    double peak_occupancy = 0.6;  // P(eligible) at the peak
    double swing = 4.0;           // peak / trough occupancy ratio (paper: ~4x)
  };

  DiurnalCurve() : p_() {}
  explicit DiurnalCurve(Params p) : p_(p) {}

  // P(eligible) at local hour h in [0, 24).
  double Occupancy(double local_hour) const;

  // Occupancy at an absolute sim time for a device with `tz_offset`.
  double OccupancyAt(SimTime t, Duration tz_offset) const {
    return Occupancy(t.HourOfDay(tz_offset));
  }

  const Params& params() const { return p_; }

 private:
  Params p_;
};

// Static per-device characteristics, drawn once per device at fleet
// construction. These substitute for the paper's heterogeneous phone fleet:
// differing network speeds, compute speeds, and flakiness (Sec. 9 notes
// performance "depends on device and network speed ... which can vary by
// region").
struct DeviceProfile {
  DeviceId id;
  Duration tz_offset;          // local-time shift for the diurnal curve
  double download_bps = 0;     // sustained download bandwidth (bits/sec)
  double upload_bps = 0;       // sustained upload bandwidth (bits/sec)
  double examples_per_sec = 0; // on-device training throughput
  double interrupt_rate_day = 0;   // eligibility-loss hazard (1/ms), daytime
  double interrupt_rate_night = 0; // same, night
  std::uint64_t seed = 0;      // per-device RNG stream
  std::uint32_t os_version = 0;     // FL runtime version on this device
  bool genuine = true;         // attestation outcome (Sec. 3, Attestation)
};

// Parameters for sampling a fleet of DeviceProfiles.
struct PopulationParams {
  std::size_t device_count = 1000;
  // Fraction of devices in each timezone bucket; default US-centric
  // (a single dominant zone, as in Appendix A).
  std::vector<double> tz_weights = {0.6, 0.2, 0.15, 0.05};
  std::vector<Duration> tz_offsets = {Hours(0), Hours(-1), Hours(-2),
                                      Hours(-3)};
  double mean_download_mbps = 20.0;
  double mean_upload_mbps = 5.0;
  double bandwidth_sigma = 0.5;      // log-normal spread
  double mean_examples_per_sec = 50.0;
  double compute_sigma = 0.4;
  // Mean eligible-interval length while training could be interrupted.
  Duration mean_eligible_day = Minutes(20);
  Duration mean_eligible_night = Hours(3);
  double non_genuine_fraction = 0.0;  // devices that fail attestation
  std::uint32_t min_os_version = 1;
  std::uint32_t max_os_version = 3;
};

// Samples a reproducible fleet.
std::vector<DeviceProfile> GeneratePopulation(const PopulationParams& params,
                                              Rng& rng);

// Generates the eligible/ineligible timeline for one device by simulating
// the two-state Markov process. Used by the device runtime to decide when to
// check in and when to interrupt running work.
class AvailabilityProcess {
 public:
  AvailabilityProcess(const DiurnalCurve& curve, const DeviceProfile& profile);

  // True if the device currently meets eligibility criteria.
  bool eligible() const { return eligible_; }

  // Advances the process and returns the time of the next state toggle
  // strictly after `t`. Call repeatedly to walk the timeline.
  SimTime NextToggleAfter(SimTime t);

  // Hazard rate (per ms) of losing eligibility at time t: drives mid-round
  // drop-outs, higher by day (Fig. 7 discussion).
  double InterruptRateAt(SimTime t) const;

 private:
  double OnRateAt(SimTime t) const;   // ineligible -> eligible (per ms)
  double OffRateAt(SimTime t) const;  // eligible -> ineligible (per ms)

  const DiurnalCurve& curve_;
  DeviceProfile profile_;
  Rng rng_;
  bool eligible_ = false;
};

}  // namespace fl::sim
