// Discrete-event simulation core.
//
// Everything in this repository — device check-ins, protocol timeouts, actor
// message delivery, training durations — executes as events on this queue.
// Events at equal timestamps run in scheduling order, which (together with
// seeded Rng) makes entire multi-day fleet simulations bit-reproducible.
//
// Two engines share the public API and the exact execution order contract
// (time-ascending, FIFO among equal timestamps):
//
//  * kWheel (default) — a hierarchical timer wheel: kLevels levels of
//    kSlots slots each, slot width growing 64x per level (1 ms at level 0,
//    ~12.4 days at the top), one 64-bit occupancy bitmap per level, and a
//    sorted overflow map for events beyond the ~2.2-year wheel horizon.
//    Events are slab-allocated intrusive nodes whose callback is a
//    small-buffer-optimized move-only InlineFunction — scheduling the
//    common capture sizes costs no malloc, firing costs no copy, and
//    Cancel() is O(1): generation-tagged handles unlink and free the node
//    immediately instead of leaving a tombstone behind.
//
//  * kLegacyHeap — the original std::priority_queue<Event> engine, kept
//    behind this toggle for A/B benchmarking (bench_fleet_scale) and the
//    cross-engine determinism golden test. Cancelled events remain in the
//    heap as tombstones until they surface.
//
// Select at construction, or process-wide with FL_EVENT_QUEUE=heap|wheel.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace fl::sim {

// Handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class EventQueue {
 public:
  using Callback = common::TaskFn;

  enum class Impl : std::uint8_t { kWheel, kLegacyHeap };

  // Wheel geometry: kLevels levels of kSlots slots; level L slots are
  // 64^L ms wide, so level L spans 64^(L+1) ms around the cursor. Six
  // levels cover ~2.18 years; anything farther sits in the overflow map.
  static constexpr int kSlotBits = 6;
  static constexpr int kSlots = 1 << kSlotBits;            // 64
  static constexpr int kLevels = 6;
  static constexpr int kHorizonBits = kSlotBits * kLevels;  // 36

  // Resolves FL_EVENT_QUEUE ("wheel" | "heap"), read once per process;
  // defaults to kWheel.
  static Impl DefaultImpl();

  EventQueue() : EventQueue(DefaultImpl()) {}
  explicit EventQueue(Impl impl);
  ~EventQueue();

  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  Impl impl() const { return impl_; }
  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now).
  EventHandle At(SimTime t, Callback fn);

  // Schedules `fn` after `d` from now.
  EventHandle After(Duration d, Callback fn) {
    return At(now_ + d, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was
  // cancelled. On the wheel engine this is O(1) and releases the event's
  // memory immediately.
  bool Cancel(EventHandle h);

  // Runs events until the queue is empty. Returns number of events executed.
  std::size_t Run();

  // Runs events with time <= deadline; clock ends at `deadline` even if the
  // queue drains earlier (so periodic samplers see a full window).
  std::size_t RunUntil(SimTime deadline);

  std::size_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Executes at most one event. Returns false if the queue is empty.
  bool Step();

  std::size_t pending() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }

  // Lifetime counters + footprint, cheap enough to maintain unconditionally
  // (plain increments); exported as telemetry gauges by FLSystem's stats
  // sampler and recorded in bench JSON.
  struct Stats {
    std::uint64_t scheduled = 0;   // At/After calls accepted
    std::uint64_t fired = 0;       // callbacks executed
    std::uint64_t cancelled = 0;   // successful Cancel calls
    std::uint64_t cascaded = 0;    // node moves between wheel levels
    std::uint64_t heap_callbacks = 0;  // callbacks too big for the SBO buffer
    std::size_t allocated_nodes = 0;   // slab capacity (live + free-listed)
  };
  const Stats& stats() const { return stats_; }

  // Live events per wheel level; the last entry is the overflow map.
  // All-zero (except via pending()) on the legacy engine.
  std::array<std::size_t, kLevels + 1> LevelOccupancy() const {
    return level_occupancy_;
  }

 private:
  // ---- wheel engine ----
  struct Node;
  struct NodeList {
    Node* head = nullptr;
    Node* tail = nullptr;
    bool empty() const { return head == nullptr; }
  };

  static constexpr std::uint16_t kOverflowLevel = kLevels;
  static constexpr std::size_t kNodesPerChunk = 1024;

  Node* AllocNode();
  void FreeNode(Node* n);
  Node* NodeAt(std::uint32_t index) const;

  // Places a live node into the wheel/overflow according to its time and
  // the current cursor; appends to the tail of the target list (FIFO).
  void Place(Node* n);
  void ListAppend(NodeList& list, Node* n);
  void ListUnlink(NodeList& list, Node* n);
  NodeList& SlotList(std::uint16_t level, std::uint16_t slot) {
    return slots_[level * kSlots + slot];
  }

  // Re-distributes every node of (level, slot) into lower levels relative
  // to the current cursor. The slot must cover times >= cursor_.
  void CascadeSlot(int level, int slot);
  // Moves the overflow bucket `it` into the wheel (cursor must be inside or
  // before the bucket's horizon window).
  void PullOverflowBucket(std::map<std::int64_t, NodeList>::iterator it);
  // Cascades the higher-level slots covering the cursor's current windows
  // (including a due overflow bucket) so level L only holds times beyond
  // every level-(L-1) entry. Never advances the cursor.
  void PullCurrent();

  // Returns the next event to fire, with its exact time <= `deadline`;
  // nullptr when the queue is empty or the next event is past the deadline.
  // May advance cursor_ (never past min(next event time, deadline)) and
  // cascade nodes, but fires nothing.
  Node* PeekDue(std::int64_t deadline);

  bool WheelPopAndRun(std::int64_t deadline);
  bool WheelCancel(std::uint64_t id);

  // ---- legacy heap engine ----
  struct HeapEvent {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const HeapEvent& a, const HeapEvent& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool HeapPopAndRun();
  // Drops cancelled events from the top of the heap.
  void SkimCancelled();

  // ---- shared state ----
  Impl impl_;
  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
  Stats stats_;
  std::array<std::size_t, kLevels + 1> level_occupancy_{};

  // Wheel engine state. cursor_ trails the earliest live event; equals
  // now_.millis whenever user code can observe the queue.
  std::int64_t cursor_ = 0;
  std::vector<NodeList> slots_;             // kLevels * kSlots lists
  std::array<std::uint64_t, kLevels> occupied_{};  // per-level slot bitmaps
  std::map<std::int64_t, NodeList> overflow_;      // key: time >> kHorizonBits
  std::vector<std::unique_ptr<Node[]>> chunks_;
  Node* free_list_ = nullptr;

  // Legacy heap engine state.
  std::uint64_t next_id_ = 1;
  std::priority_queue<HeapEvent, std::vector<HeapEvent>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace fl::sim
