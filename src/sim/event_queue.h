// Discrete-event simulation core.
//
// Everything in this repository — device check-ins, protocol timeouts, actor
// message delivery, training durations — executes as events on this queue.
// Events at equal timestamps run in scheduling order, which (together with
// seeded Rng) makes entire multi-day fleet simulations bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/common/sim_time.h"
#include "src/common/status.h"

namespace fl::sim {

// Handle for cancelling a scheduled event.
struct EventHandle {
  std::uint64_t id = 0;
  bool valid() const { return id != 0; }
};

class EventQueue {
 public:
  using Callback = std::function<void()>;

  SimTime now() const { return now_; }

  // Schedules `fn` at absolute time `t` (>= now).
  EventHandle At(SimTime t, Callback fn);

  // Schedules `fn` after `d` from now.
  EventHandle After(Duration d, Callback fn) {
    return At(now_ + d, std::move(fn));
  }

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventHandle h);

  // Runs events until the queue is empty. Returns number of events executed.
  std::size_t Run();

  // Runs events with time <= deadline; clock ends at `deadline` even if the
  // queue drains earlier (so periodic samplers see a full window).
  std::size_t RunUntil(SimTime deadline);

  std::size_t RunFor(Duration d) { return RunUntil(now_ + d); }

  // Executes at most one event. Returns false if the queue is empty.
  bool Step();

  std::size_t pending() const { return live_.size(); }
  bool empty() const { return live_.empty(); }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // tie-breaker: FIFO among equal timestamps
    std::uint64_t id;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  bool PopAndRun();
  // Drops cancelled events from the top of the heap.
  void SkimCancelled();

  SimTime now_{};
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace fl::sim
