#include "src/sim/availability.h"

#include <algorithm>
#include <cmath>
#include <numbers>

namespace fl::sim {

double DiurnalCurve::Occupancy(double local_hour) const {
  // Raised cosine with period 24h, max at peak_hour. shape in [0,1].
  const double phase =
      2.0 * std::numbers::pi * (local_hour - p_.peak_hour) / 24.0;
  const double shape = 0.5 * (1.0 + std::cos(phase));
  const double trough = p_.peak_occupancy / p_.swing;
  return trough + (p_.peak_occupancy - trough) * shape;
}

std::vector<DeviceProfile> GeneratePopulation(const PopulationParams& params,
                                              Rng& rng) {
  FL_CHECK(params.tz_weights.size() == params.tz_offsets.size());
  FL_CHECK(!params.tz_weights.empty());

  // Normalize timezone weights into a CDF.
  double total = 0;
  for (double w : params.tz_weights) total += w;
  FL_CHECK(total > 0);
  std::vector<double> cdf;
  cdf.reserve(params.tz_weights.size());
  double acc = 0;
  for (double w : params.tz_weights) {
    acc += w / total;
    cdf.push_back(acc);
  }

  std::vector<DeviceProfile> fleet;
  fleet.reserve(params.device_count);
  for (std::size_t i = 0; i < params.device_count; ++i) {
    DeviceProfile d;
    d.id = DeviceId{i + 1};
    const double u = rng.NextDouble();
    std::size_t tz = 0;
    while (tz + 1 < cdf.size() && u > cdf[tz]) ++tz;
    d.tz_offset = params.tz_offsets[tz];

    // Log-normal bandwidth / compute heterogeneity around the fleet means.
    const double bw_sigma = params.bandwidth_sigma;
    d.download_bps = params.mean_download_mbps * 1e6 *
                     rng.LogNormal(-0.5 * bw_sigma * bw_sigma, bw_sigma);
    d.upload_bps = params.mean_upload_mbps * 1e6 *
                   rng.LogNormal(-0.5 * bw_sigma * bw_sigma, bw_sigma);
    const double cs = params.compute_sigma;
    d.examples_per_sec =
        params.mean_examples_per_sec * rng.LogNormal(-0.5 * cs * cs, cs);

    d.interrupt_rate_day =
        1.0 / static_cast<double>(params.mean_eligible_day.millis);
    d.interrupt_rate_night =
        1.0 / static_cast<double>(params.mean_eligible_night.millis);

    d.seed = rng.Next();
    d.os_version = static_cast<std::uint32_t>(rng.UniformInt(
        params.min_os_version, params.max_os_version));
    d.genuine = !rng.Bernoulli(params.non_genuine_fraction);
    fleet.push_back(d);
  }
  return fleet;
}

AvailabilityProcess::AvailabilityProcess(const DiurnalCurve& curve,
                                         const DeviceProfile& profile)
    : curve_(curve), profile_(profile), rng_(profile.seed) {
  // Start in the stationary distribution at t=0 so that short simulations
  // are not biased by a cold start.
  eligible_ = rng_.Bernoulli(curve_.OccupancyAt(SimTime{0}, profile_.tz_offset));
}

double AvailabilityProcess::OffRateAt(SimTime t) const {
  // Interruption hazard interpolates day/night by the diurnal shape: at the
  // availability peak (night) devices sit idle on chargers for hours; by day
  // eligible intervals are short.
  const double occ = curve_.OccupancyAt(t, profile_.tz_offset);
  const auto& p = curve_.params();
  const double trough = p.peak_occupancy / p.swing;
  const double w = std::clamp(
      (occ - trough) / std::max(1e-9, p.peak_occupancy - trough), 0.0, 1.0);
  return profile_.interrupt_rate_day * (1.0 - w) +
         profile_.interrupt_rate_night * w;
}

double AvailabilityProcess::OnRateAt(SimTime t) const {
  // Choose the ON rate so the process's local stationary occupancy matches
  // the diurnal target: p = on / (on + off)  =>  on = p * off / (1 - p).
  const double p =
      std::clamp(curve_.OccupancyAt(t, profile_.tz_offset), 1e-4, 1.0 - 1e-4);
  return p * OffRateAt(t) / (1.0 - p);
}

double AvailabilityProcess::InterruptRateAt(SimTime t) const {
  return OffRateAt(t);
}

SimTime AvailabilityProcess::NextToggleAfter(SimTime t) {
  // Thinning (Ogata) sampling of the inhomogeneous exponential holding time:
  // rates vary slowly (24h period), so a 15-minute-step upper bound works.
  const Duration kStep = Minutes(15);
  SimTime cur = t;
  for (int guard = 0; guard < 100000; ++guard) {
    const double rate = eligible_ ? OffRateAt(cur) : OnRateAt(cur);
    // Upper-bound rate over the next step: rates change by <2x per 15 min.
    const double bound = rate * 2.0;
    const double wait_ms = rng_.Exponential(bound);
    if (wait_ms > static_cast<double>(kStep.millis)) {
      cur = cur + kStep;
      continue;
    }
    cur = cur + Millis(static_cast<std::int64_t>(wait_ms) + 1);
    const double actual = eligible_ ? OffRateAt(cur) : OnRateAt(cur);
    if (rng_.NextDouble() < actual / bound) {
      eligible_ = !eligible_;
      return cur;
    }
  }
  // Pathologically small rates: toggle a day later.
  eligible_ = !eligible_;
  return cur + Hours(24);
}

}  // namespace fl::sim
