#include "src/sim/event_queue.h"

#include <cstdlib>
#include <limits>
#include <string_view>
#include <utility>

namespace fl::sim {
namespace {

// Handles pack (slab index, generation); generation 1.. so ids are nonzero.
constexpr std::uint64_t MakeHandleId(std::uint32_t index, std::uint32_t gen) {
  return (static_cast<std::uint64_t>(index) << 32) | gen;
}

int HighestBit(std::uint64_t v) { return 63 - __builtin_clzll(v); }
int LowestBit(std::uint64_t v) { return __builtin_ctzll(v); }

}  // namespace

// Intrusive event node: two cache lines including the 48-byte inline
// callback buffer. prev/next link the node into exactly one slot or
// overflow-bucket list while live, or the free list (next only) after.
struct EventQueue::Node {
  std::int64_t time = 0;
  std::uint64_t seq = 0;
  Node* prev = nullptr;
  Node* next = nullptr;
  std::uint32_t generation = 1;
  std::uint32_t index = 0;
  std::uint16_t level = 0;
  std::uint16_t slot = 0;
  Callback fn;
};

EventQueue::Impl EventQueue::DefaultImpl() {
  static const Impl impl = [] {
    const char* v = std::getenv("FL_EVENT_QUEUE");
    if (v != nullptr && std::string_view(v) == "heap") {
      return Impl::kLegacyHeap;
    }
    return Impl::kWheel;
  }();
  return impl;
}

EventQueue::EventQueue(Impl impl) : impl_(impl) {
  if (impl_ == Impl::kWheel) {
    slots_.resize(static_cast<std::size_t>(kLevels) * kSlots);
  }
}

EventQueue::~EventQueue() = default;

// ---------------------------------------------------------------- slab

EventQueue::Node* EventQueue::AllocNode() {
  if (free_list_ == nullptr) {
    auto chunk = std::make_unique<Node[]>(kNodesPerChunk);
    const std::uint32_t base =
        static_cast<std::uint32_t>(chunks_.size() * kNodesPerChunk);
    // Push in reverse so nodes come off the free list in index order.
    for (std::size_t i = kNodesPerChunk; i-- > 0;) {
      Node& n = chunk[i];
      n.index = base + static_cast<std::uint32_t>(i);
      n.next = free_list_;
      free_list_ = &n;
    }
    chunks_.push_back(std::move(chunk));
    stats_.allocated_nodes += kNodesPerChunk;
  }
  Node* n = free_list_;
  free_list_ = n->next;
  return n;
}

void EventQueue::FreeNode(Node* n) {
  n->fn.Reset();
  if (++n->generation == 0) n->generation = 1;  // keep handle ids nonzero
  n->next = free_list_;
  free_list_ = n;
}

EventQueue::Node* EventQueue::NodeAt(std::uint32_t index) const {
  const std::size_t chunk = index / kNodesPerChunk;
  if (chunk >= chunks_.size()) return nullptr;
  return &chunks_[chunk][index % kNodesPerChunk];
}

// ------------------------------------------------------------- lists

void EventQueue::ListAppend(NodeList& list, Node* n) {
  n->prev = list.tail;
  n->next = nullptr;
  if (list.tail != nullptr) {
    list.tail->next = n;
  } else {
    list.head = n;
  }
  list.tail = n;
}

void EventQueue::ListUnlink(NodeList& list, Node* n) {
  if (n->prev != nullptr) {
    n->prev->next = n->next;
  } else {
    list.head = n->next;
  }
  if (n->next != nullptr) {
    n->next->prev = n->prev;
  } else {
    list.tail = n->prev;
  }
  n->prev = nullptr;
  n->next = nullptr;
}

// --------------------------------------------------------- placement

// Level choice: the highest differing bit between the event time and the
// cursor decides how far out the event is. diff < 64 → level 0 (exact
// 1 ms slots); each 6 further bits → one level up. Because all times in
// one slot share bits >= the slot's width with the cursor, every event in
// a slot stays in that slot no matter where the cursor sits inside the
// same aligned window — which is what keeps FIFO order stable across
// cascades.
void EventQueue::Place(Node* n) {
  const std::uint64_t diff =
      static_cast<std::uint64_t>(n->time ^ cursor_);
  const int level = diff == 0 ? 0 : HighestBit(diff) / kSlotBits;
  if (level >= kLevels) {
    // Beyond the wheel horizon: bucket by epoch (time >> 36), kept sorted.
    n->level = kOverflowLevel;
    n->slot = 0;
    ListAppend(overflow_[n->time >> kHorizonBits], n);
    ++level_occupancy_[kOverflowLevel];
    return;
  }
  if (!overflow_.empty() &&
      overflow_.begin()->first == (n->time >> kHorizonBits)) {
    // The cursor's epoch still has an undrained overflow bucket (possible
    // after a RunUntil deadline jump). Entering the wheel now would let
    // this event overtake earlier-seq equal-time events waiting in the
    // bucket, so append behind them instead; the next drain re-places all
    // of them in order.
    n->level = kOverflowLevel;
    n->slot = 0;
    ListAppend(overflow_.begin()->second, n);
    ++level_occupancy_[kOverflowLevel];
    return;
  }
  const int slot =
      static_cast<int>((n->time >> (kSlotBits * level)) & (kSlots - 1));
  n->level = static_cast<std::uint16_t>(level);
  n->slot = static_cast<std::uint16_t>(slot);
  ListAppend(SlotList(n->level, n->slot), n);
  occupied_[level] |= std::uint64_t{1} << slot;
  ++level_occupancy_[level];
}

void EventQueue::CascadeSlot(int level, int slot) {
  NodeList list = SlotList(level, slot);
  SlotList(level, slot) = NodeList{};
  occupied_[level] &= ~(std::uint64_t{1} << slot);
  // Head-to-tail re-placement preserves per-slot FIFO: equal-time events
  // always land in the same destination slot, in their original order.
  for (Node* n = list.head; n != nullptr;) {
    Node* next = n->next;
    --level_occupancy_[level];
    ++stats_.cascaded;
    Place(n);
    n = next;
  }
}

void EventQueue::PullOverflowBucket(
    std::map<std::int64_t, NodeList>::iterator it) {
  NodeList list = it->second;
  overflow_.erase(it);
  for (Node* n = list.head; n != nullptr;) {
    Node* next = n->next;
    --level_occupancy_[kOverflowLevel];
    ++stats_.cascaded;
    Place(n);
    n = next;
  }
}

// Restores the invariant "level L holds only events later than everything
// at level L-1" after any cursor movement: drains an overflow bucket that
// reached the cursor's epoch, then cascades, top level first, each slot
// the cursor currently sits in. Cheap no-op (one map check + kLevels
// bitmap tests) when nothing moved.
void EventQueue::PullCurrent() {
  if (!overflow_.empty() &&
      overflow_.begin()->first == (cursor_ >> kHorizonBits)) {
    PullOverflowBucket(overflow_.begin());
  }
  for (int level = kLevels - 1; level >= 1; --level) {
    const int slot =
        static_cast<int>((cursor_ >> (kSlotBits * level)) & (kSlots - 1));
    if ((occupied_[level] & (std::uint64_t{1} << slot)) != 0) {
      CascadeSlot(level, slot);
    }
  }
}

EventQueue::Node* EventQueue::PeekDue(std::int64_t deadline) {
  while (live_count_ > 0) {
    PullCurrent();
    if (occupied_[0] != 0) {
      // After PullCurrent the earliest event is the head of the lowest
      // occupied level-0 slot: level-0 slots are 1 ms wide, so the list
      // head (lowest seq) is the exact global minimum.
      const int idx = LowestBit(occupied_[0]);
      const std::int64_t t0 = (cursor_ & ~std::int64_t{kSlots - 1}) | idx;
      if (t0 > deadline) return nullptr;
      cursor_ = t0;
      return SlotList(0, static_cast<std::uint16_t>(idx)).head;
    }
    // Level 0 empty: hop the cursor to the start of the next occupied
    // slot (or overflow epoch). Levels are time-nested, so the lowest
    // non-empty level owns the earliest event and the smallest bound.
    std::int64_t bound = -1;
    for (int level = 1; level < kLevels; ++level) {
      if (occupied_[level] == 0) continue;
      const int idx = LowestBit(occupied_[level]);
      const int shift = kSlotBits * level;
      const std::int64_t window_mask =
          ~((std::int64_t{1} << (shift + kSlotBits)) - 1);
      bound = (cursor_ & window_mask) |
              (static_cast<std::int64_t>(idx) << shift);
      break;
    }
    if (bound < 0) {
      if (overflow_.empty()) return nullptr;  // unreachable with live > 0
      bound = overflow_.begin()->first << kHorizonBits;
    }
    // The bound is a lower bound on every pending event, so stopping (or
    // hopping) here can never skip an event; never moving past `deadline`
    // keeps later inserts at t <= deadline placeable.
    if (bound > deadline) return nullptr;
    cursor_ = bound;
  }
  return nullptr;
}

bool EventQueue::WheelPopAndRun(std::int64_t deadline) {
  Node* n = PeekDue(deadline);
  if (n == nullptr) return false;
  NodeList& list = SlotList(0, n->slot);
  ListUnlink(list, n);
  if (list.empty()) {
    occupied_[0] &= ~(std::uint64_t{1} << n->slot);
  }
  --level_occupancy_[0];
  --live_count_;
  cursor_ = n->time;
  now_ = SimTime{n->time};
  Callback fn = std::move(n->fn);
  // Free before firing: a Cancel of this very handle from inside the
  // callback must report "already ran" (matches the legacy engine).
  FreeNode(n);
  ++stats_.fired;
  fn();
  return true;
}

bool EventQueue::WheelCancel(std::uint64_t id) {
  const auto index = static_cast<std::uint32_t>(id >> 32);
  const auto generation = static_cast<std::uint32_t>(id);
  Node* n = NodeAt(index);
  if (n == nullptr || n->generation != generation) return false;
  if (n->level == kOverflowLevel) {
    const auto it = overflow_.find(n->time >> kHorizonBits);
    FL_CHECK(it != overflow_.end());
    ListUnlink(it->second, n);
    if (it->second.empty()) overflow_.erase(it);
    --level_occupancy_[kOverflowLevel];
  } else {
    NodeList& list = SlotList(n->level, n->slot);
    ListUnlink(list, n);
    if (list.empty()) {
      occupied_[n->level] &= ~(std::uint64_t{1} << n->slot);
    }
    --level_occupancy_[n->level];
  }
  FreeNode(n);
  --live_count_;
  ++stats_.cancelled;
  return true;
}

// ------------------------------------------------------ legacy heap

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

bool EventQueue::HeapPopAndRun() {
  SkimCancelled();
  if (heap_.empty()) return false;
  // top() is const&, but the element is not actually const; moving out is
  // safe because pop() destroys it next. This removes the historical full
  // Event (and callback) copy per fired event.
  HeapEvent ev = std::move(const_cast<HeapEvent&>(heap_.top()));
  heap_.pop();
  live_.erase(ev.id);
  --live_count_;
  now_ = ev.time;
  ++stats_.fired;
  ev.fn();
  return true;
}

// ---------------------------------------------------------- public

EventHandle EventQueue::At(SimTime t, Callback fn) {
  FL_CHECK_MSG(t >= now_, "cannot schedule into the past");
  FL_CHECK(static_cast<bool>(fn));
  ++stats_.scheduled;
  if (!fn.is_inline()) ++stats_.heap_callbacks;
  ++live_count_;
  if (impl_ == Impl::kLegacyHeap) {
    const std::uint64_t id = next_id_++;
    heap_.push(HeapEvent{t, next_seq_++, id, std::move(fn)});
    live_.insert(id);
    return EventHandle{id};
  }
  Node* n = AllocNode();
  n->time = t.millis;
  n->seq = next_seq_++;
  n->fn = std::move(fn);
  Place(n);
  return EventHandle{MakeHandleId(n->index, n->generation)};
}

bool EventQueue::Cancel(EventHandle h) {
  if (!h.valid()) return false;
  if (impl_ == Impl::kLegacyHeap) {
    if (live_.erase(h.id) == 0) return false;
    --live_count_;
    ++stats_.cancelled;
    return true;
  }
  return WheelCancel(h.id);
}

bool EventQueue::Step() {
  if (impl_ == Impl::kLegacyHeap) return HeapPopAndRun();
  return WheelPopAndRun(std::numeric_limits<std::int64_t>::max());
}

std::size_t EventQueue::Run() {
  std::size_t n = 0;
  while (Step()) ++n;
  return n;
}

std::size_t EventQueue::RunUntil(SimTime deadline) {
  std::size_t n = 0;
  if (impl_ == Impl::kLegacyHeap) {
    while (true) {
      SkimCancelled();
      if (heap_.empty() || heap_.top().time > deadline) break;
      if (HeapPopAndRun()) ++n;
    }
  } else {
    while (WheelPopAndRun(deadline.millis)) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  if (cursor_ < now_.millis) cursor_ = now_.millis;
  return n;
}

}  // namespace fl::sim
