#include "src/sim/event_queue.h"

namespace fl::sim {

EventHandle EventQueue::At(SimTime t, Callback fn) {
  FL_CHECK_MSG(t >= now_, "cannot schedule into the past");
  FL_CHECK(fn != nullptr);
  const std::uint64_t id = next_id_++;
  heap_.push(Event{t, next_seq_++, id, std::move(fn)});
  live_.insert(id);
  return EventHandle{id};
}

bool EventQueue::Cancel(EventHandle h) {
  if (!h.valid()) return false;
  return live_.erase(h.id) > 0;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() && live_.count(heap_.top().id) == 0) {
    heap_.pop();
  }
}

bool EventQueue::PopAndRun() {
  SkimCancelled();
  if (heap_.empty()) return false;
  Event ev = heap_.top();
  heap_.pop();
  live_.erase(ev.id);
  now_ = ev.time;
  ev.fn();
  return true;
}

bool EventQueue::Step() { return PopAndRun(); }

std::size_t EventQueue::Run() {
  std::size_t n = 0;
  while (PopAndRun()) ++n;
  return n;
}

std::size_t EventQueue::RunUntil(SimTime deadline) {
  std::size_t n = 0;
  while (true) {
    SkimCancelled();
    if (heap_.empty() || heap_.top().time > deadline) break;
    if (PopAndRun()) ++n;
  }
  if (now_ < deadline) now_ = deadline;
  return n;
}

}  // namespace fl::sim
