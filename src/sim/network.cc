#include "src/sim/network.h"

#include <algorithm>
#include <cmath>

namespace fl::sim {

Duration NetworkModel::SampleRtt() {
  const double mult =
      rng_.LogNormal(-0.5 * params_.rtt_jitter_sigma * params_.rtt_jitter_sigma,
                     params_.rtt_jitter_sigma);
  return Millis(static_cast<std::int64_t>(
      std::max(1.0, static_cast<double>(params_.base_rtt.millis) * mult)));
}

TransferOutcome NetworkModel::Transfer(const DeviceProfile& device,
                                       Direction dir, std::uint64_t bytes) {
  TransferOutcome out;
  const double bps =
      dir == Direction::kDownload ? device.download_bps : device.upload_bps;
  FL_CHECK(bps > 0);
  const double seconds = static_cast<double>(bytes) * 8.0 / bps;
  const Duration rtt = SampleRtt();
  const Duration full =
      rtt + Millis(static_cast<std::int64_t>(seconds * 1000.0) + 1);

  if (rng_.Bernoulli(params_.transfer_failure_prob)) {
    out.success = false;
    // The link died partway; some time and bytes were still spent.
    const double progress =
        std::clamp(rng_.Uniform(0.0, 2.0 * params_.failure_progress_mean),
                   0.05, 1.0);
    out.duration = Millis(static_cast<std::int64_t>(
        static_cast<double>(full.millis) * progress));
    out.bytes_on_wire =
        static_cast<std::uint64_t>(static_cast<double>(bytes) * progress);
    return out;
  }

  out.success = true;
  out.corrupted = rng_.Bernoulli(params_.corruption_prob);
  out.duration = full;
  out.bytes_on_wire = bytes;
  return out;
}

}  // namespace fl::sim
