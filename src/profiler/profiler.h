// Continuous profiling plane (Sec. 4 / Sec. 8: pace steering and round
// pipelining were tuned by watching where server time actually goes; Papaya
// reports production FL throughput work is driven by continuous profiling of
// the aggregation hot path). This header is the master switch plus the
// phase-tagging vocabulary shared by the CPU sampler (cpu_profiler.h) and
// the heap sampler (heap_profiler.h).
//
// Two gates, both defaulting to "off costs nothing", mirroring telemetry:
//  * Compile time: -DFL_PROFILER=OFF (CMake option) defines
//    FL_PROFILER_DISABLED, turning Enabled() into a constant false so every
//    hook (including the operator new/delete interposition) compiles out.
//  * Run time: Enabled() is one relaxed atomic load, initialized from the
//    FL_PROFILER environment variable on first use and flippable in-process
//    (tests, benches). Disabled sites pay one predictable branch.
//
// Phase tags: profiling samples answer "where do cycles go", but an FL
// server also needs "during which part of the protocol". Every sample
// (CPU and heap) snapshots a thread-local ProfileTag {round, phase, actor}
// maintained by RAII ScopedPhase/ScopedActor guards at the protocol sites
// (device training, selector check-in, aggregation, SecAgg, round phases).
// The tag is a constant-initialized POD thread_local so the SIGPROF handler
// can read it without TLS-guard or allocation hazards: a signal interrupts
// the very thread that owns the tag, so the read is always consistent.
//
// Header-only on purpose (like telemetry.h): json_writer.h stamps the
// profiler state into every BENCH_*.json without linking fl_profiler.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>

namespace fl::profiler {

// The protocol phase a thread is working on. kNone means "runtime
// bookkeeping" (event queue, network sim, stats) — anything not attributable
// to a round phase. Keep the numbering stable: it is packed into profile
// ring slots and decoded by offline tooling.
enum class Phase : std::uint8_t {
  kNone = 0,
  kCheckin = 1,        // device check-in / selection handshake
  kSelection = 2,      // selector + master selection window
  kConfiguration = 3,  // coordinator round planning / plan distribution
  kTraining = 4,       // device-side plan execution (ClientUpdate)
  kReporting = 5,      // device upload encode + reporting window
  kAggregation = 6,    // server-side accumulate / merge / finalize
  kSecAgg = 7,         // masked-input protocol, both sides
  kClosing = 8,        // round close / commit / model publish
  kCount = 9,
};

constexpr const char* PhaseName(Phase p) {
  switch (p) {
    case Phase::kNone: return "none";
    case Phase::kCheckin: return "checkin";
    case Phase::kSelection: return "selection";
    case Phase::kConfiguration: return "configuration";
    case Phase::kTraining: return "training";
    case Phase::kReporting: return "reporting";
    case Phase::kAggregation: return "aggregation";
    case Phase::kSecAgg: return "secagg";
    case Phase::kClosing: return "closing";
    case Phase::kCount: break;
  }
  return "unknown";
}

// Parses a PhaseName() string back to its Phase; kCount on no match (the
// folded-profile reader uses this for round-trips).
inline Phase ParsePhaseName(const char* name) {
  for (std::uint8_t i = 0; i < static_cast<std::uint8_t>(Phase::kCount); ++i) {
    if (std::strcmp(name, PhaseName(static_cast<Phase>(i))) == 0) {
      return static_cast<Phase>(i);
    }
  }
  return Phase::kCount;
}

// Actor-type codes for the third tag dimension (which server component was
// running). 0 = not inside an actor.
enum class ActorTag : std::uint8_t {
  kNone = 0,
  kCoordinator = 1,
  kSelector = 2,
  kMasterAggregator = 3,
  kAggregator = 4,
  kOther = 5,
};

constexpr const char* ActorTagName(ActorTag a) {
  switch (a) {
    case ActorTag::kNone: return "none";
    case ActorTag::kCoordinator: return "coordinator";
    case ActorTag::kSelector: return "selector";
    case ActorTag::kMasterAggregator: return "master_aggregator";
    case ActorTag::kAggregator: return "aggregator";
    case ActorTag::kOther: return "actor";
  }
  return "unknown";
}

#ifdef FL_PROFILER_DISABLED
inline constexpr bool kCompiledIn = false;
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
inline constexpr bool kCompiledIn = true;

namespace internal {
// -1 = not yet initialized from the environment; 0/1 = off/on. Constant-
// initialized (no static guard) so the very first operator new of the
// process — which may run before any static constructor — can consult it
// without re-entering a guard acquisition.
inline std::atomic<int> g_enabled{-1};

inline int InitEnabledFromEnv() {
  bool on = false;
  if (const char* env = std::getenv("FL_PROFILER")) {
    on = !(env[0] == '\0' || std::strcmp(env, "0") == 0 ||
           std::strcmp(env, "off") == 0 || std::strcmp(env, "OFF") == 0);
  }
  int v = on ? 1 : 0;
  // A racing SetEnabled() wins: only replace the -1 sentinel.
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed);
}
}  // namespace internal

inline bool Enabled() {
  int v = internal::g_enabled.load(std::memory_order_relaxed);
  if (v < 0) v = internal::InitEnabledFromEnv();
  return v == 1;
}
inline void SetEnabled(bool on) {
  internal::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}
#endif

// The per-thread tag snapshotted into every sample. POD with constant
// initialization: reads from the SIGPROF handler see whatever the
// interrupted thread last stored — always internally consistent because
// signal and mutator share one thread.
struct ProfileTag {
  std::uint32_t round = 0;
  std::uint8_t phase = 0;  // Phase
  std::uint8_t actor = 0;  // ActorTag
};

namespace internal {
inline thread_local ProfileTag g_tag;
}  // namespace internal

inline const ProfileTag& CurrentTag() { return internal::g_tag; }

// RAII phase scope. One Enabled() branch when profiling is off (the
// disabled fleet-sim path must stay within the 2% gate), four byte-stores
// when on. Restores the previous tag so nested scopes (training inside a
// check-in callback) unwind correctly.
class ScopedPhase {
 public:
  ScopedPhase(Phase phase, std::uint64_t round = 0) {
#ifndef FL_PROFILER_DISABLED
    if (Enabled()) {
      active_ = true;
      saved_ = internal::g_tag;
      internal::g_tag.phase = static_cast<std::uint8_t>(phase);
      if (round != 0) {
        internal::g_tag.round = static_cast<std::uint32_t>(round);
      }
    }
#else
    (void)phase;
    (void)round;
#endif
  }
  ~ScopedPhase() {
#ifndef FL_PROFILER_DISABLED
    if (active_) internal::g_tag = saved_;
#endif
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
#ifndef FL_PROFILER_DISABLED
  ProfileTag saved_;
  bool active_ = false;
#endif
};

// RAII actor-type scope, installed by the actor runtime around OnMessage.
class ScopedActor {
 public:
  ScopedActor(ActorTag actor, std::uint64_t round = 0) {
#ifndef FL_PROFILER_DISABLED
    if (Enabled()) {
      active_ = true;
      saved_ = internal::g_tag;
      internal::g_tag.actor = static_cast<std::uint8_t>(actor);
      if (round != 0) {
        internal::g_tag.round = static_cast<std::uint32_t>(round);
      }
    }
#else
    (void)actor;
    (void)round;
#endif
  }
  ~ScopedActor() {
#ifndef FL_PROFILER_DISABLED
    if (active_) internal::g_tag = saved_;
#endif
  }
  ScopedActor(const ScopedActor&) = delete;
  ScopedActor& operator=(const ScopedActor&) = delete;

 private:
#ifndef FL_PROFILER_DISABLED
  ProfileTag saved_;
  bool active_ = false;
#endif
};

}  // namespace fl::profiler
