// Global operator new/delete replacements feeding the sampled heap
// profiler. This TU is a member of libfl_profiler.a; because every other TU
// in the program references operator new, the archive member is always
// pulled in and these definitions replace the libstdc++ weak ones.
//
// Disabled cost: one inlined relaxed load per new (Enabled()) and a load
// plus one pointer-filter bit test per delete (HeapFreeHookNeeded()). The
// free-side gate is intentionally NOT Enabled(): pointers registered while
// profiling was on must still be un-registered after SetEnabled(false), or
// the live table leaks stale entries that poison later sessions.
#include <cstddef>
#include <cstdlib>
#include <new>

#include "src/profiler/heap_profiler.h"
#include "src/profiler/profiler.h"

#ifndef FL_PROFILER_DISABLED

namespace {

void* AllocOrHandler(std::size_t size) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = std::malloc(size);
    if (p != nullptr) return p;
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

void* AlignedAllocOrHandler(std::size_t size, std::size_t align) {
  if (size == 0) size = 1;
  for (;;) {
    void* p = nullptr;
    if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                       size) == 0) {
      return p;
    }
    std::new_handler handler = std::get_new_handler();
    if (handler == nullptr) return nullptr;
    handler();
  }
}

inline void TapAlloc(void* p, std::size_t size) {
  if (fl::profiler::Enabled()) {
    fl::profiler::internal::HeapAllocHook(p, size);
  }
}

inline void TapFree(void* p) {
  if (p != nullptr && fl::profiler::internal::HeapFreeHookNeeded(p)) {
    fl::profiler::internal::HeapFreeHook(p);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = AllocOrHandler(size);
  if (p == nullptr) throw std::bad_alloc();
  TapAlloc(p, size);
  return p;
}

void* operator new[](std::size_t size) {
  void* p = AllocOrHandler(size);
  if (p == nullptr) throw std::bad_alloc();
  TapAlloc(p, size);
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  void* p = AllocOrHandler(size);
  if (p != nullptr) TapAlloc(p, size);
  return p;
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  void* p = AllocOrHandler(size);
  if (p != nullptr) TapAlloc(p, size);
  return p;
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = AlignedAllocOrHandler(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  TapAlloc(p, size);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = AlignedAllocOrHandler(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  TapAlloc(p, size);
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  void* p = AlignedAllocOrHandler(size, static_cast<std::size_t>(align));
  if (p != nullptr) TapAlloc(p, size);
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  void* p = AlignedAllocOrHandler(size, static_cast<std::size_t>(align));
  if (p != nullptr) TapAlloc(p, size);
  return p;
}

void operator delete(void* p) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete[](void* p) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete(void* p, std::size_t) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete(void* p, const std::nothrow_t&) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  TapFree(p);
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  TapFree(p);
  std::free(p);
}

#endif  // FL_PROFILER_DISABLED
