// Process-level bootstrap for the profiling plane: one call, driven
// entirely by environment variables, placed in FLSystem::Start so any
// binary that boots the system (fleet sims, examples, benches) gets
// continuous profiling with FL_PROFILER=1 and pays one branch without it.
#pragma once

#include "src/common/status.h"

namespace fl::profiler {

// If Enabled() (FL_PROFILER env var / SetEnabled), arms the CPU sampler at
// FL_PROFILER_HZ (default CpuProfiler::kDefaultHz, clamped to
// [1, kMaxHz]; 0 = heap-only, leave the CPU sampler unarmed) and sets the
// heap sampling interval from FL_PROFILER_HEAP_INTERVAL bytes (default
// HeapProfiler::kDefaultSamplingInterval). Idempotent: returns OkStatus if
// the profiler is already running or disabled.
Status StartFromEnv();

// Disarms the CPU sampler if running. Safe when disabled/compiled out.
void StopAll();

}  // namespace fl::profiler
