#include "src/profiler/heap_profiler.h"

#ifndef FL_PROFILER_DISABLED

#include <algorithm>
#include <mutex>
#include <unordered_map>

namespace fl::profiler {
namespace {

// ---------------------------------------------------------------------------
// State. All containers live behind mutexes and are only touched with the
// thread-local in-hook flag set, which cuts off re-entrant sampling when the
// tables themselves allocate or free. Locks are never nested (MaybeSample
// and OnFree each take the site lock and a shard lock strictly one at a
// time), so there is no ordering to get wrong — and the SIGPROF handler
// takes no locks at all, so a CPU sample landing inside this code cannot
// deadlock.
// ---------------------------------------------------------------------------

struct PtrInfo {
  std::uint64_t site_key = 0;
  std::uint64_t weight_bytes = 0;  // max(size, interval) at sample time
};

constexpr std::size_t kShards = 8;

struct Shard {
  std::mutex mu;
  std::unordered_map<void*, PtrInfo> ptrs;
};

struct Tables {
  Shard shards[kShards];
  std::mutex sites_mu;
  std::unordered_map<std::uint64_t, HeapSiteStats> sites;
};

// Leaked: hooks may still fire during static destruction.
Tables& GetTables() {
  static Tables* const tables = new Tables();
  return *tables;
}

std::atomic<std::size_t> g_interval{HeapProfiler::kDefaultSamplingInterval};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_frees_matched{0};

// Thread-local hook state. Constant-initialized PODs: no TLS guards. (The
// sampling countdown itself is header-inline — internal::g_heap_countdown —
// so the unsampled fast path inlines into operator new.)
thread_local bool g_in_hook = false;
thread_local std::uint64_t g_rng = 0;

inline std::size_t ShardOf(void* p) {
  return (reinterpret_cast<std::uintptr_t>(p) >> 4) % kShards;
}

// Small xorshift for randomized countdown resets; seeded per thread from
// the first sampled pointer so threads decorrelate.
inline std::uint64_t NextRand(void* seed_hint) {
  if (g_rng == 0) {
    g_rng = reinterpret_cast<std::uintptr_t>(seed_hint) | 1;
  }
  g_rng ^= g_rng << 13;
  g_rng ^= g_rng >> 7;
  g_rng ^= g_rng << 17;
  return g_rng;
}

std::uint64_t HashFrames(const std::uintptr_t* frames, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<std::uint64_t>(frames[i]);
    h *= 1099511628211ull;
  }
  return h == 0 ? 1 : h;
}

// Frame-pointer walk from the current frame (normal context — the hook —
// so __builtin_frame_address anchors the chain). Same bounds discipline as
// the signal-context unwinder.
std::size_t CaptureStack(std::uintptr_t* frames, std::size_t max_frames) {
  std::uintptr_t fp =
      reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
  const std::uintptr_t bottom = fp;
  const std::uintptr_t top = fp + (std::uintptr_t{8} << 20);
  std::size_t n = 0;
  while (n < max_frames) {
    if (fp < bottom || fp + 2 * sizeof(std::uintptr_t) > top ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      break;
    }
    const std::uintptr_t next_fp = *reinterpret_cast<std::uintptr_t*>(fp);
    const std::uintptr_t ret =
        *reinterpret_cast<std::uintptr_t*>(fp + sizeof(std::uintptr_t));
    if (ret < 4096) break;
    frames[n++] = ret;
    if (next_fp <= fp) break;
    fp = next_fp;
  }
  return n;
}

}  // namespace

HeapProfiler& HeapProfiler::Global() {
  static HeapProfiler* const profiler = new HeapProfiler();  // leaked
  return *profiler;
}

void HeapProfiler::SetSamplingInterval(std::size_t bytes) {
  g_interval.store(bytes == 0 ? 1 : bytes, std::memory_order_relaxed);
}
std::size_t HeapProfiler::sampling_interval() const {
  return g_interval.load(std::memory_order_relaxed);
}
std::uint64_t HeapProfiler::samples_taken() const {
  return g_samples.load(std::memory_order_relaxed);
}
std::uint64_t HeapProfiler::frees_matched() const {
  return g_frees_matched.load(std::memory_order_relaxed);
}

void HeapProfiler::MaybeSample(void* ptr, std::size_t size) {
  internal::HeapAllocHook(ptr, size);
}
void HeapProfiler::OnFree(void* ptr) { internal::HeapFreeHook(ptr); }

std::vector<HeapSiteStats> HeapProfiler::Snapshot() const {
  Tables& t = GetTables();
  std::vector<HeapSiteStats> out;
  {
    g_in_hook = true;
    const std::lock_guard<std::mutex> lock(t.sites_mu);
    out.reserve(t.sites.size());
    for (const auto& [key, stats] : t.sites) out.push_back(stats);
    g_in_hook = false;
  }
  std::sort(out.begin(), out.end(),
            [](const HeapSiteStats& a, const HeapSiteStats& b) {
              return a.live_bytes > b.live_bytes;
            });
  return out;
}

void HeapProfiler::Reset() {
  Tables& t = GetTables();
  g_in_hook = true;
  for (auto& shard : t.shards) {
    const std::lock_guard<std::mutex> lock(shard.mu);
    internal::g_heap_live_tracked.fetch_sub(shard.ptrs.size(),
                                            std::memory_order_relaxed);
    shard.ptrs.clear();
  }
  {
    const std::lock_guard<std::mutex> lock(t.sites_mu);
    t.sites.clear();
  }
  g_in_hook = false;
  // Frees of pre-Reset pointers become unmatched once their filter bits
  // clear — the same semantics as losing the table entry itself.
  for (std::size_t i = 0; i < internal::kPtrFilterWords; ++i) {
    internal::g_ptr_filter[i].store(0, std::memory_order_relaxed);
  }
  g_samples.store(0, std::memory_order_relaxed);
  g_frees_matched.store(0, std::memory_order_relaxed);
}

namespace internal {

void HeapSampleSlow(void* ptr, std::size_t size) {
  // Re-entrant allocations (the tables below allocate) fall through to
  // here with the countdown still <= 0; the in-hook flag cuts them off
  // without resetting it, so no legitimate sample is skipped.
  if (g_in_hook || ptr == nullptr) return;

  g_in_hook = true;
  const std::size_t interval = g_interval.load(std::memory_order_relaxed);
  // Randomized reset around the mean interval so periodic allocation
  // patterns cannot alias with the sampling grid.
  g_heap_countdown = static_cast<std::int64_t>(interval / 2 +
                                               NextRand(ptr) % (interval + 1));

  std::uintptr_t frames[HeapProfiler::kMaxFrames];
  const std::size_t depth = CaptureStack(frames, HeapProfiler::kMaxFrames);
  const std::uint64_t key = HashFrames(frames, depth);
  const std::uint64_t weight =
      std::max<std::uint64_t>(size, interval);
  const ProfileTag tag = profiler::internal::g_tag;

  Tables& t = GetTables();
  {
    const std::lock_guard<std::mutex> lock(t.sites_mu);
    HeapSiteStats& site = t.sites[key];
    if (site.frames.empty() && depth > 0) {
      site.frames.assign(frames, frames + depth);
      site.round = tag.round;
      site.phase = tag.phase;
      site.actor = tag.actor;
    }
    site.live_bytes += weight;
    site.live_count += 1;
    site.total_bytes += weight;
    site.total_count += 1;
  }

  PtrInfo replaced;
  bool had_replaced = false;
  {
    Shard& shard = t.shards[ShardOf(ptr)];
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.ptrs.try_emplace(ptr, PtrInfo{key, weight});
    const std::uint64_t bit = PtrFilterBit(ptr);
    g_ptr_filter[bit >> 6].fetch_or(std::uint64_t{1} << (bit & 63),
                                    std::memory_order_relaxed);
    if (!inserted) {
      // The allocator reused an address whose free we never saw (profiler
      // was disabled across the free). Evict the stale entry's charge.
      replaced = it->second;
      had_replaced = true;
      it->second = PtrInfo{key, weight};
    } else {
      g_heap_live_tracked.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (had_replaced) {
    const std::lock_guard<std::mutex> lock(t.sites_mu);
    auto it = t.sites.find(replaced.site_key);
    if (it != t.sites.end()) {
      it->second.live_bytes -= std::min(it->second.live_bytes,
                                        replaced.weight_bytes);
      if (it->second.live_count > 0) it->second.live_count -= 1;
    }
  }
  g_samples.fetch_add(1, std::memory_order_relaxed);
  g_in_hook = false;
}

void HeapFreeHook(void* ptr) {
  if (g_in_hook || ptr == nullptr) return;
  g_in_hook = true;
  Tables& t = GetTables();
  PtrInfo info;
  bool found = false;
  {
    Shard& shard = t.shards[ShardOf(ptr)];
    const std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.ptrs.find(ptr);
    if (it != shard.ptrs.end()) {
      info = it->second;
      found = true;
      shard.ptrs.erase(it);
      g_heap_live_tracked.fetch_sub(1, std::memory_order_relaxed);
    }
  }
  if (found) {
    const std::lock_guard<std::mutex> lock(t.sites_mu);
    auto it = t.sites.find(info.site_key);
    if (it != t.sites.end()) {
      it->second.live_bytes -= std::min(it->second.live_bytes,
                                        info.weight_bytes);
      if (it->second.live_count > 0) it->second.live_count -= 1;
    }
    g_frees_matched.fetch_add(1, std::memory_order_relaxed);
  }
  g_in_hook = false;
}

}  // namespace internal

}  // namespace fl::profiler

#else  // FL_PROFILER_DISABLED

namespace fl::profiler {

HeapProfiler& HeapProfiler::Global() {
  static HeapProfiler* const profiler = new HeapProfiler();
  return *profiler;
}
void HeapProfiler::SetSamplingInterval(std::size_t) {}
std::size_t HeapProfiler::sampling_interval() const { return 0; }
void HeapProfiler::MaybeSample(void*, std::size_t) {}
void HeapProfiler::OnFree(void*) {}
std::vector<HeapSiteStats> HeapProfiler::Snapshot() const { return {}; }
std::uint64_t HeapProfiler::samples_taken() const { return 0; }
std::uint64_t HeapProfiler::frees_matched() const { return 0; }
void HeapProfiler::Reset() {}

}  // namespace fl::profiler

#endif  // FL_PROFILER_DISABLED
