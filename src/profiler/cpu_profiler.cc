#include "src/profiler/cpu_profiler.h"

#ifndef FL_PROFILER_DISABLED

#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstring>
#include <mutex>

namespace fl::profiler {
namespace {

// ---------------------------------------------------------------------------
// Ring storage. All memory is allocated once, in normal context, before the
// timer is armed; the signal handler only ever loads pointers that were
// published with release stores.
//
// Slot layout (kWordsPerSlot atomic u64 words):
//   [0] seq (0 = invalid)           -- the seqlock word
//   [1] round | phase<<32 | actor<<40 | depth<<48
//   [2..2+depth) frames, leaf first
// ---------------------------------------------------------------------------
constexpr std::size_t kWordsPerSlot = 2 + CpuProfiler::kMaxFrames;

struct Ring {
  std::atomic<std::uint64_t> words[CpuProfiler::kSlotsPerRing * kWordsPerSlot];
  // Owner (signal handler on the claiming thread) only.
  std::uint64_t write_index = 0;
};

std::atomic<Ring*> g_rings[CpuProfiler::kMaxRings] = {};
std::atomic<std::size_t> g_ring_claim{0};
std::atomic<bool> g_rings_allocated{false};

std::atomic<std::uint64_t> g_next_seq{1};
std::atomic<std::uint64_t> g_samples{0};
std::atomic<std::uint64_t> g_truncated{0};
std::atomic<std::uint64_t> g_overflow_drops{0};

std::atomic<bool> g_running{false};
std::atomic<int> g_hz{0};
std::atomic<bool> g_handler_installed{false};

// Per-thread ring index: -1 = unclaimed, -2 = claim failed (table full).
// Namespace-scope constant initialization keeps the TLS access guard-free,
// which is what makes it legal inside the signal handler.
thread_local int g_my_ring = -1;

// Claims a ring slot for the calling thread. Safe in signal context: one
// fetch_add plus an acquire load of a preallocated pointer.
inline Ring* ThisThreadRing() {
  int idx = g_my_ring;
  if (idx == -2) return nullptr;
  if (idx < 0) {
    const std::size_t claim =
        g_ring_claim.fetch_add(1, std::memory_order_relaxed);
    if (claim >= CpuProfiler::kMaxRings) {
      g_my_ring = -2;
      return nullptr;
    }
    g_my_ring = idx = static_cast<int>(claim);
  }
  return g_rings[idx].load(std::memory_order_acquire);
}

// ---------------------------------------------------------------------------
// Frame-pointer unwinder. Returns the number of frames written (leaf PC
// first). Purely arithmetic + loads from the interrupted thread's own stack
// region: every dereference is bounds-checked against [sp, sp + 8 MiB)
// (stacks grow down, so live frame records sit above the interrupted sp and
// below the stack top) and 8-byte alignment, so a broken chain (a frame
// from a -fomit-frame-pointer libc leaf) terminates the walk instead of
// faulting.
// ---------------------------------------------------------------------------
constexpr std::uintptr_t kMaxStackSpan = std::uintptr_t{8} << 20;

std::size_t UnwindFromContext(void* ucontext_raw,
                              std::uintptr_t* frames,
                              std::size_t max_frames,
                              bool* truncated) {
  const ucontext_t* uc = static_cast<const ucontext_t*>(ucontext_raw);
  std::uintptr_t pc = 0, fp = 0, sp = 0;
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
  sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#else
  (void)uc;
#endif
  std::size_t n = 0;
  if (pc != 0 && n < max_frames) frames[n++] = pc;
  if (sp == 0) return n;
  const std::uintptr_t bottom = sp;
  const std::uintptr_t top = sp + kMaxStackSpan;
  while (n < max_frames) {
    if (fp < bottom || fp + 2 * sizeof(std::uintptr_t) > top ||
        (fp & (sizeof(std::uintptr_t) - 1)) != 0) {
      return n;
    }
    const std::uintptr_t next_fp =
        *reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret =
        *reinterpret_cast<const std::uintptr_t*>(fp + sizeof(std::uintptr_t));
    if (ret < 4096) return n;  // null / bogus return address
    frames[n++] = ret;
    if (next_fp <= fp) return n;  // frame chains must move up the stack
    fp = next_fp;
  }
  *truncated = true;
  return n;
}

// Writes one sample into the calling thread's ring. Shared by the signal
// handler and RecordSynthetic so tests exercise the production write path.
void WriteSample(const std::uintptr_t* frames, std::size_t depth) {
  Ring* ring = ThisThreadRing();
  if (ring == nullptr) {
    g_overflow_drops.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (depth > CpuProfiler::kMaxFrames) depth = CpuProfiler::kMaxFrames;
  const std::uint64_t seq = g_next_seq.fetch_add(1, std::memory_order_relaxed);
  const ProfileTag tag = internal::g_tag;
  const std::uint64_t packed =
      static_cast<std::uint64_t>(tag.round) |
      (static_cast<std::uint64_t>(tag.phase) << 32) |
      (static_cast<std::uint64_t>(tag.actor) << 40) |
      (static_cast<std::uint64_t>(depth) << 48);
  const std::size_t slot = ring->write_index++ % CpuProfiler::kSlotsPerRing;
  std::atomic<std::uint64_t>* w = &ring->words[slot * kWordsPerSlot];
  // Single-writer seqlock: invalidate, payload (relaxed), publish (release).
  w[0].store(0, std::memory_order_release);
  w[1].store(packed, std::memory_order_relaxed);
  for (std::size_t i = 0; i < depth; ++i) {
    w[2 + i].store(static_cast<std::uint64_t>(frames[i]),
                   std::memory_order_relaxed);
  }
  w[0].store(seq, std::memory_order_release);
  g_samples.fetch_add(1, std::memory_order_relaxed);
}

void SigProfHandler(int /*sig*/, siginfo_t* /*info*/, void* ucontext_raw) {
  // A sample between Stop() and timer drain is harmless; taking it keeps
  // the handler branch-light. Preserve errno for the interrupted code.
  const int saved_errno = errno;
  std::uintptr_t frames[CpuProfiler::kMaxFrames];
  bool truncated = false;
  const std::size_t depth = UnwindFromContext(
      ucontext_raw, frames, CpuProfiler::kMaxFrames, &truncated);
  if (truncated) g_truncated.fetch_add(1, std::memory_order_relaxed);
  if (depth > 0) WriteSample(frames, depth);
  errno = saved_errno;
}

// Reads one slot via the seqlock; false when invalid or mid-rewrite.
bool ReadSlot(const Ring& ring, std::size_t slot, CpuSample* out) {
  const std::atomic<std::uint64_t>* w = &ring.words[slot * kWordsPerSlot];
  const std::uint64_t s1 = w[0].load(std::memory_order_acquire);
  if (s1 == 0) return false;
  const std::uint64_t packed = w[1].load(std::memory_order_relaxed);
  const std::size_t depth =
      std::min<std::size_t>(packed >> 48, CpuProfiler::kMaxFrames);
  std::uintptr_t frames[CpuProfiler::kMaxFrames];
  for (std::size_t i = 0; i < depth; ++i) {
    frames[i] =
        static_cast<std::uintptr_t>(w[2 + i].load(std::memory_order_relaxed));
  }
  std::atomic_thread_fence(std::memory_order_acquire);
  if (w[0].load(std::memory_order_relaxed) != s1) return false;
  out->seq = s1;
  out->round = static_cast<std::uint32_t>(packed & 0xffffffffu);
  out->phase = static_cast<std::uint8_t>((packed >> 32) & 0xffu);
  out->actor = static_cast<std::uint8_t>((packed >> 40) & 0xffu);
  out->frames.assign(frames, frames + depth);
  return true;
}

// Async-signal-safe formatting helpers for DumpRawToFd.
std::size_t AppendHex(char* buf, std::uintptr_t v) {
  char tmp[2 * sizeof(v)];
  std::size_t n = 0;
  do {
    tmp[n++] = "0123456789abcdef"[v & 0xf];
    v >>= 4;
  } while (v != 0);
  buf[0] = '0';
  buf[1] = 'x';
  for (std::size_t i = 0; i < n; ++i) buf[2 + i] = tmp[n - 1 - i];
  return 2 + n;
}

std::size_t AppendDec(char* buf, std::uint64_t v) {
  char tmp[20];
  std::size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  for (std::size_t i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

std::size_t AppendStr(char* buf, const char* s) {
  std::size_t n = 0;
  while (s[n] != '\0') {
    buf[n] = s[n];
    ++n;
  }
  return n;
}

}  // namespace

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* const profiler = new CpuProfiler();  // leaked
  return *profiler;
}

Status CpuProfiler::Start(int hz) {
  if (hz <= 0 || hz > kMaxHz) {
    return InvalidArgumentError("cpu profiler hz out of range");
  }
  bool expected = false;
  if (!g_running.compare_exchange_strong(expected, true)) {
    return FailedPreconditionError("cpu profiler already running");
  }
  if (!g_rings_allocated.load(std::memory_order_acquire)) {
    for (std::size_t i = 0; i < kMaxRings; ++i) {
      // Zero-initialized: every slot starts with seq 0 = invalid.
      g_rings[i].store(new Ring(), std::memory_order_release);
    }
    g_rings_allocated.store(true, std::memory_order_release);
  }
  if (!g_handler_installed.load(std::memory_order_acquire)) {
    struct sigaction sa{};
    sa.sa_sigaction = SigProfHandler;
    sigemptyset(&sa.sa_mask);
    // SA_RESTART: a sample landing inside accept/read must not surface
    // EINTR to the ops-plane sockets.
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    if (::sigaction(SIGPROF, &sa, nullptr) != 0) {
      g_running.store(false, std::memory_order_release);
      return Status{ErrorCode::kUnavailable, "sigaction(SIGPROF) failed"};
    }
    g_handler_installed.store(true, std::memory_order_release);
  }
  g_hz.store(hz, std::memory_order_relaxed);
  itimerval timer{};
  const long interval_us = std::max<long>(1, 1'000'000L / hz);
  timer.it_interval.tv_sec = interval_us / 1'000'000;
  timer.it_interval.tv_usec = interval_us % 1'000'000;
  timer.it_value = timer.it_interval;
  if (::setitimer(ITIMER_PROF, &timer, nullptr) != 0) {
    g_running.store(false, std::memory_order_release);
    return Status{ErrorCode::kUnavailable, "setitimer(ITIMER_PROF) failed"};
  }
  return Status::Ok();
}

void CpuProfiler::Stop() {
  if (!g_running.exchange(false)) return;
  itimerval off{};
  (void)::setitimer(ITIMER_PROF, &off, nullptr);
  g_hz.store(0, std::memory_order_relaxed);
}

bool CpuProfiler::running() const {
  return g_running.load(std::memory_order_acquire);
}
int CpuProfiler::hz() const { return g_hz.load(std::memory_order_relaxed); }
std::uint64_t CpuProfiler::samples_taken() const {
  return g_samples.load(std::memory_order_relaxed);
}
std::uint64_t CpuProfiler::unwind_truncated() const {
  return g_truncated.load(std::memory_order_relaxed);
}
std::uint64_t CpuProfiler::ring_overflow_drops() const {
  return g_overflow_drops.load(std::memory_order_relaxed);
}
std::uint64_t CpuProfiler::last_seq() const {
  return g_next_seq.load(std::memory_order_relaxed) - 1;
}
std::size_t CpuProfiler::rings_registered() const {
  return std::min<std::size_t>(g_ring_claim.load(std::memory_order_relaxed),
                               kMaxRings);
}

std::vector<CpuSample> CpuProfiler::CollectSince(std::uint64_t min_seq) const {
  std::vector<CpuSample> out;
  if (!g_rings_allocated.load(std::memory_order_acquire)) return out;
  for (std::size_t r = 0; r < kMaxRings; ++r) {
    const Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t s = 0; s < kSlotsPerRing; ++s) {
      CpuSample sample;
      if (ReadSlot(*ring, s, &sample) && sample.seq > min_seq) {
        out.push_back(std::move(sample));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const CpuSample& a, const CpuSample& b) { return a.seq < b.seq; });
  return out;
}

std::size_t CpuProfiler::DumpRawToFd(int fd, std::uint64_t min_seq) const {
  if (!g_rings_allocated.load(std::memory_order_acquire)) return 0;
  std::size_t total = 0;
  // Worst case per line: 48 frames x ~19 chars + tags; 1400 is generous.
  char line[1400];
  for (std::size_t r = 0; r < kMaxRings; ++r) {
    const Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t s = 0; s < kSlotsPerRing; ++s) {
      // Signal context: reuse the seqlock read but into fixed storage.
      const std::atomic<std::uint64_t>* w = &ring->words[s * kWordsPerSlot];
      const std::uint64_t s1 = w[0].load(std::memory_order_acquire);
      if (s1 == 0 || s1 <= min_seq) continue;
      const std::uint64_t packed = w[1].load(std::memory_order_relaxed);
      const std::size_t depth = std::min<std::size_t>(packed >> 48, kMaxFrames);
      std::uintptr_t frames[kMaxFrames];
      for (std::size_t i = 0; i < depth; ++i) {
        frames[i] = static_cast<std::uintptr_t>(
            w[2 + i].load(std::memory_order_relaxed));
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (w[0].load(std::memory_order_relaxed) != s1) continue;
      std::size_t n = 0;
      for (std::size_t i = 0; i < depth && n + 24 < sizeof(line); ++i) {
        if (i > 0) line[n++] = ';';
        n += AppendHex(line + n, frames[i]);
      }
      n += AppendStr(line + n, " phase=");
      n += AppendStr(line + n,
                     PhaseName(static_cast<Phase>(
                         std::min<std::uint64_t>((packed >> 32) & 0xff,
                                                 static_cast<std::uint64_t>(
                                                     Phase::kCount)))));
      n += AppendStr(line + n, " actor=");
      const std::uint64_t actor = (packed >> 40) & 0xff;
      n += AppendStr(line + n,
                     ActorTagName(actor <= 5 ? static_cast<ActorTag>(actor)
                                             : ActorTag::kOther));
      n += AppendStr(line + n, " round=");
      n += AppendDec(line + n, packed & 0xffffffffu);
      line[n++] = '\n';
      ssize_t written = ::write(fd, line, n);
      if (written > 0) total += static_cast<std::size_t>(written);
    }
  }
  return total;
}

void CpuProfiler::RecordSynthetic(const std::uintptr_t* frames,
                                  std::size_t depth) {
  // Rings may not exist yet when no Start() ran (tests drive this path
  // directly); allocate them exactly as Start() would.
  if (!g_rings_allocated.load(std::memory_order_acquire)) {
    static std::mutex* const mu = new std::mutex();
    const std::lock_guard<std::mutex> lock(*mu);
    if (!g_rings_allocated.load(std::memory_order_acquire)) {
      for (std::size_t i = 0; i < kMaxRings; ++i) {
        g_rings[i].store(new Ring(), std::memory_order_release);
      }
      g_rings_allocated.store(true, std::memory_order_release);
    }
  }
  WriteSample(frames, depth);
}

void CpuProfiler::ClearForTest() {
  if (!g_rings_allocated.load(std::memory_order_acquire)) return;
  for (std::size_t r = 0; r < kMaxRings; ++r) {
    Ring* ring = g_rings[r].load(std::memory_order_acquire);
    if (ring == nullptr) continue;
    for (std::size_t s = 0; s < kSlotsPerRing; ++s) {
      ring->words[s * kWordsPerSlot].store(0, std::memory_order_release);
    }
  }
  g_samples.store(0, std::memory_order_relaxed);
  g_truncated.store(0, std::memory_order_relaxed);
  g_overflow_drops.store(0, std::memory_order_relaxed);
}

}  // namespace fl::profiler

#else  // FL_PROFILER_DISABLED

namespace fl::profiler {

CpuProfiler& CpuProfiler::Global() {
  static CpuProfiler* const profiler = new CpuProfiler();
  return *profiler;
}
Status CpuProfiler::Start(int) {
  return UnimplementedError("profiler compiled out (FL_PROFILER=OFF)");
}
void CpuProfiler::Stop() {}
bool CpuProfiler::running() const { return false; }
int CpuProfiler::hz() const { return 0; }
std::uint64_t CpuProfiler::samples_taken() const { return 0; }
std::uint64_t CpuProfiler::unwind_truncated() const { return 0; }
std::uint64_t CpuProfiler::ring_overflow_drops() const { return 0; }
std::uint64_t CpuProfiler::last_seq() const { return 0; }
std::size_t CpuProfiler::rings_registered() const { return 0; }
std::vector<CpuSample> CpuProfiler::CollectSince(std::uint64_t) const {
  return {};
}
std::size_t CpuProfiler::DumpRawToFd(int, std::uint64_t) const { return 0; }
void CpuProfiler::RecordSynthetic(const std::uintptr_t*, std::size_t) {}
void CpuProfiler::ClearForTest() {}

}  // namespace fl::profiler

#endif  // FL_PROFILER_DISABLED
