// Sampled heap profiler: the operator new/delete replacements in
// heap_hooks.cc tap every allocation, but only *record* roughly one per
// `sampling_interval` bytes (a thread-local byte countdown with randomized
// resets, the tcmalloc heap-sampling design). A recorded allocation captures
// the caller's stack by frame-pointer walk, charges it to an allocation
// site keyed by the stack hash, and registers the pointer so the matching
// delete can decrement live bytes. Each site also remembers the ProfileTag
// (round/phase/actor) active at allocation time, so heap profiles slice by
// FL phase exactly like CPU profiles.
//
// Cost model:
//  * Profiler disabled: one relaxed load per new/delete — the compiled-in-
//    but-off state the 2% fleet gate covers.
//  * Enabled, unsampled allocation: the load plus a thread-local counter
//    decrement. Enabled free: one relaxed load plus one bit test in a
//    sticky pointer filter; only (rare) filter hits probe the sharded map.
//  * Sampled allocation (1 per ~sampling_interval bytes): stack walk +
//    mutex-guarded table insert. Re-entrant allocations from the tables
//    themselves are cut off by a thread-local in-hook flag.
//
// Signal-safety interaction: the SIGPROF handler never touches these tables
// or their mutexes, and the hook never blocks on anything the handler
// holds, so a sample landing inside malloc (or inside this bookkeeping)
// cannot deadlock — the property the fork stress test hammers.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/profiler/profiler.h"

namespace fl::profiler {

// Aggregated per-allocation-site statistics, in "estimated actual bytes":
// each sampled allocation of `size` bytes stands in for ~max(size,
// interval) bytes of real traffic, the standard unbiased-enough scaling.
struct HeapSiteStats {
  std::vector<std::uintptr_t> frames;  // allocation site, leaf first
  std::uint64_t live_bytes = 0;        // estimated live bytes right now
  std::uint64_t live_count = 0;        // sampled allocations still live
  std::uint64_t total_bytes = 0;       // estimated bytes ever allocated
  std::uint64_t total_count = 0;       // sampled allocations ever
  std::uint32_t round = 0;             // tag at first sample of this site
  std::uint8_t phase = 0;
  std::uint8_t actor = 0;
};

class HeapProfiler {
 public:
  static constexpr std::size_t kDefaultSamplingInterval = 256 * 1024;
  static constexpr std::size_t kMaxFrames = 32;

  static HeapProfiler& Global();

  // Mean bytes between samples. Takes effect for countdowns reset after the
  // call; safe while active.
  void SetSamplingInterval(std::size_t bytes);
  std::size_t sampling_interval() const;

  // Hook entry points, called from operator new/delete (heap_hooks.cc)
  // after the Enabled() gate. `MaybeSample` is the slow path once a
  // thread's countdown crosses zero.
  void MaybeSample(void* ptr, std::size_t size);
  void OnFree(void* ptr);

  // Point-in-time site table, heaviest live_bytes first. Allocates (normal
  // context only; the snapshot itself is excluded from sampling via the
  // in-hook flag).
  std::vector<HeapSiteStats> Snapshot() const;

  std::uint64_t samples_taken() const;
  std::uint64_t frees_matched() const;

  // Drops all sites and tracked pointers (tests / bench isolation).
  void Reset();

 private:
  HeapProfiler() = default;
};

namespace internal {

#ifndef FL_PROFILER_DISABLED
// Number of pointers currently registered in the sampled-pointer table.
// Header-inline so operator delete's fast path ("nothing sampled, skip the
// lookup") is one inlined relaxed load.
inline std::atomic<std::uint64_t> g_heap_live_tracked{0};

// Sticky membership filter over sampled pointers: the bit for a pointer is
// set when it is registered and only cleared by Reset (several pointers may
// share a bit). operator delete tests one bit and skips the shard-table
// probe on a miss — without this, one long-lived sample makes every free in
// the process pay a mutex + hash lookup. 64 KiB = 2^19 bits; thousands of
// live samples still leave the false-hit rate under 1%.
inline constexpr std::size_t kPtrFilterWords = 8192;
inline std::atomic<std::uint64_t> g_ptr_filter[kPtrFilterWords]{};

inline std::uint64_t PtrFilterBit(void* p) {
  std::uint64_t h = static_cast<std::uint64_t>(
      reinterpret_cast<std::uintptr_t>(p) >> 4);
  h *= 0x9e3779b97f4a7c15ull;  // Fibonacci mix: decorrelate allocator strides
  return h >> 45;              // top 19 bits -> [0, 2^19)
}

inline bool HeapFreeHookNeeded(void* p) {
  if (g_heap_live_tracked.load(std::memory_order_relaxed) == 0) return false;
  const std::uint64_t bit = PtrFilterBit(p);
  return (g_ptr_filter[bit >> 6].load(std::memory_order_relaxed) &
          (std::uint64_t{1} << (bit & 63))) != 0;
}

// Bytes until this thread's next sample; <= 0 means "sample now" (0 = the
// first allocation on a thread samples immediately, seeding the site table
// fast without measurably biasing the steady state). Header-inline so the
// per-allocation enabled fast path — decrement, branch — inlines into
// operator new instead of paying a call per allocation.
inline thread_local std::int64_t g_heap_countdown = 0;

// Out-of-line slow paths (heap_profiler.cc): stack capture, site/pointer
// table maintenance. Only called when Enabled() (for allocs) or
// HeapFreeHookNeeded() (for frees) already passed.
void HeapSampleSlow(void* ptr, std::size_t size);
void HeapFreeHook(void* ptr);

inline void HeapAllocHook(void* ptr, std::size_t size) {
  g_heap_countdown -= static_cast<std::int64_t>(size);
  if (g_heap_countdown > 0) return;
  HeapSampleSlow(ptr, size);
}
#endif

}  // namespace internal

}  // namespace fl::profiler
