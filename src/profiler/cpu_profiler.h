// Sampling CPU profiler: ITIMER_PROF fires SIGPROF on whichever thread is
// burning CPU; an async-signal-safe frame-pointer unwinder walks the stack
// and writes the PCs plus the thread's ProfileTag into a per-thread
// lock-free sample ring (the same single-writer seqlock discipline as the
// flight recorder). Collection, symbolization and folding all happen in
// normal context (src/analytics/profile.h).
//
// Signal-handler contract (the whole design hangs on this):
//  * No allocation, no locking, no syscalls on the sample path. The handler
//    reads the interrupted thread's register state from the ucontext, walks
//    frame pointers with bounds/alignment checks (the build compiles with
//    -fno-omit-frame-pointer when FL_PROFILER=ON), and performs only
//    relaxed/release atomic stores into preallocated ring memory.
//  * Ring claiming is a single fetch_add on a preallocated ring-pointer
//    table; threads beyond kMaxRings drop their samples (counted).
//  * SIGPROF is blocked during delivery (sigaction default), so the handler
//    never races itself on a thread; writer-vs-reader races are covered by
//    the per-slot seqlock.
//
// The profiler is continuous: Start() arms the timer and samples flow into
// the rings until Stop(). Readers (/profilez, the diagnostic bundler, the
// fatal-signal dump) window the stream by global sample seq.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/profiler/profiler.h"

namespace fl::profiler {

// One collected sample (normal-context representation).
struct CpuSample {
  std::uint64_t seq = 0;
  std::uint32_t round = 0;
  std::uint8_t phase = 0;  // Phase
  std::uint8_t actor = 0;  // ActorTag
  std::vector<std::uintptr_t> frames;  // leaf (interrupted PC) first
};

class CpuProfiler {
 public:
  static constexpr int kDefaultHz = 100;
  static constexpr int kMaxHz = 4000;
  // 48 frames covers the deepest actor->handler->fedavg chains observed;
  // deeper stacks are truncated (counted, not dropped).
  static constexpr std::size_t kMaxFrames = 48;
  static constexpr std::size_t kMaxRings = 32;
  // 1024 slots/ring = ~10 s of history per thread at the default 100 Hz;
  // readers poll faster than the ring laps.
  static constexpr std::size_t kSlotsPerRing = 1024;

  static CpuProfiler& Global();

  // Installs the SIGPROF handler and arms ITIMER_PROF at `hz`. Idempotent
  // while running (returns kFailedPrecondition). Ring memory (~13 MiB for
  // 32 rings) is allocated on first Start and retained for process
  // lifetime so the signal handler never observes deallocation.
  Status Start(int hz = kDefaultHz);

  // Disarms the timer. Samples already in the rings stay readable. The
  // handler stays installed (a late in-flight SIGPROF must find it).
  void Stop();

  bool running() const;
  int hz() const;

  std::uint64_t samples_taken() const;
  std::uint64_t unwind_truncated() const;
  // Samples dropped because more than kMaxRings threads took signals.
  std::uint64_t ring_overflow_drops() const;
  // Highest sample seq issued so far; window captures bracket with this.
  std::uint64_t last_seq() const;
  std::size_t rings_registered() const;

  // Every currently-valid sample with seq > min_seq, sorted by seq.
  // Allocates; normal context only.
  std::vector<CpuSample> CollectSince(std::uint64_t min_seq = 0) const;

  // Async-signal-safe raw dump for the fatal-signal path: one line per
  // valid sample with seq > min_seq:
  //   0x<leaf>;0x<caller>;... phase=<name> actor=<name> round=<n>
  // Uses only write(2) and stack buffers. Returns bytes written. Addresses
  // are unsymbolized; pair the dump with /proc/self/maps for offline
  // resolution (the crash handler writes both).
  std::size_t DumpRawToFd(int fd, std::uint64_t min_seq = 0) const;

  // Runs the exact slot-write path the signal handler uses, from normal
  // context, against the calling thread's ring. Lets tests (and the TSan
  // job) drive writer/reader concurrency deterministically without timers.
  void RecordSynthetic(const std::uintptr_t* frames, std::size_t depth);

  // Invalidates all slots and resets counters (tests only; not synchronized
  // against a running timer — call after Stop()).
  void ClearForTest();

 private:
  CpuProfiler() = default;
};

}  // namespace fl::profiler
