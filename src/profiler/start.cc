#include "src/profiler/start.h"

#include <cstdlib>

#include "src/profiler/cpu_profiler.h"
#include "src/profiler/heap_profiler.h"
#include "src/profiler/profiler.h"

namespace fl::profiler {

Status StartFromEnv() {
  if (!Enabled()) return Status::Ok();
#ifdef FL_PROFILER_DISABLED
  return Status::Ok();
#else
  if (const char* env = std::getenv("FL_PROFILER_HEAP_INTERVAL")) {
    const long bytes = std::strtol(env, nullptr, 10);
    if (bytes > 0) {
      HeapProfiler::Global().SetSamplingInterval(
          static_cast<std::size_t>(bytes));
    }
  }
  int hz = CpuProfiler::kDefaultHz;
  if (const char* env = std::getenv("FL_PROFILER_HZ")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed == 0 && env[0] == '0') {
      return Status::Ok();  // heap-only: sample allocations, no CPU sampler
    }
    if (parsed > 0) {
      hz = static_cast<int>(parsed > CpuProfiler::kMaxHz ? CpuProfiler::kMaxHz
                                                         : parsed);
    }
  }
  CpuProfiler& cpu = CpuProfiler::Global();
  if (cpu.running()) return Status::Ok();
  return cpu.Start(hz);
#endif
}

void StopAll() {
#ifndef FL_PROFILER_DISABLED
  CpuProfiler::Global().Stop();
#endif
}

}  // namespace fl::profiler
