// Actor runtime — the concurrency substrate of the FL server (Sec. 4.1):
// "Actors are universal primitives of concurrent computation which use
// message passing as the sole communication mechanism. Each actor handles a
// stream of messages/events strictly sequentially."
//
// Properties reproduced from the paper:
//  * strictly-sequential per-actor message processing (a mailbox drained by
//    at most one execution at a time, on any ExecutionContext);
//  * dynamic creation of fine-grained ephemeral actors (Master Aggregators
//    and Aggregators live only for one FL task / round, Sec. 4.2);
//  * all state in memory — killing an actor loses its state, which is
//    exactly the failure model Sec. 4.4 analyses;
//  * death watches so peers can observe failures and respawn (Selector layer
//    detecting Coordinator death).
#pragma once

#include <any>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/actor/context.h"
#include "src/common/id.h"
#include "src/common/status.h"
#include "src/profiler/profiler.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace_context.h"

namespace fl::actor {

class ActorSystem;

struct Envelope {
  ActorId from;
  ActorId to;
  std::any payload;
  // Causal context captured from the sender at Send() time; installed as
  // the thread's ambient context around the receiver's OnMessage so spans
  // and flight records on both sides link into one tree.
  telemetry::TraceContext trace;
};

// Base class for all actors. Subclasses implement OnMessage; handlers run
// strictly sequentially per actor instance.
class Actor {
 public:
  virtual ~Actor() = default;

  ActorId id() const { return id_; }
  const std::string& name() const { return name_; }
  ActorSystem& system() const { return *system_; }

  // Invoked once after registration, before any message.
  virtual void OnStart() {}
  // Invoked on a clean stop (not on Crash).
  virtual void OnStop() {}
  virtual void OnMessage(const Envelope& env) = 0;

 protected:
  // Convenience wrappers (defined in actor.cc to avoid circular includes).
  void Send(ActorId to, std::any payload);
  void SendAfter(Duration d, ActorId to, std::any payload);
  SimTime Now() const;

 private:
  friend class ActorSystem;
  ActorId id_;
  std::string name_;
  ActorSystem* system_ = nullptr;
};

// Message delivered to watchers when a watched actor terminates.
struct DeathNotice {
  ActorId died;
  bool crashed = false;  // true for Crash(), false for Stop()
};

// Owns actors and routes messages between them on an ExecutionContext.
class ActorSystem {
 public:
  explicit ActorSystem(ExecutionContext& context) : context_(context) {}

  // Creates, registers and starts an actor. The system owns it.
  template <typename T, typename... Args>
  ActorId Spawn(std::string name, Args&&... args) {
    auto actor = std::make_unique<T>(std::forward<Args>(args)...);
    return Register(std::move(actor), std::move(name));
  }

  // Sends a message; silently dropped if `to` is dead (the paper's protocol
  // treats lost actors as lost devices/rounds, not as errors).
  void Send(ActorId from, ActorId to, std::any payload);
  void SendAfter(Duration d, ActorId from, ActorId to, std::any payload);

  // Graceful stop: runs OnStop, then notifies watchers.
  void Stop(ActorId id);
  // Simulated failure: no OnStop, state dropped, watchers see crashed=true.
  void Crash(ActorId id);

  // `watcher` receives a DeathNotice when `watched` terminates.
  void Watch(ActorId watched, ActorId watcher);

  bool IsAlive(ActorId id) const;
  std::size_t live_actors() const;
  std::uint64_t messages_delivered() const { return delivered_; }

  ExecutionContext& context() { return context_; }
  SimTime now() const { return context_.now(); }

  // Direct (typed) access for tests and wiring; nullptr when dead.
  // Only safe on the SimContext (single-threaded) — the pointer is not
  // protected against concurrent termination on a thread pool.
  template <typename T>
  T* Get(ActorId id) {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(id);
    if (it == actors_.end() || it->second->dead) return nullptr;
    return dynamic_cast<T*>(it->second->actor.get());
  }

 private:
  struct Entry {
    std::unique_ptr<Actor> actor;
    std::deque<Envelope> mailbox;
    bool draining = false;
    bool dead = false;
    std::vector<ActorId> watchers;
    // Telemetry (Sec. 5): per-actor-type dispatch instruments, resolved
    // lazily on first use so registration order vs. SetEnabled() never
    // matters. Atomic because Drain may run on a ThreadPoolContext; both
    // racers resolve to the same registry pointer.
    std::string metric_type;  // sanitized type slug, e.g. "aggregator"
    std::atomic<telemetry::Counter*> msg_counter{nullptr};
    std::atomic<telemetry::Histogram*> dispatch_hist{nullptr};
    // Profiler actor tag (derived from metric_type at spawn); samples taken
    // inside OnMessage attribute to this component.
    profiler::ActorTag profile_tag = profiler::ActorTag::kOther;
  };

  ActorId Register(std::unique_ptr<Actor> actor, std::string name);
  void ScheduleDrain(ActorId id, const std::shared_ptr<Entry>& entry);
  void Drain(const std::shared_ptr<Entry>& entry);
  void Terminate(ActorId id, bool crashed);

  ExecutionContext& context_;
  mutable std::mutex mu_;
  std::unordered_map<ActorId, std::shared_ptr<Entry>> actors_;
  std::uint64_t next_actor_id_ = 1;
  std::uint64_t delivered_ = 0;
};

}  // namespace fl::actor
