#include "src/actor/actor.h"

#include "src/profiler/profiler.h"
#include "src/telemetry/telemetry.h"
#include "src/telemetry/trace.h"

namespace fl::actor {
namespace {

// Maps the metric type slug onto the profiler's actor-tag vocabulary so
// samples taken inside OnMessage attribute to the server component.
profiler::ActorTag ProfilerTagFor(const std::string& metric_type) {
  if (metric_type == "coordinator") return profiler::ActorTag::kCoordinator;
  if (metric_type == "selector") return profiler::ActorTag::kSelector;
  if (metric_type == "master_aggregator") {
    return profiler::ActorTag::kMasterAggregator;
  }
  if (metric_type == "aggregator") return profiler::ActorTag::kAggregator;
  return profiler::ActorTag::kOther;
}

// Actor "type" for metric names: the leading alphabetic segments of the
// instance name, so "aggregator-r12-0" and "aggregator-r13-4" share the
// series "aggregator" while "selector-0" maps to "selector".
std::string ActorType(const std::string& name) {
  std::string type;
  std::size_t start = 0;
  while (start < name.size()) {
    std::size_t end = name.find('-', start);
    if (end == std::string::npos) end = name.size();
    const std::string_view segment(name.data() + start, end - start);
    bool has_digit = false;
    for (char c : segment) {
      if (c >= '0' && c <= '9') has_digit = true;
    }
    if (segment.empty() || has_digit) break;
    if (!type.empty()) type += '_';
    type += segment;
    start = end + 1;
  }
  if (type.empty()) type = "actor";
  return telemetry::MetricsRegistry::Sanitize(type);
}

// Mailbox depth observed at every enqueue — the leading indicator of an
// actor falling behind its message stream.
telemetry::Histogram* MailboxDepthHistogram() {
  static telemetry::Histogram* const hist =
      telemetry::MetricsRegistry::Global().GetHistogram(
          "fl_actor_mailbox_depth",
          telemetry::HistogramOptions{1.0, 2.0, 16});
  return hist;
}

}  // namespace

void Actor::Send(ActorId to, std::any payload) {
  system_->Send(id_, to, std::move(payload));
}

void Actor::SendAfter(Duration d, ActorId to, std::any payload) {
  system_->SendAfter(d, id_, to, std::move(payload));
}

SimTime Actor::Now() const { return system_->now(); }

ActorId ActorSystem::Register(std::unique_ptr<Actor> actor,
                              std::string name) {
  Actor* raw = actor.get();
  ActorId id;
  {
    const std::scoped_lock lock(mu_);
    id = ActorId{next_actor_id_++};
    raw->id_ = id;
    raw->name_ = std::move(name);
    raw->system_ = this;
    auto entry = std::make_shared<Entry>();
    entry->actor = std::move(actor);
    entry->metric_type = ActorType(raw->name_);
    entry->profile_tag = ProfilerTagFor(entry->metric_type);
    actors_.emplace(id, std::move(entry));
  }
  raw->OnStart();
  return id;
}

void ActorSystem::Send(ActorId from, ActorId to, std::any payload) {
  std::shared_ptr<Entry> entry;
  std::size_t depth = 0;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(to);
    if (it == actors_.end() || it->second->dead) return;  // drop: dead letter
    entry = it->second;
    entry->mailbox.push_back(Envelope{from, to, std::move(payload),
                                      telemetry::CurrentTraceContext()});
    depth = entry->mailbox.size();
  }
  if (telemetry::Enabled()) {
    MailboxDepthHistogram()->Observe(static_cast<double>(depth));
  }
  ScheduleDrain(to, entry);
}

void ActorSystem::SendAfter(Duration d, ActorId from, ActorId to,
                            std::any payload) {
  // Capture by value; delivery checks liveness at fire time. The trace
  // context is captured now — the timer fires on a neutral stack, and the
  // deferred message is causally the sender's, not the event loop's.
  context_.PostAfter(
      d, [this, from, to, p = std::move(payload),
          ctx = telemetry::CurrentTraceContext()]() mutable {
        const telemetry::ScopedTraceContext scope(ctx);
        Send(from, to, std::move(p));
      });
}

void ActorSystem::ScheduleDrain(ActorId id, const std::shared_ptr<Entry>& entry) {
  {
    const std::scoped_lock lock(mu_);
    if (entry->dead || entry->draining || entry->mailbox.empty()) return;
    entry->draining = true;
  }
  context_.Post([this, id, entry] {
    (void)id;
    Drain(entry);
  });
}

void ActorSystem::Drain(const std::shared_ptr<Entry>& entry) {
  // Strictly-sequential processing: `draining` guarantees at most one Drain
  // per actor is in flight on any context.
  while (true) {
    Envelope env;
    {
      const std::scoped_lock lock(mu_);
      if (entry->dead || entry->mailbox.empty()) {
        entry->draining = false;
        return;
      }
      env = std::move(entry->mailbox.front());
      entry->mailbox.pop_front();
      ++delivered_;
    }
    // Per-actor-type dispatch metrics: one Enabled() branch when telemetry
    // is off; instrument pointers are resolved once per entry and cached.
    telemetry::Histogram* dispatch = nullptr;
    std::int64_t t0 = 0;
    if (telemetry::Enabled()) {
      dispatch = entry->dispatch_hist.load(std::memory_order_relaxed);
      if (dispatch == nullptr) {
        auto& registry = telemetry::MetricsRegistry::Global();
        dispatch = registry.GetHistogram(
            "fl_actor_dispatch_micros_" + entry->metric_type,
            telemetry::HistogramOptions{1.0, 2.0, 24});
        entry->dispatch_hist.store(dispatch, std::memory_order_relaxed);
        entry->msg_counter.store(
            registry.GetCounter("fl_actor_messages_total_" +
                                entry->metric_type),
            std::memory_order_relaxed);
      }
      entry->msg_counter.load(std::memory_order_relaxed)->Add();
      t0 = telemetry::WallMicros();
    }
    {
      const telemetry::ScopedTraceContext scope(env.trace);
      const profiler::ScopedActor profile_scope(entry->profile_tag,
                                                env.trace.round);
      entry->actor->OnMessage(env);
    }
    if (dispatch != nullptr) {
      dispatch->Observe(
          static_cast<double>(telemetry::WallMicros() - t0));
    }
  }
}

void ActorSystem::Stop(ActorId id) {
  std::shared_ptr<Entry> entry;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(id);
    if (it == actors_.end() || it->second->dead) return;
    entry = it->second;
  }
  entry->actor->OnStop();
  Terminate(id, /*crashed=*/false);
}

void ActorSystem::Crash(ActorId id) { Terminate(id, /*crashed=*/true); }

void ActorSystem::Terminate(ActorId id, bool crashed) {
  std::shared_ptr<Entry> entry;
  std::vector<ActorId> watchers;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(id);
    if (it == actors_.end() || it->second->dead) return;
    entry = it->second;
    entry->dead = true;
    entry->mailbox.clear();
    watchers = std::move(entry->watchers);
    actors_.erase(it);
  }
  for (ActorId w : watchers) {
    Send(id, w, DeathNotice{id, crashed});
  }
}

void ActorSystem::Watch(ActorId watched, ActorId watcher) {
  bool already_dead = false;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(watched);
    if (it == actors_.end() || it->second->dead) {
      already_dead = true;
    } else {
      it->second->watchers.push_back(watcher);
    }
  }
  if (already_dead) {
    // Immediate notice so watchers never miss a death.
    Send(watched, watcher, DeathNotice{watched, true});
  }
}

bool ActorSystem::IsAlive(ActorId id) const {
  const std::scoped_lock lock(mu_);
  const auto it = actors_.find(id);
  return it != actors_.end() && !it->second->dead;
}

std::size_t ActorSystem::live_actors() const {
  const std::scoped_lock lock(mu_);
  return actors_.size();
}

}  // namespace fl::actor
