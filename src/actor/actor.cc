#include "src/actor/actor.h"

namespace fl::actor {

void Actor::Send(ActorId to, std::any payload) {
  system_->Send(id_, to, std::move(payload));
}

void Actor::SendAfter(Duration d, ActorId to, std::any payload) {
  system_->SendAfter(d, id_, to, std::move(payload));
}

SimTime Actor::Now() const { return system_->now(); }

ActorId ActorSystem::Register(std::unique_ptr<Actor> actor,
                              std::string name) {
  Actor* raw = actor.get();
  ActorId id;
  {
    const std::scoped_lock lock(mu_);
    id = ActorId{next_actor_id_++};
    raw->id_ = id;
    raw->name_ = std::move(name);
    raw->system_ = this;
    auto entry = std::make_shared<Entry>();
    entry->actor = std::move(actor);
    actors_.emplace(id, std::move(entry));
  }
  raw->OnStart();
  return id;
}

void ActorSystem::Send(ActorId from, ActorId to, std::any payload) {
  std::shared_ptr<Entry> entry;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(to);
    if (it == actors_.end() || it->second->dead) return;  // drop: dead letter
    entry = it->second;
    entry->mailbox.push_back(Envelope{from, to, std::move(payload)});
  }
  ScheduleDrain(to, entry);
}

void ActorSystem::SendAfter(Duration d, ActorId from, ActorId to,
                            std::any payload) {
  // Capture by value; delivery checks liveness at fire time.
  context_.PostAfter(
      d, [this, from, to, p = std::move(payload)]() mutable {
        Send(from, to, std::move(p));
      });
}

void ActorSystem::ScheduleDrain(ActorId id, const std::shared_ptr<Entry>& entry) {
  {
    const std::scoped_lock lock(mu_);
    if (entry->dead || entry->draining || entry->mailbox.empty()) return;
    entry->draining = true;
  }
  context_.Post([this, id, entry] {
    (void)id;
    Drain(entry);
  });
}

void ActorSystem::Drain(const std::shared_ptr<Entry>& entry) {
  // Strictly-sequential processing: `draining` guarantees at most one Drain
  // per actor is in flight on any context.
  while (true) {
    Envelope env;
    {
      const std::scoped_lock lock(mu_);
      if (entry->dead || entry->mailbox.empty()) {
        entry->draining = false;
        return;
      }
      env = std::move(entry->mailbox.front());
      entry->mailbox.pop_front();
      ++delivered_;
    }
    entry->actor->OnMessage(env);
  }
}

void ActorSystem::Stop(ActorId id) {
  std::shared_ptr<Entry> entry;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(id);
    if (it == actors_.end() || it->second->dead) return;
    entry = it->second;
  }
  entry->actor->OnStop();
  Terminate(id, /*crashed=*/false);
}

void ActorSystem::Crash(ActorId id) { Terminate(id, /*crashed=*/true); }

void ActorSystem::Terminate(ActorId id, bool crashed) {
  std::shared_ptr<Entry> entry;
  std::vector<ActorId> watchers;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(id);
    if (it == actors_.end() || it->second->dead) return;
    entry = it->second;
    entry->dead = true;
    entry->mailbox.clear();
    watchers = std::move(entry->watchers);
    actors_.erase(it);
  }
  for (ActorId w : watchers) {
    Send(id, w, DeathNotice{id, crashed});
  }
}

void ActorSystem::Watch(ActorId watched, ActorId watcher) {
  bool already_dead = false;
  {
    const std::scoped_lock lock(mu_);
    const auto it = actors_.find(watched);
    if (it == actors_.end() || it->second->dead) {
      already_dead = true;
    } else {
      it->second->watchers.push_back(watcher);
    }
  }
  if (already_dead) {
    // Immediate notice so watchers never miss a death.
    Send(watched, watcher, DeathNotice{watched, true});
  }
}

bool ActorSystem::IsAlive(ActorId id) const {
  const std::scoped_lock lock(mu_);
  const auto it = actors_.find(id);
  return it != actors_.end() && !it->second->dead;
}

std::size_t ActorSystem::live_actors() const {
  const std::scoped_lock lock(mu_);
  return actors_.size();
}

}  // namespace fl::actor
