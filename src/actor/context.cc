#include "src/actor/context.h"

namespace fl::actor {

ThreadPoolContext::ThreadPoolContext(std::size_t threads)
    : start_(std::chrono::steady_clock::now()) {
  FL_CHECK(threads > 0);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  timer_thread_ = std::thread([this] { TimerLoop(); });
}

ThreadPoolContext::~ThreadPoolContext() { Shutdown(); }

void ThreadPoolContext::Post(TaskFn fn) {
  {
    const std::scoped_lock lock(mu_);
    if (stop_) return;
    tasks_.push(std::move(fn));
  }
  cv_.notify_one();
}

void ThreadPoolContext::PostAfter(Duration d, TaskFn fn) {
  const auto when =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(d.millis);
  {
    const std::scoped_lock lock(timer_mu_);
    if (timer_stop_) return;
    timers_.push(Timer{when, std::move(fn)});
  }
  timer_cv_.notify_one();
}

SimTime ThreadPoolContext::now() const {
  const auto elapsed = std::chrono::steady_clock::now() - start_;
  return SimTime{std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                     .count()};
}

void ThreadPoolContext::WorkerLoop() {
  while (true) {
    TaskFn task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      const std::scoped_lock lock(mu_);
      --active_;
      if (tasks_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

void ThreadPoolContext::TimerLoop() {
  std::unique_lock lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock,
                     [this] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    const auto next = timers_.top().when;
    if (timer_cv_.wait_until(lock, next, [this, next] {
          return timer_stop_ ||
                 (!timers_.empty() && timers_.top().when < next);
        })) {
      continue;  // stopped or an earlier timer arrived
    }
    // Deadline reached: fire all due timers.
    const auto now_tp = std::chrono::steady_clock::now();
    while (!timers_.empty() && timers_.top().when <= now_tp) {
      auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
      timers_.pop();
      lock.unlock();
      Post(std::move(fn));
      lock.lock();
    }
  }
}

void ThreadPoolContext::Quiesce() {
  std::unique_lock lock(mu_);
  idle_cv_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPoolContext::Shutdown() {
  {
    const std::scoped_lock lock(mu_);
    if (stop_) return;
    stop_ = true;
  }
  {
    const std::scoped_lock lock(timer_mu_);
    timer_stop_ = true;
  }
  cv_.notify_all();
  timer_cv_.notify_all();
  for (auto& t : workers_) t.join();
  timer_thread_.join();
}

}  // namespace fl::actor
