// Execution contexts for the actor runtime.
//
// The FL server actors (Sec. 4) run on one of two contexts:
//  * SimContext — single-threaded, driven by the discrete-event queue;
//    deterministic, used by all protocol simulations and tests.
//  * ThreadPoolContext — real threads; demonstrates that the same actor code
//    scales across cores (bench_actor_throughput). The paper's actors are
//    "distributed across data centers"; a thread pool is our single-machine
//    stand-in for multi-machine placement.
#pragma once

#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "src/common/inline_function.h"
#include "src/common/sim_time.h"
#include "src/sim/event_queue.h"

namespace fl::actor {

// Tasks are move-only SBO callables (common::TaskFn): posting the typical
// actor-dispatch capture costs no allocation on either context.
using TaskFn = common::TaskFn;

class ExecutionContext {
 public:
  virtual ~ExecutionContext() = default;
  // Runs fn as soon as possible (FIFO with respect to other Post calls from
  // the same thread).
  virtual void Post(TaskFn fn) = 0;
  // Runs fn after a (simulated or real) delay.
  virtual void PostAfter(Duration d, TaskFn fn) = 0;
  virtual SimTime now() const = 0;
};

// Deterministic context over the simulation event queue.
class SimContext final : public ExecutionContext {
 public:
  explicit SimContext(sim::EventQueue& queue) : queue_(queue) {}

  void Post(TaskFn fn) override {
    queue_.After(Millis(0), std::move(fn));
  }
  void PostAfter(Duration d, TaskFn fn) override {
    queue_.After(d, std::move(fn));
  }
  SimTime now() const override { return queue_.now(); }

  sim::EventQueue& queue() { return queue_; }

 private:
  sim::EventQueue& queue_;
};

// Multi-threaded context; tasks run on a fixed pool, delayed tasks on a
// dedicated timer thread. Destruction drains nothing: call Shutdown() to
// join after the workload quiesces.
class ThreadPoolContext final : public ExecutionContext {
 public:
  explicit ThreadPoolContext(std::size_t threads);
  ~ThreadPoolContext() override;

  ThreadPoolContext(const ThreadPoolContext&) = delete;
  ThreadPoolContext& operator=(const ThreadPoolContext&) = delete;

  void Post(TaskFn fn) override;
  void PostAfter(Duration d, TaskFn fn) override;
  SimTime now() const override;

  // Blocks until all queued and in-flight tasks have finished.
  void Quiesce();
  void Shutdown();

 private:
  struct Timer {
    std::chrono::steady_clock::time_point when;
    TaskFn fn;
    bool operator>(const Timer& o) const { return when > o.when; }
  };

  void WorkerLoop();
  void TimerLoop();

  std::chrono::steady_clock::time_point start_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::queue<TaskFn> tasks_;
  std::size_t active_ = 0;
  bool stop_ = false;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<>> timers_;
  bool timer_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread timer_thread_;
};

}  // namespace fl::actor
