// FLSystem: the whole deployment in one object — fleet simulator, network,
// server actor stack, analytics — wired over a single deterministic event
// queue. This is the primary entry point of the library.
//
//   core::FLSystemConfig config;
//   core::FLSystem system(config);
//   system.AddTrainingTask("train", model, hyper, selector, round_config);
//   system.ProvisionData([](const sim::DeviceProfile& d,
//                           core::DeviceAgent& agent, Rng& rng, SimTime now) {
//     agent.GetOrCreateStore("default").AddBatch(...);
//   });
//   system.Start();
//   system.RunFor(Hours(24));
//   ... inspect system.stats(), system.model_store() ...
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/analytics/monitor_hub.h"
#include "src/core/config.h"
#include "src/core/device_agent.h"
#include "src/core/fleet_stats.h"
#include "src/ops/ops_plane.h"
#include "src/ops/round_ledger.h"
#include "src/protocol/adaptive.h"
#include "src/server/coordinator.h"
#include "src/server/selector.h"
#include "src/server/telemetry_sink.h"

namespace fl::core {

class FLSystem {
 public:
  using DataProvisioner = std::function<void(
      const sim::DeviceProfile&, DeviceAgent&, Rng&, SimTime)>;

  explicit FLSystem(FLSystemConfig config);
  ~FLSystem();

  FLSystem(const FLSystem&) = delete;
  FLSystem& operator=(const FLSystem&) = delete;

  // --- deployment definition (before Start) ---

  // Adds a training task; the first training task's initial parameters
  // become the population's global model.
  void AddTrainingTask(const std::string& name, const graph::Model& model,
                       const plan::TrainingHyperparams& hyper,
                       const plan::ExampleSelector& selector,
                       const protocol::RoundConfig& round_config,
                       Duration cadence = Seconds(10));

  // Adds an evaluation task over the same global model (Sec. 7.1:
  // "alternating between training and evaluation of a single model").
  void AddEvaluationTask(const std::string& name, const graph::Model& model,
                         const plan::ExampleSelector& selector,
                         const protocol::RoundConfig& round_config,
                         Duration cadence = Seconds(10));

  // Installs the per-device data provisioner; called once per device at
  // start and every config.data_refresh_period thereafter.
  void ProvisionData(DataProvisioner provisioner);

  // Enables adaptive tuning of the round windows (Sec. 11 "Convergence
  // Time"): a controller observes every finished round through the
  // analytics layer and pushes adjusted configurations to the Coordinator.
  // Applies to all tasks; call before or after Start().
  void EnableAdaptiveWindows(
      protocol::AdaptiveWindowController::Params params = {});
  const protocol::AdaptiveWindowController* adaptive_controller() const {
    return adaptive_ ? &adaptive_->controller : nullptr;
  }

  // Spawns the server actors and arms every device agent.
  void Start();

  // --- execution ---
  void RunFor(Duration d);
  void RunUntil(SimTime t);
  SimTime now() const;

  // --- failure injection (Sec. 4.4 experiments) ---
  void CrashCoordinator();
  void CrashRandomSelector();
  // Crashes the master aggregator / an aggregator of the active round, if
  // any. Returns false when no such actor is live.
  bool CrashActiveMaster();

  // --- introspection ---
  FleetStats& stats() { return *stats_; }
  const FleetStats& stats() const { return *stats_; }
  // Sec. 5 automatic monitors, fed from MetricsRegistry snapshots on each
  // stats-sampler tick (only advances while telemetry is enabled). A default
  // watch on the device-rejection rate is installed at construction; add
  // more watches before Start().
  analytics::MonitorHub& monitors() { return monitor_hub_; }
  const analytics::MonitorHub& monitors() const { return monitor_hub_; }
  // The live ops plane; nullptr unless config.statusz_port was set (or
  // FL_STATUSZ in the environment) and the server started successfully.
  ops::OpsPlane* ops_plane() { return ops_.get(); }
  const ops::OpsPlane* ops_plane() const { return ops_.get(); }
  // Always present; enabled (writes bundles) only when config.bundle_dir is
  // non-empty. Captures fire on abandoned rounds and unhealthy transitions.
  ops::DiagnosticBundler& bundler() { return *bundler_; }
  const ops::DiagnosticBundler& bundler() const { return *bundler_; }
  // Always present in the sink chain (recording only while the ops plane
  // is up); /rounds serves from it.
  ops::RoundLedger& round_ledger() { return *round_ledger_; }
  server::ModelStore& model_store() { return *model_store_; }
  actor::ActorSystem& actor_system() { return *actors_; }
  server::ServerFrontend& frontend() { return *frontend_; }
  std::vector<DeviceAgent*> devices();
  std::size_t device_count() const { return agents_.size(); }
  ActorId coordinator_id() const { return coordinator_; }
  const std::vector<ActorId>& selector_ids() const { return selector_ids_; }
  sim::EventQueue& queue() { return queue_; }
  const FLSystemConfig& config() const { return config_; }

 private:
  ActorId SpawnCoordinator();
  void ScheduleStatsSampler();
  void ScheduleDataRefresh();
  void ScheduleAdaptiveTick();

  FLSystemConfig config_;
  Rng rng_;
  sim::EventQueue queue_;
  sim::DiurnalCurve curve_;
  sim::NetworkModel network_;
  std::unique_ptr<actor::SimContext> context_;
  std::unique_ptr<actor::ActorSystem> actors_;

  server::LockService locks_;
  std::unique_ptr<server::ModelStore> model_store_;
  std::unique_ptr<FleetStats> stats_;
  std::unique_ptr<ops::RoundLedger> round_ledger_;
  std::unique_ptr<ops::DiagnosticBundler> bundler_;
  std::unique_ptr<server::TelemetryStatsSink> telemetry_sink_;
  std::unique_ptr<ops::OpsPlane> ops_;
  analytics::MonitorHub monitor_hub_;
  std::unique_ptr<protocol::PaceSteeringPolicy> pace_;
  server::ServerContext server_context_;
  device::AttestationAuthority attestation_;
  std::unique_ptr<server::ServerFrontend> frontend_;

  std::vector<server::FLTaskDescriptor> tasks_;  // master copy for respawn
  ActorId coordinator_;
  std::vector<ActorId> selector_ids_;

  std::vector<std::unique_ptr<DeviceAgent>> agents_;
  DataProvisioner provisioner_;
  bool started_ = false;
  std::uint64_t next_task_id_ = 1;

  struct AdaptiveState {
    protocol::AdaptiveWindowController controller;
    protocol::RoundConfig shadow_config;  // last pushed configuration
    std::size_t log_cursor = 0;           // rounds already consumed
    bool shadow_initialized = false;
  };
  std::optional<AdaptiveState> adaptive_;
};

}  // namespace fl::core
