// Top-level configuration of a simulated FL deployment: one FL population,
// a device fleet, the network between them, and the server stack.
#pragma once

#include <optional>
#include <string>

#include "src/fedavg/compression.h"
#include "src/graph/registry.h"
#include "src/ops/debug_bundle.h"
#include "src/ops/health.h"
#include "src/ops/ops_plane.h"
#include "src/protocol/pace_steering.h"
#include "src/sim/availability.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"

namespace fl::core {

struct FLSystemConfig {
  std::string population_name = "population/default";
  std::uint64_t seed = 42;

  // Event-queue engine; defaults to the FL_EVENT_QUEUE env override (wheel
  // when unset). Tests pin this to compare schedulers in one process.
  sim::EventQueue::Impl event_queue_impl = sim::EventQueue::DefaultImpl();

  sim::PopulationParams population;
  sim::DiurnalCurve::Params diurnal;
  sim::NetworkModel::Params network;
  protocol::PaceSteeringPolicy::Params pace;

  // Server topology.
  std::size_t selector_count = 4;
  Duration coordinator_tick = Seconds(10);
  std::size_t max_waiting_per_selector = 5000;
  bool pipelined_selection = true;  // Sec. 4.3 (off = ablation)

  // Device behaviour.
  // Floor on how often a device offers itself for work (the JobScheduler
  // cadence; pace-steering windows can only push check-ins later). The
  // paper: devices "connect as frequently as needed to run all scheduled FL
  // tasks, but not more" (Sec. 2.3).
  Duration device_checkin_cadence = Seconds(60);
  Duration device_give_up = Minutes(8);   // waiting with no server response
  Duration ack_timeout = Minutes(3);      // upload sent, no ack
  Duration data_refresh_period = Hours(12);  // 0 => provision once
  // Update upload compression (Sec. 11, Bandwidth); nullopt = raw floats.
  std::optional<fedavg::CompressionConfig> upload_compression;

  // Analytics resolution.
  Duration stats_bucket = Minutes(15);

  // Live ops plane (Sec. 5): embedded /statusz-/metrics-/healthz server.
  // nullopt = off (zero listening sockets, recording branches disabled).
  // Defaults to the FL_STATUSZ env override: FL_STATUSZ=0 binds an
  // ephemeral loopback port, FL_STATUSZ=8080 a fixed one. Enabling the
  // plane also turns runtime telemetry on (it serves registry metrics).
  std::optional<int> statusz_port = ops::StatuszPortFromEnv();
  // SLO bounds evaluated each ops tick and surfaced on /healthz; the
  // defaults are lenient enough for a warming-up CI fleet.
  ops::HealthPolicy health_policy;

  // Diagnostic bundles (anomaly forensics): non-empty = write bundles under
  // this directory when health flips unhealthy or a round is abandoned, and
  // install the fatal-signal flight-recorder dump. Defaults to the
  // FL_BUNDLE_DIR env override; empty = off. Works with or without the
  // statusz plane (the /debugz endpoint needs the plane, captures do not).
  std::string bundle_dir = ops::BundleDirFromEnv();
  ops::DiagnosticBundler::Options bundle_options;  // .dir overridden above
};

}  // namespace fl::core
