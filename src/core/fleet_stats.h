// FleetStats: the analytics layer of the deployment (Sec. 5), implemented
// over src/analytics primitives. It is both the ServerStatsSink the server
// actors report into and the recorder device agents use, and it owns every
// series the Fig. 5-9 / Table 1 benches read.
#pragma once

#include <array>
#include <map>

#include "src/analytics/events.h"
#include "src/analytics/monitor.h"
#include "src/analytics/timeseries.h"
#include "src/server/stats.h"

namespace fl::core {

struct RoundParticipantCounts {
  std::size_t completed = 0;
  std::size_t aborted = 0;   // server had enough (late '#' rejections)
  std::size_t dropped = 0;   // device-side failures
};

// One row per finished round, in completion order — the feed for adaptive
// window tuning (Sec. 11) and the Fig. 5/6 outcome series.
struct RoundSummary {
  RoundId round;
  SimTime at;
  protocol::RoundOutcome outcome = protocol::RoundOutcome::kCommitted;
  std::size_t contributors = 0;
  Duration selection_duration;
  Duration round_duration;
  bool has_timing = false;
};

class FleetStats final : public server::ServerStatsSink {
 public:
  FleetStats(SimTime start, Duration bucket);

  // --- ServerStatsSink ---
  void OnRoundOutcome(SimTime t, RoundId round,
                      protocol::RoundOutcome outcome,
                      std::size_t contributors) override;
  void OnParticipantOutcome(SimTime t, RoundId round, DeviceId device,
                            protocol::ParticipantOutcome outcome) override;
  void OnRoundTiming(SimTime t, RoundId round, Duration selection_duration,
                     Duration round_duration) override;
  void OnDeviceAccepted(SimTime t) override;
  void OnDeviceRejected(SimTime t) override;
  void OnTraffic(SimTime t, std::uint64_t download_bytes,
                 std::uint64_t upload_bytes) override;
  void OnError(SimTime t, const std::string& what) override;

  // --- Device-side recorders ---
  void OnDeviceStateChange(analytics::DeviceState from,
                           analytics::DeviceState to);
  void OnSessionTrace(const analytics::SessionTrace& trace);
  void OnParticipationTime(Duration d);
  // Device-observed drop (interruption / network failure mid-round).
  void OnDeviceDrop(SimTime t, RoundId round, DeviceId device);

  // Samples current device-state occupancy into the per-state series.
  void SampleStates(SimTime t);

  // --- Accessors for benches/tests ---
  const analytics::TimeSeries& StateSeries(analytics::DeviceState s) const {
    return state_series_[static_cast<std::size_t>(s)];
  }
  const analytics::TimeSeries& round_completions() const {
    return round_completions_;
  }
  const analytics::TimeSeries& round_failures() const {
    return round_failures_;
  }
  const analytics::TimeSeries& download_series() const { return download_; }
  const analytics::TimeSeries& upload_series() const { return upload_; }
  const analytics::TimeSeries& drop_series() const { return drops_; }
  const analytics::TimeSeries& completion_series() const {
    return completions_;
  }
  const analytics::Histogram& round_duration_hist() const {
    return round_duration_;
  }
  const analytics::Histogram& selection_duration_hist() const {
    return selection_duration_;
  }
  const analytics::Histogram& participation_hist() const {
    return participation_;
  }
  const analytics::SessionShapeTally& shapes() const { return shapes_; }
  const std::map<RoundId, RoundParticipantCounts>& per_round() const {
    return per_round_;
  }
  const std::vector<RoundSummary>& round_log() const { return round_log_; }
  std::uint64_t total_download_bytes() const { return total_download_; }
  std::uint64_t total_upload_bytes() const { return total_upload_; }
  std::uint64_t accepted() const { return accepted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t errors() const { return errors_; }
  std::size_t rounds_committed() const { return rounds_committed_; }
  std::size_t rounds_abandoned() const { return rounds_abandoned_; }

  analytics::DeviationMonitor& drop_rate_monitor() {
    return drop_rate_monitor_;
  }

 private:
  std::array<std::size_t, 5> live_counts_{};
  std::array<analytics::TimeSeries, 5> state_series_;
  analytics::TimeSeries round_completions_;
  analytics::TimeSeries round_failures_;
  analytics::TimeSeries download_;
  analytics::TimeSeries upload_;
  analytics::TimeSeries drops_;
  analytics::TimeSeries completions_;
  analytics::Histogram round_duration_;
  analytics::Histogram selection_duration_;
  analytics::Histogram participation_;
  analytics::SessionShapeTally shapes_;
  std::map<RoundId, RoundParticipantCounts> per_round_;
  std::vector<RoundSummary> round_log_;
  std::uint64_t total_download_ = 0;
  std::uint64_t total_upload_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t errors_ = 0;
  std::size_t rounds_committed_ = 0;
  std::size_t rounds_abandoned_ = 0;
  analytics::DeviationMonitor drop_rate_monitor_;
};

}  // namespace fl::core
