#include "src/core/fleet_stats.h"

#include "src/common/logging.h"
namespace fl::core {
namespace {

analytics::TimeSeries MakeSeries(SimTime start, Duration bucket) {
  return analytics::TimeSeries(start, bucket);
}

}  // namespace

FleetStats::FleetStats(SimTime start, Duration bucket)
    : state_series_{MakeSeries(start, bucket), MakeSeries(start, bucket),
                    MakeSeries(start, bucket), MakeSeries(start, bucket),
                    MakeSeries(start, bucket)},
      round_completions_(start, bucket),
      round_failures_(start, bucket),
      download_(start, bucket),
      upload_(start, bucket),
      drops_(start, bucket),
      completions_(start, bucket),
      round_duration_(0.0, 30.0, 120),      // minutes
      selection_duration_(0.0, 30.0, 120),  // minutes
      participation_(0.0, 30.0, 120),       // minutes
      drop_rate_monitor_("participant_drop_rate", {}) {}

void FleetStats::OnRoundOutcome(SimTime t, RoundId round,
                                protocol::RoundOutcome outcome,
                                std::size_t contributors) {
  if (outcome == protocol::RoundOutcome::kCommitted) {
    ++rounds_committed_;
    round_completions_.Add(t);
  } else {
    ++rounds_abandoned_;
    round_failures_.Add(t);
  }
  RoundSummary summary;
  summary.round = round;
  summary.at = t;
  summary.outcome = outcome;
  summary.contributors = contributors;
  round_log_.push_back(summary);
}

void FleetStats::OnParticipantOutcome(SimTime t, RoundId round,
                                      DeviceId device,
                                      protocol::ParticipantOutcome outcome) {
  (void)device;
  RoundParticipantCounts& c = per_round_[round];
  switch (outcome) {
    case protocol::ParticipantOutcome::kCompleted:
      ++c.completed;
      completions_.Add(t);
      break;
    case protocol::ParticipantOutcome::kAborted:
    case protocol::ParticipantOutcome::kRejectedLate:
      // Fig. 7's "aborted": work discarded because the server already had
      // enough reports.
      ++c.aborted;
      break;
    case protocol::ParticipantOutcome::kDropped:
      ++c.dropped;
      drops_.Add(t);
      break;
  }
}

void FleetStats::OnRoundTiming(SimTime t, RoundId round,
                               Duration selection_duration,
                               Duration round_duration) {
  (void)t;
  selection_duration_.Add(selection_duration.Minutes());
  round_duration_.Add(round_duration.Minutes());
  // Patch the matching log row (outcome is reported just before timing).
  for (auto it = round_log_.rbegin(); it != round_log_.rend(); ++it) {
    if (it->round == round) {
      it->selection_duration = selection_duration;
      it->round_duration = round_duration;
      it->has_timing = true;
      break;
    }
  }
}

void FleetStats::OnDeviceAccepted(SimTime t) {
  (void)t;
  ++accepted_;
}

void FleetStats::OnDeviceRejected(SimTime t) {
  (void)t;
  ++rejected_;
}

void FleetStats::OnTraffic(SimTime t, std::uint64_t download_bytes,
                           std::uint64_t upload_bytes) {
  if (download_bytes > 0) {
    download_.Add(t, static_cast<double>(download_bytes));
    total_download_ += download_bytes;
  }
  if (upload_bytes > 0) {
    upload_.Add(t, static_cast<double>(upload_bytes));
    total_upload_ += upload_bytes;
  }
}

void FleetStats::OnError(SimTime t, const std::string& what) {
  ++errors_;
  // Expected operational noise (drop-outs, aborted secagg groups) stays at
  // INFO; the error *counter* is what monitors consume (Sec. 5).
  FL_LOG(Info) << "[" << FormatSimTime(t) << "] server error: " << what;
}

void FleetStats::OnDeviceStateChange(analytics::DeviceState from,
                                     analytics::DeviceState to) {
  auto& from_count = live_counts_[static_cast<std::size_t>(from)];
  if (from_count > 0) --from_count;
  ++live_counts_[static_cast<std::size_t>(to)];
}

void FleetStats::OnSessionTrace(const analytics::SessionTrace& trace) {
  // Only sessions that progressed past check-in form "training round
  // sessions" in the Table 1 sense.
  if (trace.events.size() >= 2) shapes_.Record(trace);
}

void FleetStats::OnParticipationTime(Duration d) {
  participation_.Add(d.Minutes());
}

void FleetStats::OnDeviceDrop(SimTime t, RoundId round, DeviceId device) {
  OnParticipantOutcome(t, round, device,
                       protocol::ParticipantOutcome::kDropped);
}

void FleetStats::SampleStates(SimTime t) {
  for (std::size_t s = 0; s < live_counts_.size(); ++s) {
    state_series_[s].Add(t, static_cast<double>(live_counts_[s]));
  }
  // Feed the deviation monitor with the instantaneous drop share.
  const double participating =
      static_cast<double>(live_counts_[static_cast<std::size_t>(
          analytics::DeviceState::kParticipating)]);
  if (participating > 0) {
    // Relative drop pressure; the monitor learns the diurnal baseline.
    drop_rate_monitor_.Observe(t, participating);
  }
}

}  // namespace fl::core
