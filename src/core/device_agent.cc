#include "src/core/device_agent.h"

#include <algorithm>
#include <cstring>

#include "src/analytics/flight_dump.h"
#include "src/common/fixed_point.h"
#include "src/fedavg/codec.h"
#include "src/fedavg/compression.h"
#include "src/profiler/profiler.h"
#include "src/telemetry/trace.h"

namespace fl::core {
namespace {

using analytics::DeviceState;
using analytics::SessionEvent;

crypto::Key256 RandomKey(Rng& rng) {
  crypto::Key256 k;
  for (std::size_t i = 0; i < k.size(); i += 8) {
    const std::uint64_t v = rng.Next();
    std::memcpy(k.data() + i, &v, 8);
  }
  return k;
}

// Coarse wire sizes for SecAgg control messages (payload + framing).
std::uint64_t AdvertiseBytes() { return 48; }
std::uint64_t ShareKeysBytes(const secagg::ShareKeysMessage& m) {
  std::uint64_t b = 16;
  for (const auto& s : m.shares) b += s.ciphertext.size() + 12;
  return b;
}
std::uint64_t MaskedBytes(const secagg::MaskedInput& m,
                          std::uint8_t ring_bits) {
  return 16 + secagg::MaskedVectorWireBytes(m.masked.size(), ring_bits);
}
std::uint64_t UnmaskBytes(const secagg::UnmaskingResponse& r) {
  return 16 + 16 * (r.mask_key_shares.size() + 5 * r.self_seed_shares.size());
}

}  // namespace

DeviceAgent::DeviceAgent(sim::DeviceProfile profile, Services services)
    : profile_(profile),
      services_(services),
      availability_(*services.curve, profile),
      rng_(profile.seed ^ 0x5851f42d4c957f2dULL),
      runtime_(profile.os_version, &registry_) {
  FL_CHECK(services_.queue != nullptr && services_.network != nullptr &&
           services_.frontend != nullptr && services_.stats != nullptr &&
           services_.config != nullptr && services_.attestation != nullptr);
  eligible_ = availability_.eligible();
}

void DeviceAgent::Configure(const std::string& population,
                            const std::string& store_name,
                            Duration min_checkin_interval) {
  GetOrCreateStore(store_name);
  const Status s = scheduler_.RegisterPopulation(
      device::PopulationRegistration{population, store_name,
                                     min_checkin_interval});
  FL_CHECK_MSG(s.ok(), s.ToString());
}

device::InMemoryExampleStore& DeviceAgent::GetOrCreateStore(
    const std::string& name) {
  auto it = owned_stores_.find(name);
  if (it == owned_stores_.end()) {
    auto store = std::make_shared<device::InMemoryExampleStore>(
        name, device::InMemoryExampleStore::Options{});
    FL_CHECK(registry_.Register(store).ok());
    it = owned_stores_.emplace(name, std::move(store)).first;
  }
  return *it->second;
}

void DeviceAgent::Start() {
  services_.stats->OnDeviceStateChange(DeviceState::kIdle, state_);
  ScheduleNextToggle();
  // First check-in attempt at a jittered offset so fleet start-up is not a
  // thundering herd by construction.
  ScheduleCheckinPoll(Millis(static_cast<std::int64_t>(
      rng_.UniformInt(static_cast<std::uint64_t>(Minutes(30).millis)))));
}

void DeviceAgent::SetState(DeviceState s) {
  if (s == state_) return;
  services_.stats->OnDeviceStateChange(state_, s);
  state_ = s;
}

void DeviceAgent::AddTrace(SessionEvent e) {
  if (!session_) return;
  session_->trace.events.push_back(e);
  analytics::RecordFlight(services_.queue->now(),
                          analytics::JournalSource::kDevice,
                          analytics::JournalEventForSession(e), profile_.id,
                          session_->id,
                          session_->assigned ? session_->round : RoundId{});
  if (analytics::JournalEnabled()) {
    JournalEvent(analytics::JournalEventForSession(e));
  }
}

void DeviceAgent::JournalEvent(analytics::JournalEventKind kind,
                               std::string detail) {
  if (!analytics::JournalEnabled() || !session_) return;
  analytics::AppendJournal(
      services_.queue->now(), analytics::JournalSource::kDevice, kind,
      profile_.id, session_->id,
      session_->assigned ? session_->round : RoundId{}, std::move(detail));
}

void DeviceAgent::ScheduleNextToggle() {
  const SimTime t = availability_.NextToggleAfter(services_.queue->now());
  const bool will_be = availability_.eligible();
  services_.queue->At(t, [this, will_be] { OnToggle(will_be); });
}

void DeviceAgent::OnToggle(bool now_eligible) {
  eligible_ = now_eligible;
  if (!eligible_ && session_) {
    Interrupt();
  } else if (eligible_) {
    TryCheckin();
  }
  ScheduleNextToggle();
}

void DeviceAgent::ScheduleCheckinPoll(Duration delay) {
  if (poll_scheduled_) return;
  poll_scheduled_ = true;
  services_.queue->After(delay, [this] {
    poll_scheduled_ = false;
    TryCheckin();
  });
}

void DeviceAgent::TryCheckin() {
  if (!eligible_ || session_.has_value()) return;
  const SimTime now = services_.queue->now();
  const auto population = scheduler_.NextSession(now);
  if (!population.has_value()) {
    const auto next = scheduler_.NextRunnableAt(now);
    if (next.has_value()) {
      const Duration wait =
          std::max(Seconds(30), *next - now) +
          Millis(static_cast<std::int64_t>(rng_.UniformInt(10'000)));
      ScheduleCheckinPoll(wait);
    }
    return;
  }
  BeginSession(*population);
}

void DeviceAgent::BeginSession(const std::string& population) {
  ++sessions_started_;
  ++session_counter_;
  const std::uint64_t gen = ++generation_;
  Session s;
  s.id = SessionId{(profile_.id.value << 20) | session_counter_};
  s.generation = gen;
  s.checkin_at = services_.queue->now();
  s.population = population;
  s.trace.session = s.id;
  s.trace.device = profile_.id;
  s.ctx = telemetry::TraceContext{0, s.id.value, profile_.id.value, 0};
  session_ = std::move(s);
  scheduler_.OnSessionStarted(population, services_.queue->now());
  SetState(DeviceState::kAttesting);

  // Attestation + connection handshake, then check in (Sec. 3 Job
  // Invocation: "the FL runtime contacts the FL server to announce that it
  // is ready to run tasks for the given FL population").
  const std::uint64_t nonce = rng_.Next();
  const device::AttestationToken token =
      profile_.genuine
          ? services_.attestation->Issue(profile_.id, nonce)
          : services_.attestation->Forge(profile_.id, nonce, rng_.Next());

  const Duration handshake = services_.network->SampleRtt() * 2;
  services_.queue->After(handshake, [this, gen, token, population] {
    if (!Active(gen)) return;
    AddTrace(SessionEvent::kCheckin);
    const profiler::ScopedPhase profile_scope(profiler::Phase::kCheckin);
    server::CheckInRequest req;
    req.device = profile_.id;
    req.session = session_->id;
    req.population = population;
    req.runtime_version = profile_.os_version;
    req.attestation = token;
    // Selector-side records for this check-in carry the device context.
    const telemetry::ScopedTraceContext scope(session_->ctx);
    const bool ok = services_.frontend->CheckIn(req, MakeLink(gen));
    if (!ok) {
      // Attestation rejected (or no selectors): long back-off.
      scheduler_.SetEarliestCheckin(population,
                                    services_.queue->now() + Hours(6));
      EndSession(false);
      return;
    }
    SetState(DeviceState::kWaiting);
    // Give-up timer: a crashed Selector means silence, not rejection
    // (Sec. 4.4: "only the devices connected to that actor will be lost").
    services_.queue->After(services_.config->device_give_up, [this, gen] {
      if (!Active(gen) || session_->assigned) return;
      EndSession(false);
    });
  });
}

server::DeviceLink DeviceAgent::MakeLink(std::uint64_t gen) {
  server::DeviceLink link;
  link.device = profile_.id;
  link.session = session_->id;
  link.runtime_version = profile_.os_version;
  link.connected_at = services_.queue->now();
  link.assign = [this, gen](const server::TaskAssignment& a) {
    if (!Active(gen)) return;
    // Configuration download: plan + global model over the device's radio.
    const std::uint64_t bytes = a.plan_bytes->size() + a.model_bytes->size();
    const sim::TransferOutcome t = services_.network->Transfer(
        profile_, sim::Direction::kDownload, bytes);
    server::TaskAssignment copy = a;
    const bool ok = t.success && !t.corrupted;
    services_.queue->After(t.duration, [this, gen, copy, ok] {
      if (!Active(gen)) return;
      if (!ok) {
        FailSession("configuration download failed");
        return;
      }
      OnAssigned(gen, copy);
    });
  };
  link.reject = [this, gen](const server::RejectionNotice& n) {
    services_.queue->After(services_.network->SampleRtt(),
                           [this, gen, n] { OnRejected(gen, n); });
  };
  link.report_ack = [this, gen](const server::ReportAck& ack) {
    services_.queue->After(services_.network->SampleRtt(),
                           [this, gen, ack] { OnReportAck(gen, ack); });
  };
  link.secagg_directory = [this, gen](const server::SecAggDirectoryMsg& m) {
    const sim::TransferOutcome t = services_.network->Transfer(
        profile_, sim::Direction::kDownload, 24 * m.directory.size() + 16);
    if (!t.success) return;  // device misses the directory; drops out
    services_.queue->After(t.duration,
                           [this, gen, m] { OnSecAggDirectory(gen, m); });
  };
  link.secagg_shares = [this, gen](const server::SecAggSharesMsg& m) {
    std::uint64_t bytes = 16;
    for (const auto& s : m.shares) bytes += s.ciphertext.size() + 12;
    const sim::TransferOutcome t = services_.network->Transfer(
        profile_, sim::Direction::kDownload, bytes);
    if (!t.success) return;
    services_.queue->After(t.duration,
                           [this, gen, m] { OnSecAggShares(gen, m); });
  };
  link.secagg_unmask = [this, gen](const server::SecAggUnmaskMsg& m) {
    const sim::TransferOutcome t = services_.network->Transfer(
        profile_, sim::Direction::kDownload,
        16 + 8 * (m.request.dropped.size() + m.request.survivors.size()));
    if (!t.success) return;
    services_.queue->After(t.duration,
                           [this, gen, m] { OnSecAggUnmask(gen, m); });
  };
  link.closed = [this, gen](const server::ConnectionClosed&) {
    services_.queue->After(services_.network->SampleRtt(),
                           [this, gen] { OnClosed(gen); });
  };
  return link;
}

void DeviceAgent::OnRejected(std::uint64_t gen,
                             const server::RejectionNotice& notice) {
  if (!Active(gen)) return;
  // Pace steering compliance: pick a reconnect time inside the window
  // ("The device attempts to respect this, modulo its eligibility").
  const SimTime when = protocol::PaceSteeringPolicy::PickWithinWindow(
      notice.retry_window, rng_);
  scheduler_.SetEarliestCheckin(session_->population, when);
  EndSession(false);
}

void DeviceAgent::OnAssigned(std::uint64_t gen,
                             const server::TaskAssignment& assignment) {
  Session& s = *session_;
  SetState(DeviceState::kParticipating);
  s.assigned = true;
  s.round = assignment.round;
  s.aggregator = assignment.aggregator;
  s.participation_deadline = assignment.participation_deadline;
  // After the round is bound, so the 'v' journal/flight record carries it
  // (critical-path attribution joins configured devices on the round id).
  AddTrace(SessionEvent::kDownloadedPlan);

  // Complete the causal context with the round and the server's config span
  // (carried across the event queue in the assignment), then open the
  // session-lifetime span as a context child — the cross-actor flow link.
  s.ctx.round = assignment.round.value;
  s.ctx.parent_span = assignment.trace.parent_span;
  if (telemetry::Enabled()) {
    const telemetry::ScopedTraceContext scope(s.ctx);
    s.session_span = telemetry::Tracer::Global().Begin(
        "device_session", services_.queue->now());
    auto& tracer = telemetry::Tracer::Global();
    tracer.AddAttr(s.session_span, "device", std::to_string(profile_.id.value));
    tracer.AddAttr(s.session_span, "round", std::to_string(s.round.value));
  }
  if (s.session_span != 0) s.ctx.parent_span = s.session_span;

  auto plan = plan::FLPlan::Deserialize(*assignment.plan_bytes);
  auto global = Checkpoint::Deserialize(*assignment.model_bytes);
  if (!plan.ok() || !global.ok()) {
    FailSession("plan/model deserialization failed");
    return;
  }
  s.plan = std::move(plan).value();
  s.global = std::move(global).value();

  s.codec = assignment.codec;
  if (assignment.secagg_enabled) {
    s.secagg = true;
    s.secagg_clip = assignment.secagg_clip;
    s.secagg_max_summands = assignment.secagg_max_summands;
    s.secagg_ring_bits = assignment.secagg_ring_bits;
    s.secagg_index_seed = assignment.secagg_index_seed;
    s.secagg_vector_length = assignment.secagg_vector_length;
    s.sa_client.emplace(assignment.secagg_index, assignment.secagg_threshold,
                        assignment.secagg_vector_length, RandomKey(rng_),
                        assignment.secagg_ring_bits);
    // Round 0: advertise keys right away, overlapping with training.
    const secagg::KeyAdvertisement adv = s.sa_client->AdvertiseKeys();
    SendSecAggUpload(gen, AdvertiseBytes(), [this, adv] {
      server::SecAggAdvertiseMsg msg;
      msg.device = profile_.id;
      msg.round = session_->round;
      msg.advertisement = adv;
      msg.upload_wire_bytes = AdvertiseBytes();
      services_.frontend->SecAggAdvertise(session_->aggregator, msg);
    });
  }

  // Device-side participation cap.
  const Duration until_deadline = s.participation_deadline -
                                  services_.queue->now();
  if (until_deadline.millis > 0) {
    services_.queue->After(until_deadline, [this, gen] {
      if (!Active(gen)) return;
      if (session_->reported_ok) {
        // Already accepted; a Secure Aggregation session may be lingering
        // for the Finalization round — let its own grace timer end it.
        return;
      }
      // Capped by the server (Fig. 8); abandon quietly.
      services_.stats->OnDeviceDrop(services_.queue->now(), session_->round,
                                    profile_.id);
      EndSession(false);
    });
  }

  StartTraining(gen);
}

void DeviceAgent::StartTraining(std::uint64_t gen) {
  Session& s = *session_;
  AddTrace(SessionEvent::kTrainingStarted);
  s.training = true;
  if (telemetry::Enabled()) {
    const telemetry::ScopedTraceContext scope(s.ctx);
    s.train_span = telemetry::Tracer::Global().Begin("device_train",
                                                     services_.queue->now());
  }

  // The computation itself is pure; its wall-clock cost is simulated.
  const profiler::ScopedPhase profile_scope(profiler::Phase::kTraining,
                                            s.round.value);
  auto result = runtime_.ExecutePlan(*s.plan, *s.global,
                                     services_.queue->now(), rng_);
  if (!result.ok()) {
    // E.g. the example store no longer satisfies the plan's selection
    // criteria — a model-issue '*' right after '[' (Sec. 5's "-v[*").
    FailSession(result.status().ToString());
    return;
  }
  s.metrics = result->metrics;
  s.examples_used = result->examples_used;
  if (result->update.has_value()) {
    s.update = std::move(result->update);
  }
  const Duration compute = device::EstimateComputeDuration(
      *s.plan, s.examples_used, profile_);
  services_.queue->After(compute, [this, gen] {
    if (!Active(gen)) return;
    FinishTraining(gen);
  });
}

void DeviceAgent::FinishTraining(std::uint64_t gen) {
  Session& s = *session_;
  s.training = false;
  s.trained = true;
  AddTrace(SessionEvent::kTrainingCompleted);
  if (s.train_span != 0) {
    telemetry::Tracer::Global().End(s.train_span, services_.queue->now());
    s.train_span = 0;
  }
  if (s.secagg) {
    MaybeSendMaskedInput(gen);
  } else {
    BeginUpload(gen);
  }
}

void DeviceAgent::BeginUpload(std::uint64_t gen) {
  Session& s = *session_;
  AddTrace(SessionEvent::kUploadStarted);
  s.uploading = true;
  if (telemetry::Enabled()) {
    const telemetry::ScopedTraceContext scope(s.ctx);
    s.upload_span = telemetry::Tracer::Global().Begin("device_upload",
                                                      services_.queue->now());
  }

  const profiler::ScopedPhase profile_scope(profiler::Phase::kReporting,
                                            s.round.value);
  server::DeviceReport report;
  report.device = profile_.id;
  report.session = s.id;
  report.round = s.round;
  report.metrics = s.metrics;

  std::uint64_t wire_bytes = 256;  // metrics-only floor (evaluation tasks)
  if (s.update.has_value()) {
    report.weight = s.update->weight;
    const auto& compression = services_.config->upload_compression;
    if (s.codec.enabled()) {
      // Pluggable codec path: the encoded payload itself travels; the
      // Aggregator decodes and accumulates (no server-side reconstruction
      // happens device-side, unlike the legacy compression path below).
      const std::vector<float> flat = s.update->weighted_delta.Flatten();
      fedavg::EncodedUpdate wire =
          fedavg::EncodeUpdate(flat, s.codec, rng_.Next());
      wire_bytes = wire.WireBytes();
      report.update_bytes = std::move(wire.payload);
      report.codec_encoded = true;
    } else if (compression.has_value()) {
      // Sec. 11 Bandwidth: compress the (compressible) update for the wire;
      // the server aggregates the reconstruction.
      const std::vector<float> flat = s.update->weighted_delta.Flatten();
      const fedavg::CompressedUpdate wire =
          fedavg::Compress(flat, *compression, rng_.Next());
      wire_bytes = wire.WireBytes();
      auto restored = fedavg::Decompress(wire);
      FL_CHECK(restored.ok());
      auto restored_ckpt = s.update->weighted_delta.Unflatten(*restored);
      FL_CHECK(restored_ckpt.ok());
      report.update_bytes = restored_ckpt->Serialize();
    } else {
      report.update_bytes = s.update->weighted_delta.Serialize();
      wire_bytes = report.update_bytes.size() + 64;
    }
  } else {
    report.weight = static_cast<float>(s.metrics.example_count);
  }
  report.upload_wire_bytes = wire_bytes;

  const sim::TransferOutcome t = services_.network->Transfer(
      profile_, sim::Direction::kUpload, wire_bytes);
  if (!t.success) {
    services_.queue->After(t.duration, [this, gen, t] {
      if (!Active(gen)) return;
      // Wasted bytes still hit the server NIC.
      services_.stats->OnTraffic(services_.queue->now(), 0, t.bytes_on_wire);
      FailSession("upload failed");
    });
    return;
  }
  // Move the report into the event: the serialized update (the dominant
  // per-device buffer) travels device → event node → aggregator without a
  // single copy.
  services_.queue->After(
      t.duration, [this, gen, report = std::move(report)]() mutable {
    if (!Active(gen)) return;
    // Aggregator-side accept/reject records link back to this session.
    const telemetry::ScopedTraceContext scope(session_->ctx);
    services_.frontend->Report(session_->aggregator, std::move(report));
    // Ack timeout: a dead Aggregator means silence.
    services_.queue->After(services_.config->ack_timeout, [this, gen] {
      if (!Active(gen)) return;
      FailSession("no ack from aggregator");
    });
  });
}

void DeviceAgent::OnReportAck(std::uint64_t gen, const server::ReportAck& ack) {
  if (!Active(gen)) return;
  Session& s = *session_;
  s.uploading = false;
  s.reported_ok = ack.accepted;
  AddTrace(ack.accepted ? SessionEvent::kUploadCompleted
                        : SessionEvent::kUploadRejected);
  if (s.upload_span != 0) {
    telemetry::Tracer::Global().End(s.upload_span, services_.queue->now());
    s.upload_span = 0;
  }
  // Pace steering: the server tells reporting devices when to come back
  // (Sec. 2.2 Reporting).
  const SimTime when =
      protocol::PaceSteeringPolicy::PickWithinWindow(ack.next_checkin, rng_);
  scheduler_.SetEarliestCheckin(s.population, when);

  if (s.secagg && ack.accepted) {
    // Stay online for the Finalization round; end after a grace window.
    services_.queue->After(services_.config->ack_timeout * 2, [this, gen] {
      if (!Active(gen)) return;
      EndSession(true);
    });
    return;
  }
  EndSession(ack.accepted);
}

void DeviceAgent::OnClosed(std::uint64_t gen) {
  if (!Active(gen)) return;
  // Server-side abort: stop whatever is running; no further contact.
  EndSession(false);
}

// ---------------------------------------------------------------------------
// Secure Aggregation client-side rounds.
// ---------------------------------------------------------------------------

void DeviceAgent::SendSecAggUpload(std::uint64_t gen, std::uint64_t bytes,
                                   std::function<void()> send) {
  const sim::TransferOutcome t =
      services_.network->Transfer(profile_, sim::Direction::kUpload, bytes);
  if (!t.success) {
    // Lost control message: this device silently drops out of the protocol
    // round; SecAgg's share recovery handles it.
    return;
  }
  services_.queue->After(t.duration, [this, gen, send = std::move(send)] {
    if (!Active(gen)) return;
    // SecAgg control messages carry the session context to the aggregator.
    const telemetry::ScopedTraceContext scope(session_->ctx);
    send();
  });
}

void DeviceAgent::OnSecAggDirectory(std::uint64_t gen,
                                    const server::SecAggDirectoryMsg& m) {
  if (!Active(gen) || !session_->sa_client) return;
  const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                            session_->round.value);
  auto shares = session_->sa_client->ShareKeys(m.directory);
  if (!shares.ok()) return;
  const std::uint64_t bytes = ShareKeysBytes(*shares);
  SendSecAggUpload(gen, bytes, [this, msg = std::move(shares).value(),
                                bytes]() mutable {
    server::SecAggShareKeysMsg out;
    out.device = profile_.id;
    out.round = session_->round;
    out.message = std::move(msg);
    out.upload_wire_bytes = bytes;
    services_.frontend->SecAggShareKeys(session_->aggregator, out);
  });
}

void DeviceAgent::OnSecAggShares(std::uint64_t gen,
                                 const server::SecAggSharesMsg& m) {
  if (!Active(gen) || !session_->sa_client) return;
  for (const secagg::EncryptedShare& s : m.shares) {
    session_->sa_client->ReceiveShare(s);
  }
  session_->sa_u1 = m.u1;
  MaybeSendMaskedInput(gen);
}

void DeviceAgent::MaybeSendMaskedInput(std::uint64_t gen) {
  Session& s = *session_;
  if (!s.trained || !s.sa_u1.has_value() || s.sa_masked_sent ||
      !s.sa_client.has_value()) {
    return;
  }
  if (!s.update.has_value()) return;  // evaluation tasks skip secagg
  s.sa_masked_sent = true;
  const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                            s.round.value);

  // Quantize update + trailing weight word. Codec parameters (clip,
  // max_summands, ring_bits, index seed) arrive with the assignment, so
  // device and Aggregator use identical fixed-point scales and — when the
  // cohort sparsifies — the identical agreed coordinate subset.
  const std::vector<float> flat = s.update->weighted_delta.Flatten();
  const std::size_t keep = s.secagg_vector_length - 1;
  FixedPointCodec codec(s.secagg_clip, s.secagg_max_summands,
                        s.secagg_ring_bits);
  std::vector<std::uint32_t> words(keep + 1);
  if (keep < flat.size()) {
    const std::vector<std::uint32_t> agreed =
        fedavg::AgreedIndexSet(s.secagg_index_seed, flat.size(), keep);
    for (std::size_t i = 0; i < keep; ++i) {
      words[i] = codec.Encode(flat[agreed[i]]);
    }
  } else {
    for (std::size_t i = 0; i < flat.size(); ++i) {
      words[i] = codec.Encode(flat[i]);
    }
  }
  words[keep] = static_cast<std::uint32_t>(std::lround(s.update->weight)) &
                codec.ring_mask();

  auto masked = s.sa_client->MaskInput(words, *s.sa_u1);
  if (!masked.ok()) return;

  AddTrace(SessionEvent::kUploadStarted);
  s.uploading = true;
  const std::uint64_t bytes = MaskedBytes(*masked, s.secagg_ring_bits);
  SendSecAggUpload(gen, bytes, [this, input = std::move(masked).value(),
                                bytes]() mutable {
    server::SecAggMaskedInputMsg out;
    out.device = profile_.id;
    out.round = session_->round;
    out.input = std::move(input);
    out.metrics = session_->metrics;
    out.upload_wire_bytes = bytes;
    services_.frontend->SecAggMaskedInput(session_->aggregator, out);
    // Ack timeout as in the simple path.
    const std::uint64_t gen2 = session_->generation;
    services_.queue->After(services_.config->ack_timeout, [this, gen2] {
      if (!Active(gen2)) return;
      if (session_->uploading) FailSession("no secagg ack");
    });
  });
}

void DeviceAgent::OnSecAggUnmask(std::uint64_t gen,
                                 const server::SecAggUnmaskMsg& m) {
  if (!Active(gen) || !session_->sa_client) return;
  const profiler::ScopedPhase profile_scope(profiler::Phase::kSecAgg,
                                            session_->round.value);
  auto resp = session_->sa_client->Unmask(m.request);
  if (!resp.ok()) return;
  const std::uint64_t bytes = UnmaskBytes(*resp);
  SendSecAggUpload(gen, bytes, [this, gen, r = std::move(resp).value(),
                                bytes]() mutable {
    server::SecAggUnmaskResponseMsg out;
    out.device = profile_.id;
    out.round = session_->round;
    out.response = std::move(r);
    out.upload_wire_bytes = bytes;
    services_.frontend->SecAggUnmaskResponse(session_->aggregator, out);
    EndSession(true);
  });
}

// ---------------------------------------------------------------------------
// Session teardown.
// ---------------------------------------------------------------------------

void DeviceAgent::Interrupt() {
  if (!session_) return;
  // Interrupted mid-session ('!'): eligibility lost — e.g., the user picked
  // up the phone (Sec. 3: "the FL runtime will abort ... if these conditions
  // are no longer met").
  if (session_->assigned) {
    AddTrace(SessionEvent::kInterrupted);
    services_.stats->OnDeviceDrop(services_.queue->now(), session_->round,
                                  profile_.id);
  }
  EndSession(false);
}

void DeviceAgent::FailSession(const std::string& why) {
  (void)why;
  if (!session_) return;
  AddTrace(SessionEvent::kError);
  if (session_->assigned) {
    services_.stats->OnDeviceDrop(services_.queue->now(), session_->round,
                                  profile_.id);
  }
  EndSession(false);
}

void DeviceAgent::EndSession(bool completed) {
  if (!session_) return;
  if (completed) ++sessions_completed_;
  analytics::RecordFlight(
      services_.queue->now(), analytics::JournalSource::kDevice,
      analytics::JournalEventKind::kSessionEnd, profile_.id, session_->id,
      session_->assigned ? session_->round : RoundId{},
      completed ? 1 : 0);
  if (analytics::JournalEnabled()) {
    JournalEvent(analytics::JournalEventKind::kSessionEnd,
                 completed ? "completed=1" : "completed=0");
  }
  // Close any spans the session still holds (abandon/interrupt paths).
  auto& tracer = telemetry::Tracer::Global();
  const SimTime now = services_.queue->now();
  if (session_->train_span != 0) tracer.End(session_->train_span, now);
  if (session_->upload_span != 0) tracer.End(session_->upload_span, now);
  if (session_->session_span != 0) {
    tracer.AddAttr(session_->session_span, "completed", completed ? "1" : "0");
    tracer.End(session_->session_span, now);
  }
  services_.stats->OnSessionTrace(session_->trace);
  if (session_->assigned) {
    services_.stats->OnParticipationTime(services_.queue->now() -
                                         session_->checkin_at);
  }
  session_.reset();
  ++generation_;
  scheduler_.OnSessionEnded();
  SetState(DeviceState::kIdle);
  // Plan the next check-in.
  const auto next = scheduler_.NextRunnableAt(now);
  if (next.has_value()) {
    ScheduleCheckinPoll(std::max(Seconds(30), *next - now));
  }
}

}  // namespace fl::core
