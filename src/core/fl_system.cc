#include "src/core/fl_system.h"
#include <algorithm>


#include "src/common/logging.h"
#include "src/graph/registry.h"
#include "src/ops/crash_handler.h"
#include "src/profiler/start.h"
#include "src/server/master_aggregator.h"

namespace fl::core {
namespace {
constexpr std::uint64_t kNetworkSeedSalt = 0x6e657477726bULL;   // "networ"
constexpr std::uint64_t kAttestSeedSalt = 0x61747465737421ULL;  // "attest!"
}  // namespace

FLSystem::FLSystem(FLSystemConfig config)
    : config_(std::move(config)),
      rng_(config_.seed),
      queue_(config_.event_queue_impl),
      curve_(config_.diurnal),
      network_(config_.network, config_.seed ^ kNetworkSeedSalt),
      attestation_(config_.seed ^ kAttestSeedSalt) {
  context_ = std::make_unique<actor::SimContext>(queue_);
  actors_ = std::make_unique<actor::ActorSystem>(*context_);
  stats_ = std::make_unique<FleetStats>(SimTime{0}, config_.stats_bucket);
  pace_ = std::make_unique<protocol::PaceSteeringPolicy>(config_.pace,
                                                         &curve_);
  frontend_ = std::make_unique<server::ServerFrontend>(
      actors_.get(), &server_context_, &attestation_);

  server_context_.locks = &locks_;
  // Server actors report through a tee chain: TelemetryStatsSink mirrors
  // each event into the MetricsRegistry (when telemetry is enabled), the
  // RoundLedger keeps the last-K round records for /rounds (when the ops
  // plane is up), and every event still lands in FleetStats (Fig. 5–9
  // analytics). Both tees are one branch each when disabled.
  round_ledger_ = std::make_unique<ops::RoundLedger>(stats_.get());
  telemetry_sink_ =
      std::make_unique<server::TelemetryStatsSink>(round_ledger_.get());
  // Diagnostic bundler: disabled (dir empty) unless configured, but always
  // constructed so triggers can be wired unconditionally. The abandoned-
  // round hook fires even with the ops plane off.
  ops::DiagnosticBundler::Options bundle_opts = config_.bundle_options;
  bundle_opts.dir = config_.bundle_dir;
  bundler_ = std::make_unique<ops::DiagnosticBundler>(
      std::move(bundle_opts),
      ops::DiagnosticBundler::Sources{.ledger = round_ledger_.get(),
                                      .health = nullptr});
  round_ledger_->set_on_abandoned(
      [this](SimTime t, RoundId round, protocol::RoundOutcome outcome) {
        bundler_->Capture(
            "round_abandoned",
            "round=" + std::to_string(round.value) +
                " outcome=" + protocol::RoundOutcomeName(outcome),
            t);
      });
  server_context_.stats = telemetry_sink_.get();
  server_context_.pace = pace_.get();
  server_context_.rng = &rng_;
  server_context_.estimated_population = config_.population.device_count;

  // Default Sec. 5 watch: a spike in per-sample device rejections is the
  // paper's canonical anomaly ("drop out rates ... much higher than
  // expected"). min_sigma floors the noise band well above single-device
  // blips — a healthy deployment's baseline is near zero, where the
  // default 1e-6 floor would alert on every stray rejection. Users can add
  // more watches via monitors().
  analytics::DeviationMonitor::Params reject_watch;
  reject_watch.min_sigma = 10.0;
  monitor_hub_.WatchCounterDelta("fl_server_devices_rejected_total",
                                 reject_watch);
}

FLSystem::~FLSystem() {
  // Stop HTTP workers before the members their handlers read go away.
  if (ops_ != nullptr) ops_->Stop();
}

void FLSystem::AddTrainingTask(const std::string& name,
                               const graph::Model& model,
                               const plan::TrainingHyperparams& hyper,
                               const plan::ExampleSelector& selector,
                               const protocol::RoundConfig& round_config,
                               Duration cadence) {
  FL_CHECK_MSG(!started_, "tasks must be added before Start()");
  const plan::FLPlan default_plan =
      plan::MakeTrainingPlan(model, name, hyper, selector);
  auto plans = plan::VersionedPlanSet::Generate(
      default_plan, graph::kOldestSupportedRuntime);
  FL_CHECK_MSG(plans.ok(), plans.status().ToString());

  if (model_store_ == nullptr) {
    // The population's singleton global model (Sec. 2.2).
    model_store_ = std::make_unique<server::ModelStore>(model.init_params);
    server_context_.model_store = model_store_.get();
  } else {
    FL_CHECK_MSG(model_store_->Latest().CompatibleWith(model.init_params),
                 "all tasks of a population must share the model schema");
  }

  server::FLTaskDescriptor task;
  task.id = TaskId{next_task_id_++};
  task.name = name;
  task.plans = std::move(plans).value();
  task.round_config = round_config;
  task.round_cadence = cadence;
  tasks_.push_back(std::move(task));
}

void FLSystem::AddEvaluationTask(const std::string& name,
                                 const graph::Model& model,
                                 const plan::ExampleSelector& selector,
                                 const protocol::RoundConfig& round_config,
                                 Duration cadence) {
  FL_CHECK_MSG(!started_, "tasks must be added before Start()");
  FL_CHECK_MSG(model_store_ != nullptr,
               "add a training task before evaluation tasks");
  const plan::FLPlan default_plan =
      plan::MakeEvaluationPlan(model, name, selector);
  auto plans = plan::VersionedPlanSet::Generate(
      default_plan, graph::kOldestSupportedRuntime);
  FL_CHECK_MSG(plans.ok(), plans.status().ToString());

  server::FLTaskDescriptor task;
  task.id = TaskId{next_task_id_++};
  task.name = name;
  task.plans = std::move(plans).value();
  task.round_config = round_config;
  task.round_cadence = cadence;
  tasks_.push_back(std::move(task));
}

void FLSystem::ProvisionData(DataProvisioner provisioner) {
  provisioner_ = std::move(provisioner);
}

void FLSystem::EnableAdaptiveWindows(
    protocol::AdaptiveWindowController::Params params) {
  const bool arm_now = started_ && !adaptive_.has_value();
  adaptive_.emplace(AdaptiveState{
      protocol::AdaptiveWindowController(params), {}, 0, false});
  if (arm_now) ScheduleAdaptiveTick();
}

void FLSystem::ScheduleAdaptiveTick() {
  queue_.After(Minutes(1), [this] {
    if (!adaptive_.has_value()) return;
    AdaptiveState& state = *adaptive_;
    if (!state.shadow_initialized && !tasks_.empty()) {
      state.shadow_config = tasks_.front().round_config;
      state.shadow_initialized = true;
    }
    const auto& log = stats_->round_log();
    bool changed = false;
    for (; state.log_cursor < log.size(); ++state.log_cursor) {
      const RoundSummary& summary = log[state.log_cursor];
      protocol::RoundObservation obs;
      obs.outcome = summary.outcome;
      obs.selection_duration = summary.selection_duration;
      obs.round_duration = summary.round_duration;
      obs.completed = summary.contributors;
      const auto it = stats_->per_round().find(summary.round);
      if (it != stats_->per_round().end()) {
        obs.completed = it->second.completed;
        obs.dropped = it->second.dropped;
      }
      state.shadow_config =
          state.controller.Update(state.shadow_config, obs);
      changed = true;
    }
    if (changed && coordinator_.value != 0) {
      actors_->Send(ActorId{}, coordinator_,
                    server::MsgUpdateRoundConfig{TaskId{0},
                                                 state.shadow_config});
    }
    ScheduleAdaptiveTick();
  });
}

ActorId FLSystem::SpawnCoordinator() {
  // Never spawn a duplicate while the current instance is healthy (the
  // lock's re-entrant owner semantics would otherwise admit one).
  if (coordinator_.value != 0 && actors_->IsAlive(coordinator_)) {
    return ActorId{};
  }
  // Exactly-once semantics via the shared lock service (Sec. 4.2/4.4).
  auto epoch = locks_.Acquire(config_.population_name, "coordinator",
                              queue_.now());
  if (!epoch.ok()) return ActorId{};

  server::CoordinatorActor::Init init;
  init.population = config_.population_name;
  init.tasks = tasks_;  // copy: the system retains the master list
  init.selectors = selector_ids_;
  init.context = &server_context_;
  init.tick_period = config_.coordinator_tick;
  init.max_waiting_per_selector = config_.max_waiting_per_selector;
  init.pipelined_selection = config_.pipelined_selection;
  init.lock_epoch = *epoch;
  coordinator_ = actors_->Spawn<server::CoordinatorActor>("coordinator",
                                                          std::move(init));
  return coordinator_;
}

void FLSystem::Start() {
  FL_CHECK_MSG(!started_, "Start() called twice");
  FL_CHECK_MSG(!tasks_.empty(), "no tasks configured");
  started_ = true;

  // Continuous profiling (FL_PROFILER=1): arm the SIGPROF sampler and heap
  // sampling before any actor runs so every round is covered. One branch
  // when the env var is unset.
  if (const Status s = profiler::StartFromEnv(); !s.ok()) {
    FL_LOG(Warning) << "profiler disabled: " << s.ToString();
  }

  // Boot the ops plane first so telemetry + the round ledger are recording
  // before any actor reports. A failed bind (port taken) degrades to
  // "plane off" rather than failing the deployment.
  if (config_.statusz_port.has_value()) {
    ops::OpsPlane::Options ops_opts;
    ops_opts.port = *config_.statusz_port;
    ops_opts.population = config_.population_name;
    ops_opts.health = config_.health_policy;
    ops_ = std::make_unique<ops::OpsPlane>(std::move(ops_opts),
                                           round_ledger_.get(),
                                           bundler_.get());
    if (const Status s = ops_->Start(); !s.ok()) {
      FL_LOG(Warning) << "ops plane disabled: " << s.ToString();
      ops_.reset();
    } else {
      bundler_->set_health_source(&ops_->health());
      FL_LOG(Info) << "ops plane serving on http://127.0.0.1:"
                   << ops_->port();
    }
  }

  // Abnormal-exit forensics: once a bundle dir is configured, fatal signals
  // dump the flight recorder there and the journal tail is flushed at exit.
  if (!config_.bundle_dir.empty()) {
    ops::CrashHandlerOptions crash_opts;
    crash_opts.flight_dump_path = config_.bundle_dir + "/crash-flight.log";
    ops::InstallCrashHandler(crash_opts);
  }

  // Selectors first (the coordinator greets them on start).
  for (std::size_t i = 0; i < config_.selector_count; ++i) {
    server::SelectorActor::Init init;
    init.population = config_.population_name;
    init.coordinator = ActorId{};  // learned via MsgCoordinatorHello
    init.context = &server_context_;
    init.max_waiting = config_.max_waiting_per_selector;
    init.respawn_coordinator = [this]() -> ActorId {
      return SpawnCoordinator();
    };
    const ActorId sel = actors_->Spawn<server::SelectorActor>(
        "selector-" + std::to_string(i), std::move(init));
    selector_ids_.push_back(sel);
    frontend_->AddSelector(sel);
  }
  SpawnCoordinator();
  FL_CHECK_MSG(coordinator_.value != 0, "failed to acquire population lock");

  // The device fleet.
  std::vector<sim::DeviceProfile> profiles =
      sim::GeneratePopulation(config_.population, rng_);
  agents_.reserve(profiles.size());
  const std::string store_name =
      tasks_.front().plans.plans().begin()->second.device.selector.store_name;
  for (const sim::DeviceProfile& profile : profiles) {
    DeviceAgent::Services services;
    services.queue = &queue_;
    services.network = &network_;
    services.curve = &curve_;
    services.frontend = frontend_.get();
    services.attestation = &attestation_;
    services.stats = stats_.get();
    services.config = &config_;
    auto agent = std::make_unique<DeviceAgent>(profile, services);
    agent->Configure(config_.population_name, store_name,
                     config_.device_checkin_cadence);
    if (provisioner_) {
      provisioner_(profile, *agent, agent->rng(), queue_.now());
    }
    agent->Start();
    agents_.push_back(std::move(agent));
  }

  ScheduleStatsSampler();
  if (config_.data_refresh_period.millis > 0 && provisioner_) {
    ScheduleDataRefresh();
  }
  if (adaptive_.has_value()) ScheduleAdaptiveTick();
}

void FLSystem::ScheduleStatsSampler() {
  // Sample often relative to the bucket width so short-lived states
  // (participating lasts a minute or two) are measured, not aliased.
  const Duration period =
      std::min(Minutes(1), Duration{config_.stats_bucket.millis / 2});
  queue_.After(period, [this] {
    stats_->SampleStates(queue_.now());
    if (telemetry::Enabled()) {
      auto& registry = telemetry::MetricsRegistry::Global();
      registry.GetGauge("fl_sim_live_actors")
          ->Set(static_cast<double>(actors_->live_actors()));
      registry.GetGauge("fl_sim_event_queue_pending")
          ->Set(static_cast<double>(queue_.pending()));
      const auto& qs = queue_.stats();
      registry.GetGauge("fl_sim_events_scheduled_total")
          ->Set(static_cast<double>(qs.scheduled));
      registry.GetGauge("fl_sim_events_fired_total")
          ->Set(static_cast<double>(qs.fired));
      registry.GetGauge("fl_sim_events_cancelled_total")
          ->Set(static_cast<double>(qs.cancelled));
      registry.GetGauge("fl_sim_events_cascaded_total")
          ->Set(static_cast<double>(qs.cascaded));
      const auto occupancy = queue_.LevelOccupancy();
      for (std::size_t level = 0; level < occupancy.size(); ++level) {
        const std::string name =
            level < sim::EventQueue::kLevels
                ? "fl_sim_wheel_level_" + std::to_string(level) + "_live"
                : "fl_sim_wheel_overflow_live";
        registry.GetGauge(name)
            ->Set(static_cast<double>(occupancy[level]));
      }
      // One snapshot per tick feeds the monitors AND the ops plane
      // (window store, health evaluator, /statusz sim clock).
      const telemetry::MetricsSnapshot snapshot = registry.Snapshot();
      monitor_hub_.Poll(queue_.now(), snapshot);
      if (ops_ != nullptr) ops_->Tick(queue_.now(), snapshot);
    }
    ScheduleStatsSampler();
  });
}

void FLSystem::ScheduleDataRefresh() {
  queue_.After(config_.data_refresh_period, [this] {
    for (auto& agent : agents_) {
      provisioner_(agent->profile(), *agent, agent->rng(), queue_.now());
    }
    ScheduleDataRefresh();
  });
}

void FLSystem::RunFor(Duration d) { queue_.RunFor(d); }
void FLSystem::RunUntil(SimTime t) { queue_.RunUntil(t); }
SimTime FLSystem::now() const { return queue_.now(); }

void FLSystem::CrashCoordinator() {
  if (coordinator_.value != 0) {
    // Drop the lease so a respawn can acquire it immediately (the crashed
    // owner will never renew; expiring naturally would also work).
    const auto epoch = locks_.Epoch(config_.population_name, queue_.now());
    actors_->Crash(coordinator_);
    if (epoch.has_value()) {
      (void)locks_.Release(config_.population_name, "coordinator", *epoch);
    }
  }
}

void FLSystem::CrashRandomSelector() {
  if (selector_ids_.empty()) return;
  const std::size_t idx = rng_.UniformInt(selector_ids_.size());
  actors_->Crash(selector_ids_[idx]);
}

bool FLSystem::CrashActiveMaster() {
  auto* coord = actors_->Get<server::CoordinatorActor>(coordinator_);
  if (coord == nullptr) return false;
  const auto master = coord->active_master();
  if (!master.has_value()) return false;
  // Masters watch-notify the coordinator, which restarts the round
  // (Sec. 4.4).
  actors_->Crash(*master);
  return true;
}

std::vector<DeviceAgent*> FLSystem::devices() {
  std::vector<DeviceAgent*> out;
  out.reserve(agents_.size());
  for (auto& a : agents_) out.push_back(a.get());
  return out;
}

}  // namespace fl::core
