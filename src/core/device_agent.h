// DeviceAgent: one simulated phone. Combines the availability process
// (eligibility), the on-device FL runtime (Sec. 3), the multi-tenant
// scheduler, pace-steering compliance, the Secure Aggregation client, and
// the device half of the round protocol (Sec. 2.2), all driven by the
// discrete-event queue.
#pragma once

#include <memory>
#include <optional>

#include "src/analytics/events.h"
#include "src/analytics/journal.h"
#include "src/core/config.h"
#include "src/core/fleet_stats.h"
#include "src/device/attestation.h"
#include "src/device/example_store.h"
#include "src/device/runtime.h"
#include "src/device/scheduler.h"
#include "src/secagg/client.h"
#include "src/server/frontend.h"
#include "src/sim/event_queue.h"
#include "src/sim/network.h"
#include "src/telemetry/trace_context.h"

namespace fl::core {

class DeviceAgent {
 public:
  struct Services {
    sim::EventQueue* queue = nullptr;
    sim::NetworkModel* network = nullptr;
    const sim::DiurnalCurve* curve = nullptr;
    server::ServerFrontend* frontend = nullptr;
    const device::AttestationAuthority* attestation = nullptr;
    FleetStats* stats = nullptr;
    const FLSystemConfig* config = nullptr;
  };

  DeviceAgent(sim::DeviceProfile profile, Services services);

  // Registers a population + its example store on this device
  // ("Programmatic Configuration", Sec. 3).
  void Configure(const std::string& population, const std::string& store_name,
                 Duration min_checkin_interval);

  device::InMemoryExampleStore& GetOrCreateStore(const std::string& name);
  device::ExampleStoreRegistry& stores() { return registry_; }
  const sim::DeviceProfile& profile() const { return profile_; }
  Rng& rng() { return rng_; }
  bool eligible() const { return eligible_; }
  std::uint64_t sessions_started() const { return sessions_started_; }
  std::uint64_t sessions_completed() const { return sessions_completed_; }

  // Arms the agent: schedules eligibility toggles and check-in attempts.
  void Start();

 private:
  struct Session {
    SessionId id;
    std::uint64_t generation = 0;
    SimTime checkin_at;
    std::string population;
    analytics::SessionTrace trace;
    // Causal context: seeded at check-in (device + session), completed on
    // assignment (round + the server's config span as parent). Installed
    // around every frontend call so server-side spans/flight records link
    // back to this session.
    telemetry::TraceContext ctx;
    std::uint64_t session_span = 0;  // "device_session", open while assigned
    std::uint64_t train_span = 0;
    std::uint64_t upload_span = 0;
    // Populated on assignment.
    bool assigned = false;
    RoundId round;
    ActorId aggregator;
    std::optional<plan::FLPlan> plan;
    std::optional<Checkpoint> global;
    SimTime participation_deadline;
    bool training = false;
    bool trained = false;
    bool uploading = false;
    bool reported_ok = false;
    std::optional<fedavg::ClientUpdateResult> update;
    fedavg::ClientMetrics metrics;
    std::size_t examples_used = 0;
    // Plain-path update codec for this round (from the assignment).
    protocol::WireCodecConfig codec;
    // Secure aggregation.
    bool secagg = false;
    double secagg_clip = 4.0;
    std::uint32_t secagg_max_summands = 2;
    std::uint8_t secagg_ring_bits = 32;
    std::uint64_t secagg_index_seed = 0;
    std::size_t secagg_vector_length = 0;
    std::optional<secagg::SecAggClient> sa_client;
    std::optional<std::vector<secagg::ParticipantIndex>> sa_u1;
    bool sa_masked_sent = false;
  };

  // --- lifecycle ---
  void ScheduleNextToggle();
  void OnToggle(bool now_eligible);
  void ScheduleCheckinPoll(Duration delay);
  void TryCheckin();
  void BeginSession(const std::string& population);

  // --- server link callbacks (all generation-guarded) ---
  server::DeviceLink MakeLink(std::uint64_t generation);
  void OnAssigned(std::uint64_t gen, const server::TaskAssignment& assignment);
  void OnRejected(std::uint64_t gen, const server::RejectionNotice& notice);
  void OnReportAck(std::uint64_t gen, const server::ReportAck& ack);
  void OnClosed(std::uint64_t gen);
  void OnSecAggDirectory(std::uint64_t gen, const server::SecAggDirectoryMsg&);
  void OnSecAggShares(std::uint64_t gen, const server::SecAggSharesMsg&);
  void OnSecAggUnmask(std::uint64_t gen, const server::SecAggUnmaskMsg&);

  // --- round execution ---
  void StartTraining(std::uint64_t gen);
  void FinishTraining(std::uint64_t gen);
  void BeginUpload(std::uint64_t gen);
  void MaybeSendMaskedInput(std::uint64_t gen);
  void SendSecAggUpload(std::uint64_t gen, std::uint64_t bytes,
                        std::function<void()> send);

  // --- bookkeeping ---
  void SetState(analytics::DeviceState s);
  void AddTrace(analytics::SessionEvent e);
  // Appends a device-sourced record for the live session to the global
  // event journal (no-op when journaling is disabled or no session).
  void JournalEvent(analytics::JournalEventKind kind,
                    std::string detail = {});
  void Interrupt();                // eligibility lost mid-session
  void FailSession(const std::string& why);  // '*' error path
  void EndSession(bool completed);
  bool Active(std::uint64_t gen) const {
    return session_.has_value() && session_->generation == gen;
  }

  sim::DeviceProfile profile_;
  Services services_;
  sim::AvailabilityProcess availability_;
  Rng rng_;
  bool eligible_ = false;
  analytics::DeviceState state_ = analytics::DeviceState::kIdle;

  device::ExampleStoreRegistry registry_;
  std::map<std::string, std::shared_ptr<device::InMemoryExampleStore>>
      owned_stores_;
  device::MultiTenantScheduler scheduler_;
  device::FlRuntime runtime_;

  std::optional<Session> session_;
  std::uint64_t generation_ = 0;
  std::uint64_t session_counter_ = 0;
  std::uint64_t sessions_started_ = 0;
  std::uint64_t sessions_completed_ = 0;
  bool poll_scheduled_ = false;
};

}  // namespace fl::core
