#include "src/crypto/aead.h"

#include <cstring>

namespace fl::crypto {
namespace {

Key256 MacKey(const Key256& enc_key) {
  const Digest d = DeriveKey(
      std::span<const std::uint8_t>(enc_key.data(), enc_key.size()),
      "aead-mac-key");
  Key256 k;
  std::memcpy(k.data(), d.data(), k.size());
  return k;
}

}  // namespace

Bytes AeadEncrypt(const Key256& key, const Nonce96& nonce,
                  std::span<const std::uint8_t> plaintext) {
  Bytes out;
  out.reserve(nonce.size() + plaintext.size() + 32);
  out.insert(out.end(), nonce.begin(), nonce.end());
  out.insert(out.end(), plaintext.begin(), plaintext.end());
  ChaCha20Xor(key, nonce, 1,
              std::span<std::uint8_t>(out.data() + nonce.size(),
                                      plaintext.size()));
  const Key256 mac_key = MacKey(key);
  const Digest tag = HmacSha256(
      std::span<const std::uint8_t>(mac_key.data(), mac_key.size()),
      std::span<const std::uint8_t>(out.data(), out.size()));
  out.insert(out.end(), tag.begin(), tag.end());
  return out;
}

Result<Bytes> AeadDecrypt(const Key256& key,
                          std::span<const std::uint8_t> ciphertext) {
  if (ciphertext.size() < 12 + 32) {
    return DataLossError("AEAD ciphertext too short");
  }
  const std::size_t body_end = ciphertext.size() - 32;
  const Key256 mac_key = MacKey(key);
  const Digest expected = HmacSha256(
      std::span<const std::uint8_t>(mac_key.data(), mac_key.size()),
      ciphertext.first(body_end));
  // Constant-time comparison.
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    diff |= expected[i] ^ ciphertext[body_end + i];
  }
  if (diff != 0) {
    return PermissionDeniedError("AEAD tag mismatch");
  }
  Nonce96 nonce;
  std::memcpy(nonce.data(), ciphertext.data(), nonce.size());
  Bytes plain(ciphertext.begin() + 12,
              ciphertext.begin() + static_cast<std::ptrdiff_t>(body_end));
  ChaCha20Xor(key, nonce, 1, std::span<std::uint8_t>(plain));
  return plain;
}

}  // namespace fl::crypto
