#include "src/crypto/shamir.h"

#include <unordered_set>

#include "src/crypto/dh.h"  // MulMod / PowMod

namespace fl::crypto {
namespace {

constexpr std::uint64_t kP = kShamirPrime;

std::uint64_t AddMod(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;  // < 2^62, no overflow
  return s >= kP ? s - kP : s;
}

std::uint64_t SubMod(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kP - b;
}

std::uint64_t InvMod(std::uint64_t a) {
  // Fermat: a^(p-2) mod p.
  return PowMod(a, kP - 2, kP);
}

// Evaluates the polynomial with the given coefficients at x (Horner).
std::uint64_t EvalPoly(std::span<const std::uint64_t> coeffs,
                       std::uint64_t x) {
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = AddMod(MulMod(acc, x, kP), coeffs[i]);
  }
  return acc;
}

}  // namespace

Result<std::vector<Share>> ShamirSplit(std::uint64_t secret, std::size_t n,
                                       std::size_t t, Rng& rng) {
  if (t == 0 || t > n) {
    return InvalidArgumentError("Shamir threshold must satisfy 1 <= t <= n");
  }
  if (n >= kP) return InvalidArgumentError("too many shares");
  std::vector<std::uint64_t> coeffs(t);
  coeffs[0] = secret % kP;
  for (std::size_t i = 1; i < t; ++i) {
    coeffs[i] = rng.UniformInt(kP);
  }
  std::vector<Share> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = i + 1;
    shares[i] = Share{x, EvalPoly(coeffs, x)};
  }
  return shares;
}

Result<std::vector<std::uint64_t>> ShamirLagrangeAtZero(
    std::span<const Share> shares, std::size_t t) {
  if (shares.size() < t) {
    return FailedPreconditionError(
        "need " + std::to_string(t) + " shares, have " +
        std::to_string(shares.size()));
  }
  // Use exactly t shares; verify x-coordinates are distinct.
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < t; ++i) {
    if (!seen.insert(shares[i].x).second) {
      return InvalidArgumentError("duplicate share point");
    }
    if (shares[i].x == 0 || shares[i].x >= kP) {
      return InvalidArgumentError("share point out of field range");
    }
  }
  // w_i = prod_{j != i} x_j / (x_j - x_i). Every denominator is inverted
  // through one prefix-product walk and a single InvMod of the total
  // (Montgomery batch inversion): inverses are unique field elements, so
  // the result is bit-identical to inverting each denominator separately.
  std::vector<std::uint64_t> num(t), den(t), prefix(t);
  for (std::size_t i = 0; i < t; ++i) {
    std::uint64_t n = 1, d = 1;
    for (std::size_t j = 0; j < t; ++j) {
      if (j == i) continue;
      n = MulMod(n, shares[j].x, kP);
      d = MulMod(d, SubMod(shares[j].x, shares[i].x), kP);
    }
    num[i] = n;
    den[i] = d;
    prefix[i] = i == 0 ? d : MulMod(prefix[i - 1], d, kP);
  }
  std::uint64_t inv_running = InvMod(prefix[t - 1]);
  std::vector<std::uint64_t> coeffs(t);
  for (std::size_t i = t; i-- > 0;) {
    const std::uint64_t inv_den =
        i == 0 ? inv_running : MulMod(inv_running, prefix[i - 1], kP);
    coeffs[i] = MulMod(num[i], inv_den, kP);
    inv_running = MulMod(inv_running, den[i], kP);
  }
  return coeffs;
}

std::uint64_t ShamirApplyLagrange(std::span<const Share> shares,
                                  std::span<const std::uint64_t> coeffs) {
  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < coeffs.size(); ++i) {
    secret = AddMod(secret, MulMod(shares[i].y, coeffs[i], kP));
  }
  return secret;
}

Result<std::uint64_t> ShamirReconstruct(std::span<const Share> shares,
                                        std::size_t t) {
  // Lagrange interpolation at x = 0:
  //   secret = sum_i y_i * prod_{j != i} x_j / (x_j - x_i)
  FL_ASSIGN_OR_RETURN(std::vector<std::uint64_t> coeffs,
                      ShamirLagrangeAtZero(shares, t));
  return ShamirApplyLagrange(shares, coeffs);
}

namespace {
constexpr std::size_t kLimbBytes = 7;   // 56-bit limbs, each < 2^61 - 1
constexpr std::size_t kLimbCount = 5;   // ceil(32 / 7)
}  // namespace

Result<std::vector<std::vector<Share>>> ShamirSplitKey(const Key256& key,
                                                       std::size_t n,
                                                       std::size_t t,
                                                       Rng& rng) {
  std::vector<std::vector<Share>> limbs;
  limbs.reserve(kLimbCount);
  for (std::size_t l = 0; l < kLimbCount; ++l) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < kLimbBytes; ++b) {
      const std::size_t idx = l * kLimbBytes + b;
      if (idx < key.size()) {
        v |= static_cast<std::uint64_t>(key[idx]) << (8 * b);
      }
    }
    FL_ASSIGN_OR_RETURN(std::vector<Share> s, ShamirSplit(v, n, t, rng));
    limbs.push_back(std::move(s));
  }
  return limbs;
}

Result<Key256> ShamirReconstructKey(
    std::span<const std::vector<Share>> limb_shares, std::size_t t) {
  if (limb_shares.size() != kLimbCount) {
    return InvalidArgumentError("expected " + std::to_string(kLimbCount) +
                                " limbs");
  }
  // The five limbs of one key share one share-set: the same evaluation
  // points in the same order. Compute the Lagrange coefficients once from
  // limb 0 and reuse them across limbs, falling back to a per-limb
  // reconstruction only if a caller hands us differently-ordered points.
  FL_ASSIGN_OR_RETURN(std::vector<std::uint64_t> coeffs,
                      ShamirLagrangeAtZero(limb_shares[0], t));
  Key256 key{};
  for (std::size_t l = 0; l < kLimbCount; ++l) {
    bool same_points = limb_shares[l].size() >= t;
    for (std::size_t i = 0; same_points && i < t; ++i) {
      same_points = limb_shares[l][i].x == limb_shares[0][i].x;
    }
    std::uint64_t v;
    if (same_points) {
      v = ShamirApplyLagrange(limb_shares[l], coeffs);
    } else {
      FL_ASSIGN_OR_RETURN(v, ShamirReconstruct(limb_shares[l], t));
    }
    for (std::size_t b = 0; b < kLimbBytes; ++b) {
      const std::size_t idx = l * kLimbBytes + b;
      if (idx < key.size()) {
        key[idx] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }
  return key;
}

}  // namespace fl::crypto
