#include "src/crypto/shamir.h"

#include <unordered_set>

#include "src/crypto/dh.h"  // MulMod / PowMod

namespace fl::crypto {
namespace {

constexpr std::uint64_t kP = kShamirPrime;

std::uint64_t AddMod(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;  // < 2^62, no overflow
  return s >= kP ? s - kP : s;
}

std::uint64_t SubMod(std::uint64_t a, std::uint64_t b) {
  return a >= b ? a - b : a + kP - b;
}

std::uint64_t InvMod(std::uint64_t a) {
  // Fermat: a^(p-2) mod p.
  return PowMod(a, kP - 2, kP);
}

// Evaluates the polynomial with the given coefficients at x (Horner).
std::uint64_t EvalPoly(std::span<const std::uint64_t> coeffs,
                       std::uint64_t x) {
  std::uint64_t acc = 0;
  for (std::size_t i = coeffs.size(); i-- > 0;) {
    acc = AddMod(MulMod(acc, x, kP), coeffs[i]);
  }
  return acc;
}

}  // namespace

Result<std::vector<Share>> ShamirSplit(std::uint64_t secret, std::size_t n,
                                       std::size_t t, Rng& rng) {
  if (t == 0 || t > n) {
    return InvalidArgumentError("Shamir threshold must satisfy 1 <= t <= n");
  }
  if (n >= kP) return InvalidArgumentError("too many shares");
  std::vector<std::uint64_t> coeffs(t);
  coeffs[0] = secret % kP;
  for (std::size_t i = 1; i < t; ++i) {
    coeffs[i] = rng.UniformInt(kP);
  }
  std::vector<Share> shares(n);
  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t x = i + 1;
    shares[i] = Share{x, EvalPoly(coeffs, x)};
  }
  return shares;
}

Result<std::uint64_t> ShamirReconstruct(std::span<const Share> shares,
                                        std::size_t t) {
  if (shares.size() < t) {
    return FailedPreconditionError(
        "need " + std::to_string(t) + " shares, have " +
        std::to_string(shares.size()));
  }
  // Use exactly t shares; verify x-coordinates are distinct.
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < t; ++i) {
    if (!seen.insert(shares[i].x).second) {
      return InvalidArgumentError("duplicate share point");
    }
    if (shares[i].x == 0 || shares[i].x >= kP) {
      return InvalidArgumentError("share point out of field range");
    }
  }
  // Lagrange interpolation at x = 0:
  //   secret = sum_i y_i * prod_{j != i} x_j / (x_j - x_i)
  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < t; ++i) {
    std::uint64_t num = 1, den = 1;
    for (std::size_t j = 0; j < t; ++j) {
      if (j == i) continue;
      num = MulMod(num, shares[j].x, kP);
      den = MulMod(den, SubMod(shares[j].x, shares[i].x), kP);
    }
    const std::uint64_t term =
        MulMod(shares[i].y, MulMod(num, InvMod(den), kP), kP);
    secret = AddMod(secret, term);
  }
  return secret;
}

namespace {
constexpr std::size_t kLimbBytes = 7;   // 56-bit limbs, each < 2^61 - 1
constexpr std::size_t kLimbCount = 5;   // ceil(32 / 7)
}  // namespace

Result<std::vector<std::vector<Share>>> ShamirSplitKey(const Key256& key,
                                                       std::size_t n,
                                                       std::size_t t,
                                                       Rng& rng) {
  std::vector<std::vector<Share>> limbs;
  limbs.reserve(kLimbCount);
  for (std::size_t l = 0; l < kLimbCount; ++l) {
    std::uint64_t v = 0;
    for (std::size_t b = 0; b < kLimbBytes; ++b) {
      const std::size_t idx = l * kLimbBytes + b;
      if (idx < key.size()) {
        v |= static_cast<std::uint64_t>(key[idx]) << (8 * b);
      }
    }
    FL_ASSIGN_OR_RETURN(std::vector<Share> s, ShamirSplit(v, n, t, rng));
    limbs.push_back(std::move(s));
  }
  return limbs;
}

Result<Key256> ShamirReconstructKey(
    std::span<const std::vector<Share>> limb_shares, std::size_t t) {
  if (limb_shares.size() != kLimbCount) {
    return InvalidArgumentError("expected " + std::to_string(kLimbCount) +
                                " limbs");
  }
  Key256 key{};
  for (std::size_t l = 0; l < kLimbCount; ++l) {
    FL_ASSIGN_OR_RETURN(std::uint64_t v,
                        ShamirReconstruct(limb_shares[l], t));
    for (std::size_t b = 0; b < kLimbBytes; ++b) {
      const std::size_t idx = l * kLimbBytes + b;
      if (idx < key.size()) {
        key[idx] = static_cast<std::uint8_t>(v >> (8 * b));
      }
    }
  }
  return key;
}

}  // namespace fl::crypto
