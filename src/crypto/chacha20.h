// ChaCha20 stream cipher (RFC 8439 core) used as
//  (a) the PRG that expands Secure Aggregation mask seeds into full-length
//      masking vectors, and
//  (b) the cipher half of the authenticated-encryption scheme protecting
//      Shamir shares in transit (Sec. 6).
//
// The production path is a state-parallel multi-block kernel: several
// blocks' states advance together in word-lane layout so every
// quarter-round operation is one SIMD op per word row, and keystream is
// produced as 32-bit words with no byte-at-a-time serialization. Two
// kernels exist — a portable 4-lane kernel (GCC/Clang vector extensions,
// 128-bit ops) and an 8-lane AVX2 kernel in chacha20_avx2.cc — selected
// once at startup by CPU capability; both are bit-exact against the
// retained one-block scalar reference (ChaCha20BlockRef / PrgWordsRef),
// which tests and the scaling bench use as the oracle.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"

namespace fl::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

// Generates the ChaCha20 keystream and XORs it over `data` in place.
void ChaCha20Xor(const Key256& key, const Nonce96& nonce,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data);

// Deterministic PRG over the keystream: expands a 32-byte seed into `count`
// uniform 32-bit words (the additive masks of Secure Aggregation). Thin
// wrapper over the streaming kernel for callers that need a materialized
// mask; the SecAgg hot paths use PrgAccumulate instead.
std::vector<std::uint32_t> PrgWords(const Key256& seed, std::size_t count,
                                    std::uint32_t stream_id = 0);

// Fused mask-accumulate: streams PRG(seed, stream_id) keystream words
// straight into acc[i] += ks[i] (sign >= 0) or acc[i] -= ks[i] (sign < 0)
// from a small stack buffer — no mask vector is ever materialized, zeroed,
// or re-walked. Bit-exact with applying PrgWords() word-by-word (u32
// arithmetic wraps mod 2^32).
void PrgAccumulate(const Key256& seed, std::uint32_t stream_id, int sign,
                   std::span<std::uint32_t> acc);

// --- Scalar reference implementations (bit-exactness oracles) -------------
// One-block RFC 8439 core with byte-serialized output — the
// pre-fast-path implementation, retained verbatim. Tests pin the
// multi-block kernels against these; the scaling bench uses them as the
// "scalar baseline" side of its speedup gate. Not for production callers.
void ChaCha20BlockRef(const Key256& key, const Nonce96& nonce,
                      std::uint32_t counter, std::uint8_t out[64]);
std::vector<std::uint32_t> PrgWordsRef(const Key256& seed, std::size_t count,
                                       std::uint32_t stream_id = 0);

namespace internal {
// Blocks per invocation of the active multi-block kernel (4 portable,
// 8 AVX2). Tests use it to pin equivalence across stride boundaries,
// including block-counter wraparound mid-stride.
std::size_t ActiveStrideBlocks();
// Forces the portable 4-lane kernel (true) or re-resolves by CPU (false),
// so AVX2 hosts can exercise both code paths. Test-only; not thread-safe
// against concurrent keystream generation.
void UseGenericKernelForTest(bool generic);
}  // namespace internal

}  // namespace fl::crypto
