// ChaCha20 stream cipher (RFC 8439 core) used as
//  (a) the PRG that expands Secure Aggregation mask seeds into full-length
//      masking vectors, and
//  (b) the cipher half of the authenticated-encryption scheme protecting
//      Shamir shares in transit (Sec. 6).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/bytes.h"

namespace fl::crypto {

using Key256 = std::array<std::uint8_t, 32>;
using Nonce96 = std::array<std::uint8_t, 12>;

// Generates the ChaCha20 keystream and XORs it over `data` in place.
void ChaCha20Xor(const Key256& key, const Nonce96& nonce,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data);

// Deterministic PRG over the keystream: expands a 32-byte seed into `count`
// uniform 32-bit words (the additive masks of Secure Aggregation).
std::vector<std::uint32_t> PrgWords(const Key256& seed, std::size_t count,
                                    std::uint32_t stream_id = 0);

}  // namespace fl::crypto
