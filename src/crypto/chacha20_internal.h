// Shared internals between the portable multi-block ChaCha20 kernel
// (chacha20.cc) and the AVX2 kernel translation unit (chacha20_avx2.cc,
// compiled with -mavx2 and selected at runtime by CPU capability).
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>

namespace fl::crypto::internal {

// A multi-block kernel: advances `stride` consecutive blocks from the
// 16-word base state (counter slot state[12] ignored; per-block counters
// are `counter + lane`, each wrapping mod 2^32 independently — identical
// to the scalar reference incrementing one block at a time). Output is
// block-major: block l's word w lands at out[l * 16 + w].
using BlocksFn = void (*)(const std::uint32_t state[16],
                          std::uint32_t counter, std::uint32_t* out);

inline constexpr std::size_t kGenericStrideBlocks = 4;
inline constexpr std::size_t kAvx2StrideBlocks = 8;
inline constexpr std::size_t kMaxStrideWords = kAvx2StrideBlocks * 16;

// Keystream words are defined by the RFC's little-endian serialization; the
// PRG contract (and every mask already pinned by tests/benches) is "native
// load of that byte stream". Storing this value and memcpy'ing it out as
// raw bytes therefore reproduces the RFC byte stream on either endianness.
inline std::uint32_t NativeFromLE(std::uint32_t v) {
  if constexpr (std::endian::native == std::endian::big) {
    v = ((v >> 24) & 0x000000FFu) | ((v >> 8) & 0x0000FF00u) |
        ((v << 8) & 0x00FF0000u) | ((v << 24) & 0xFF000000u);
  }
  return v;
}

#if defined(FL_CHACHA20_AVX2)
// 8-lane kernel, compiled with -mavx2; call only when the CPU reports AVX2.
void BlocksX8Avx2(const std::uint32_t state[16], std::uint32_t counter,
                  std::uint32_t* out);
#endif

}  // namespace fl::crypto::internal
