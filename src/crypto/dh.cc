#include "src/crypto/dh.h"

#include <cstring>

namespace fl::crypto {

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m) {
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t PowMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) {
  std::uint64_t result = 1;
  std::uint64_t b = base % m;
  while (exp > 0) {
    if (exp & 1) result = MulMod(result, b, m);
    b = MulMod(b, b, m);
    exp >>= 1;
  }
  return result;
}

DhKeyPair GenerateKeyPair(const Key256& randomness) {
  std::uint64_t x;
  std::memcpy(&x, randomness.data(), sizeof(x));
  // Exponent in [2, p-2].
  x = 2 + (x % (kDhPrime - 3));
  return DhKeyPair{x, PowMod(kDhGenerator, x, kDhPrime)};
}

Key256 Agree(const DhKeyPair& mine, std::uint64_t peer_public,
             const std::string& label) {
  const std::uint64_t shared = PowMod(peer_public, mine.secret, kDhPrime);
  std::uint8_t buf[8];
  for (int i = 0; i < 8; ++i) {
    buf[i] = static_cast<std::uint8_t>(shared >> (8 * i));
  }
  const Digest d =
      DeriveKey(std::span<const std::uint8_t>(buf, sizeof(buf)), label);
  Key256 key;
  std::memcpy(key.data(), d.data(), key.size());
  return key;
}

}  // namespace fl::crypto
