// Shamir t-of-n secret sharing over GF(p), p = 2^61 - 1.
//
// Secure Aggregation (Sec. 6) relies on secret sharing so that the server
// can recover the masks of clients who drop out after committing: each
// client shares both its DH secret key and its self-mask seed among the
// cohort; any t surviving clients let the server reconstruct exactly one of
// the two (never both) per client.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/crypto/chacha20.h"

namespace fl::crypto {

inline constexpr std::uint64_t kShamirPrime = 2305843009213693951ULL;  // 2^61-1

struct Share {
  std::uint64_t x = 0;  // evaluation point (participant index, 1-based)
  std::uint64_t y = 0;  // polynomial value
};

// Splits `secret` (reduced mod p) into n shares with threshold t
// (any t shares reconstruct; t-1 reveal nothing).
Result<std::vector<Share>> ShamirSplit(std::uint64_t secret, std::size_t n,
                                       std::size_t t, Rng& rng);

// Reconstructs the secret from >= t distinct shares via Lagrange
// interpolation at x = 0.
Result<std::uint64_t> ShamirReconstruct(std::span<const Share> shares,
                                        std::size_t t);

// Lagrange-at-zero coefficients w_i for the x-coordinates of the first t
// `shares` (rejects duplicate or out-of-field points — the same validation
// ShamirReconstruct applies). The secret is then sum_i y_i * w_i mod p.
// Coefficients depend only on the evaluation points, so one computation
// serves every polynomial sharing the share-set — ShamirReconstructKey
// reuses one set across all five limbs of a key, and the denominators are
// inverted with a single modular exponentiation (batch inversion) instead
// of t of them.
Result<std::vector<std::uint64_t>> ShamirLagrangeAtZero(
    std::span<const Share> shares, std::size_t t);

// Applies precomputed coefficients: sum_i shares[i].y * coeffs[i] mod p.
// `shares` must order its evaluation points exactly as the share-set the
// coefficients were computed from.
std::uint64_t ShamirApplyLagrange(std::span<const Share> shares,
                                  std::span<const std::uint64_t> coeffs);

// Convenience: split/reconstruct a 256-bit key as five 56-bit limbs
// (each < p), so whole PRG seeds can be shared.
Result<std::vector<std::vector<Share>>> ShamirSplitKey(const Key256& key,
                                                       std::size_t n,
                                                       std::size_t t,
                                                       Rng& rng);
Result<Key256> ShamirReconstructKey(
    std::span<const std::vector<Share>> limb_shares, std::size_t t);

}  // namespace fl::crypto
