// Authenticated encryption: ChaCha20 + HMAC-SHA256, encrypt-then-MAC.
//
// Secure Aggregation clients exchange Shamir shares through the server; the
// shares are encrypted pairwise so the server (honest-but-curious, Sec. 6)
// relays them without learning their contents.
#pragma once

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/crypto/chacha20.h"
#include "src/crypto/sha256.h"

namespace fl::crypto {

// Ciphertext layout: 12-byte nonce | body | 32-byte tag.
Bytes AeadEncrypt(const Key256& key, const Nonce96& nonce,
                  std::span<const std::uint8_t> plaintext);

Result<Bytes> AeadDecrypt(const Key256& key,
                          std::span<const std::uint8_t> ciphertext);

}  // namespace fl::crypto
