// Finite-field Diffie–Hellman key agreement over a 61-bit safe prime.
//
// SUBSTITUTION NOTE (documented in DESIGN.md): the production Secure
// Aggregation protocol of Bonawitz et al. (CCS 2017) uses elliptic-curve DH.
// We reproduce the protocol *structure* — per-client keypairs, pairwise
// agreed secrets expanded by a PRG — over a small prime field that is
// adequate for simulation and testing but NOT cryptographically strong.
// Every derived secret passes through SHA-256 before use as key material.
#pragma once

#include <cstdint>

#include "src/crypto/chacha20.h"
#include "src/crypto/sha256.h"

namespace fl::crypto {

// p = 2305843009213693951 = 2^61 - 1 (Mersenne prime), generator 3.
inline constexpr std::uint64_t kDhPrime = 2305843009213693951ULL;
inline constexpr std::uint64_t kDhGenerator = 3;

struct DhKeyPair {
  std::uint64_t secret = 0;  // x
  std::uint64_t public_key = 0;  // g^x mod p
};

std::uint64_t MulMod(std::uint64_t a, std::uint64_t b, std::uint64_t m);
std::uint64_t PowMod(std::uint64_t base, std::uint64_t exp, std::uint64_t m);

// Derives a keypair from 32 bytes of randomness.
DhKeyPair GenerateKeyPair(const Key256& randomness);

// Computes the shared secret (peer_public)^secret and hashes it into a
// 256-bit symmetric key, bound to `label` (e.g. "secagg-pairwise-mask").
Key256 Agree(const DhKeyPair& mine, std::uint64_t peer_public,
             const std::string& label);

}  // namespace fl::crypto
