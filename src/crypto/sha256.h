// SHA-256 and HMAC-SHA256 (FIPS 180-4 / RFC 2104), implemented from scratch.
// Used for key derivation and message authentication inside Secure
// Aggregation (Sec. 6).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>

#include "src/common/bytes.h"

namespace fl::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();
  void Update(std::span<const std::uint8_t> data);
  void Update(const std::string& s) {
    Update(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }
  Digest Finalize();

  static Digest Hash(std::span<const std::uint8_t> data);
  static Digest Hash(const std::string& s);

 private:
  void ProcessBlock(const std::uint8_t* block);
  std::array<std::uint32_t, 8> state_;
  std::uint64_t bit_count_ = 0;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
};

Digest HmacSha256(std::span<const std::uint8_t> key,
                  std::span<const std::uint8_t> message);

// HKDF-style expansion: derive a labelled subkey from input key material.
Digest DeriveKey(std::span<const std::uint8_t> key_material,
                 const std::string& label);

std::string DigestToHex(const Digest& d);

}  // namespace fl::crypto
