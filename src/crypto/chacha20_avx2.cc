// 8-lane ChaCha20 kernel, compiled with -mavx2 (see src/crypto/CMakeLists).
// Only reached through the runtime dispatch in chacha20.cc after
// __builtin_cpu_supports("avx2") — nothing here executes on older CPUs.
// Bit-exact with the 4-lane portable kernel and the scalar reference: the
// same per-block counters, just eight of them per invocation.
#include "src/crypto/chacha20_internal.h"

#if defined(FL_CHACHA20_AVX2)

namespace fl::crypto::internal {
namespace {

typedef std::uint32_t v8u __attribute__((vector_size(32)));

inline v8u Splat(std::uint32_t v) { return v8u{v, v, v, v, v, v, v, v}; }

inline v8u Rotl8(v8u x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound8(v8u& a, v8u& b, v8u& c, v8u& d) {
  a += b; d ^= a; d = Rotl8(d, 16);
  c += d; b ^= c; b = Rotl8(b, 12);
  a += b; d ^= a; d = Rotl8(d, 8);
  c += d; b ^= c; b = Rotl8(b, 7);
}

}  // namespace

void BlocksX8Avx2(const std::uint32_t s[16], std::uint32_t counter,
                  std::uint32_t* out) {
  v8u x[16];
  for (int w = 0; w < 16; ++w) x[w] = Splat(s[w]);
  const v8u ctr = v8u{counter,     counter + 1, counter + 2, counter + 3,
                      counter + 4, counter + 5, counter + 6, counter + 7};
  x[12] = ctr;
  for (int round = 0; round < 10; ++round) {
    QuarterRound8(x[0], x[4], x[8], x[12]);
    QuarterRound8(x[1], x[5], x[9], x[13]);
    QuarterRound8(x[2], x[6], x[10], x[14]);
    QuarterRound8(x[3], x[7], x[11], x[15]);
    QuarterRound8(x[0], x[5], x[10], x[15]);
    QuarterRound8(x[1], x[6], x[11], x[12]);
    QuarterRound8(x[2], x[7], x[8], x[13]);
    QuarterRound8(x[3], x[4], x[9], x[14]);
  }
  for (int w = 0; w < 16; ++w) {
    const v8u add = (w == 12) ? ctr : Splat(s[w]);
    const v8u v = x[w] + add;
    for (int l = 0; l < 8; ++l) out[l * 16 + w] = NativeFromLE(v[l]);
  }
}

}  // namespace fl::crypto::internal

#endif  // FL_CHACHA20_AVX2
