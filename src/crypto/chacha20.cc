#include "src/crypto/chacha20.h"

#include <cstring>

namespace fl::crypto {
namespace {

inline std::uint32_t Rotl(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                         std::uint32_t& d) {
  a += b; d ^= a; d = Rotl(d, 16);
  c += d; b ^= c; b = Rotl(b, 12);
  a += b; d ^= a; d = Rotl(d, 8);
  c += d; b ^= c; b = Rotl(b, 7);
}

inline std::uint32_t LoadLE32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

void Block(const Key256& key, const Nonce96& nonce, std::uint32_t counter,
           std::uint8_t out[64]) {
  std::uint32_t s[16];
  s[0] = 0x61707865;
  s[1] = 0x3320646e;
  s[2] = 0x79622d32;
  s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = LoadLE32(key.data() + 4 * i);
  s[12] = counter;
  for (int i = 0; i < 3; ++i) s[13 + i] = LoadLE32(nonce.data() + 4 * i);

  std::uint32_t w[16];
  std::memcpy(w, s, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    QuarterRound(w[0], w[4], w[8], w[12]);
    QuarterRound(w[1], w[5], w[9], w[13]);
    QuarterRound(w[2], w[6], w[10], w[14]);
    QuarterRound(w[3], w[7], w[11], w[15]);
    QuarterRound(w[0], w[5], w[10], w[15]);
    QuarterRound(w[1], w[6], w[11], w[12]);
    QuarterRound(w[2], w[7], w[8], w[13]);
    QuarterRound(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + s[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

}  // namespace

void ChaCha20Xor(const Key256& key, const Nonce96& nonce,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data) {
  std::uint8_t ks[64];
  std::uint32_t counter = initial_counter;
  std::size_t pos = 0;
  while (pos < data.size()) {
    Block(key, nonce, counter++, ks);
    const std::size_t take = std::min<std::size_t>(64, data.size() - pos);
    for (std::size_t i = 0; i < take; ++i) data[pos + i] ^= ks[i];
    pos += take;
  }
}

std::vector<std::uint32_t> PrgWords(const Key256& seed, std::size_t count,
                                    std::uint32_t stream_id) {
  Nonce96 nonce{};
  nonce[0] = static_cast<std::uint8_t>(stream_id);
  nonce[1] = static_cast<std::uint8_t>(stream_id >> 8);
  nonce[2] = static_cast<std::uint8_t>(stream_id >> 16);
  nonce[3] = static_cast<std::uint8_t>(stream_id >> 24);
  std::vector<std::uint32_t> out(count, 0);
  if (count == 0) return out;
  auto* bytes = reinterpret_cast<std::uint8_t*>(out.data());
  ChaCha20Xor(seed, nonce, 0,
              std::span<std::uint8_t>(bytes, count * sizeof(std::uint32_t)));
  return out;
}

}  // namespace fl::crypto
