#include "src/crypto/chacha20.h"

#include <cstring>

#include "src/crypto/chacha20_internal.h"

namespace fl::crypto {
namespace {

using internal::kMaxStrideWords;
using internal::NativeFromLE;

inline std::uint32_t LoadLE32(const std::uint8_t* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

// Expands key/nonce into the 16-word base state (counter slot s[12] = 0;
// the kernels substitute per-block counters).
void InitState(const Key256& key, const Nonce96& nonce, std::uint32_t s[16]) {
  s[0] = 0x61707865;
  s[1] = 0x3320646e;
  s[2] = 0x79622d32;
  s[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) s[4 + i] = LoadLE32(key.data() + 4 * i);
  s[12] = 0;
  for (int i = 0; i < 3; ++i) s[13 + i] = LoadLE32(nonce.data() + 4 * i);
}

Nonce96 StreamNonce(std::uint32_t stream_id) {
  Nonce96 nonce{};
  nonce[0] = static_cast<std::uint8_t>(stream_id);
  nonce[1] = static_cast<std::uint8_t>(stream_id >> 8);
  nonce[2] = static_cast<std::uint8_t>(stream_id >> 16);
  nonce[3] = static_cast<std::uint8_t>(stream_id >> 24);
  return nonce;
}

// --- Portable 4-lane kernel -------------------------------------------------
// GCC/Clang vector extensions: one v4u per state word row, so every
// quarter-round statement is one 128-bit op across four blocks. This beats
// relying on the autovectorizer, which (GCC 12, -O2/-O3) refuses or
// pessimizes the rotate-heavy lane loops.
typedef std::uint32_t v4u __attribute__((vector_size(16)));

inline v4u Rotl4(v4u x, int n) { return (x << n) | (x >> (32 - n)); }

inline void QuarterRound4(v4u& a, v4u& b, v4u& c, v4u& d) {
  a += b; d ^= a; d = Rotl4(d, 16);
  c += d; b ^= c; b = Rotl4(b, 12);
  a += b; d ^= a; d = Rotl4(d, 8);
  c += d; b ^= c; b = Rotl4(b, 7);
}

void BlocksX4(const std::uint32_t s[16], std::uint32_t counter,
              std::uint32_t* out) {
  v4u x[16];
  for (int w = 0; w < 16; ++w) x[w] = v4u{s[w], s[w], s[w], s[w]};
  const v4u ctr = v4u{counter, counter + 1, counter + 2, counter + 3};
  x[12] = ctr;
  for (int round = 0; round < 10; ++round) {
    QuarterRound4(x[0], x[4], x[8], x[12]);
    QuarterRound4(x[1], x[5], x[9], x[13]);
    QuarterRound4(x[2], x[6], x[10], x[14]);
    QuarterRound4(x[3], x[7], x[11], x[15]);
    QuarterRound4(x[0], x[5], x[10], x[15]);
    QuarterRound4(x[1], x[6], x[11], x[12]);
    QuarterRound4(x[2], x[7], x[8], x[13]);
    QuarterRound4(x[3], x[4], x[9], x[14]);
  }
  for (int w = 0; w < 16; ++w) {
    const v4u add = (w == 12) ? ctr : v4u{s[w], s[w], s[w], s[w]};
    const v4u v = x[w] + add;
    for (int l = 0; l < 4; ++l) out[l * 16 + w] = NativeFromLE(v[l]);
  }
}

// --- Kernel dispatch --------------------------------------------------------

struct Dispatch {
  internal::BlocksFn blocks;
  std::size_t stride_blocks;
  std::size_t stride_words;
};

Dispatch Resolve() {
#if defined(FL_CHACHA20_AVX2)
  if (__builtin_cpu_supports("avx2")) {
    return {internal::BlocksX8Avx2, internal::kAvx2StrideBlocks,
            internal::kAvx2StrideBlocks * 16};
  }
#endif
  return {BlocksX4, internal::kGenericStrideBlocks,
          internal::kGenericStrideBlocks * 16};
}

Dispatch& ActiveDispatch() {
  static Dispatch d = Resolve();
  return d;
}

}  // namespace

namespace internal {

std::size_t ActiveStrideBlocks() { return ActiveDispatch().stride_blocks; }

void UseGenericKernelForTest(bool generic) {
  ActiveDispatch() =
      generic ? Dispatch{BlocksX4, kGenericStrideBlocks,
                         kGenericStrideBlocks * 16}
              : Resolve();
}

}  // namespace internal

void ChaCha20Xor(const Key256& key, const Nonce96& nonce,
                 std::uint32_t initial_counter, std::span<std::uint8_t> data) {
  const Dispatch d = ActiveDispatch();
  std::uint32_t s[16];
  InitState(key, nonce, s);
  std::uint32_t ks[kMaxStrideWords];
  std::uint32_t counter = initial_counter;
  std::size_t pos = 0;
  while (pos < data.size()) {
    d.blocks(s, counter, ks);
    counter += static_cast<std::uint32_t>(d.stride_blocks);
    const std::size_t take = std::min<std::size_t>(
        d.stride_words * sizeof(std::uint32_t), data.size() - pos);
    // ks holds native-mapped LE words: its raw bytes ARE the RFC keystream.
    const auto* ksb = reinterpret_cast<const std::uint8_t*>(ks);
    std::uint8_t* __restrict p = data.data() + pos;
    for (std::size_t i = 0; i < take; ++i) p[i] ^= ksb[i];
    pos += take;
  }
}

std::vector<std::uint32_t> PrgWords(const Key256& seed, std::size_t count,
                                    std::uint32_t stream_id) {
  std::vector<std::uint32_t> out(count);
  if (count == 0) return out;
  const Dispatch d = ActiveDispatch();
  std::uint32_t s[16];
  InitState(seed, StreamNonce(stream_id), s);
  std::uint32_t ks[kMaxStrideWords];
  std::uint32_t counter = 0;
  std::size_t pos = 0;
  while (pos < count) {
    d.blocks(s, counter, ks);
    counter += static_cast<std::uint32_t>(d.stride_blocks);
    const std::size_t take = std::min(d.stride_words, count - pos);
    std::memcpy(out.data() + pos, ks, take * sizeof(std::uint32_t));
    pos += take;
  }
  return out;
}

void PrgAccumulate(const Key256& seed, std::uint32_t stream_id, int sign,
                   std::span<std::uint32_t> acc) {
  if (acc.empty()) return;
  const Dispatch d = ActiveDispatch();
  std::uint32_t s[16];
  InitState(seed, StreamNonce(stream_id), s);
  std::uint32_t ks[kMaxStrideWords];
  std::uint32_t counter = 0;
  std::size_t pos = 0;
  const std::size_t n = acc.size();
  std::uint32_t* __restrict a = acc.data();
  while (pos < n) {
    d.blocks(s, counter, ks);
    counter += static_cast<std::uint32_t>(d.stride_blocks);
    const std::size_t take = std::min(d.stride_words, n - pos);
    if (sign >= 0) {
      for (std::size_t i = 0; i < take; ++i) a[pos + i] += ks[i];
    } else {
      for (std::size_t i = 0; i < take; ++i) a[pos + i] -= ks[i];
    }
    pos += take;
  }
}

// --- Scalar reference -------------------------------------------------------

namespace {

inline std::uint32_t RotlRef(std::uint32_t x, int n) {
  return (x << n) | (x >> (32 - n));
}

inline void QuarterRoundRef(std::uint32_t& a, std::uint32_t& b,
                            std::uint32_t& c, std::uint32_t& d) {
  a += b; d ^= a; d = RotlRef(d, 16);
  c += d; b ^= c; b = RotlRef(b, 12);
  a += b; d ^= a; d = RotlRef(d, 8);
  c += d; b ^= c; b = RotlRef(b, 7);
}

}  // namespace

void ChaCha20BlockRef(const Key256& key, const Nonce96& nonce,
                      std::uint32_t counter, std::uint8_t out[64]) {
  std::uint32_t s[16];
  InitState(key, nonce, s);
  s[12] = counter;
  std::uint32_t w[16];
  std::memcpy(w, s, sizeof(w));
  for (int round = 0; round < 10; ++round) {
    QuarterRoundRef(w[0], w[4], w[8], w[12]);
    QuarterRoundRef(w[1], w[5], w[9], w[13]);
    QuarterRoundRef(w[2], w[6], w[10], w[14]);
    QuarterRoundRef(w[3], w[7], w[11], w[15]);
    QuarterRoundRef(w[0], w[5], w[10], w[15]);
    QuarterRoundRef(w[1], w[6], w[11], w[12]);
    QuarterRoundRef(w[2], w[7], w[8], w[13]);
    QuarterRoundRef(w[3], w[4], w[9], w[14]);
  }
  for (int i = 0; i < 16; ++i) {
    const std::uint32_t v = w[i] + s[i];
    out[4 * i] = static_cast<std::uint8_t>(v);
    out[4 * i + 1] = static_cast<std::uint8_t>(v >> 8);
    out[4 * i + 2] = static_cast<std::uint8_t>(v >> 16);
    out[4 * i + 3] = static_cast<std::uint8_t>(v >> 24);
  }
}

std::vector<std::uint32_t> PrgWordsRef(const Key256& seed, std::size_t count,
                                       std::uint32_t stream_id) {
  // Deliberately the pre-fast-path shape: zero-filled vector, one 64-byte
  // block per call, byte-level XOR over the buffer, native word load.
  const Nonce96 nonce = StreamNonce(stream_id);
  std::vector<std::uint32_t> out(count, 0);
  if (count == 0) return out;
  auto* bytes = reinterpret_cast<std::uint8_t*>(out.data());
  const std::size_t total = count * sizeof(std::uint32_t);
  std::uint8_t ks[64];
  std::uint32_t counter = 0;
  std::size_t pos = 0;
  while (pos < total) {
    ChaCha20BlockRef(seed, nonce, counter++, ks);
    const std::size_t take = std::min<std::size_t>(64, total - pos);
    for (std::size_t i = 0; i < take; ++i) bytes[pos + i] ^= ks[i];
    pos += take;
  }
  return out;
}

}  // namespace fl::crypto
