// FL checkpoints: named-tensor bundles exchanged between server and devices.
//
// Sec. 2.1: "the server next sends to each participant the current global
// model parameters and any other necessary state as an FL checkpoint
// (essentially the serialized state of a TensorFlow session). Each
// participant ... sends an update in the form of an FL checkpoint back."
//
// Wire format (little-endian):
//   magic "FLCP" | u16 version | varint tensor_count |
//   per tensor: name | varint rank | dims... | f32 data |
//   u32 crc32 over everything above.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/tensor/tensor.h"

namespace fl {

class Checkpoint {
 public:
  Checkpoint() = default;

  // A checkpoint with `schema`'s tensor names and shapes, all values zero.
  // Accumulators start from this instead of copying a full model and
  // multiplying it away (copy-then-Scale(0) costs a redundant memcpy of
  // every parameter).
  static Checkpoint ZerosLike(const Checkpoint& schema);

  void Put(const std::string& name, Tensor t) {
    tensors_[name] = std::move(t);
  }

  bool Contains(const std::string& name) const {
    return tensors_.count(name) > 0;
  }

  Result<const Tensor*> Get(const std::string& name) const;
  Result<Tensor*> GetMutable(const std::string& name);

  std::size_t tensor_count() const { return tensors_.size(); }
  std::size_t TotalParameters() const;
  // Order is deterministic (lexicographic by name).
  const std::map<std::string, Tensor>& tensors() const { return tensors_; }

  // True when both checkpoints hold the same tensor names and shapes.
  bool CompatibleWith(const Checkpoint& other) const;

  // this += alpha * other; shapes/names must match exactly.
  Status AddInPlace(const Checkpoint& other, float alpha = 1.0f);
  void Scale(float alpha);
  // Sets every value to zero, keeping names/shapes and — unlike assigning a
  // fresh ZerosLike — the existing tensor buffers (accumulator reuse).
  void ZeroFill();

  // Flattens all tensors (in name order) into one vector — the input shape
  // Secure Aggregation operates on.
  std::vector<float> Flatten() const;
  // Inverse of Flatten, using this checkpoint's names/shapes as the schema.
  Result<Checkpoint> Unflatten(std::span<const float> flat) const;

  Bytes Serialize() const;
  static Result<Checkpoint> Deserialize(std::span<const std::uint8_t> data);

  // Byte size when serialized (for traffic accounting, Fig. 9).
  std::size_t SerializedSize() const;

  friend bool operator==(const Checkpoint& a, const Checkpoint& b) {
    return a.tensors_ == b.tensors_;
  }

 private:
  std::map<std::string, Tensor> tensors_;
};

}  // namespace fl
