// Dense float tensor — the unit of model state exchanged in FL checkpoints.
//
// This substitutes for TensorFlow's tensor type (Sec. 2.1: checkpoints are
// "essentially the serialized state of a TensorFlow session"). Kept
// deliberately small: dense float32, row-major, rank <= 4 in practice.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"

namespace fl {

using Shape = std::vector<std::size_t>;

std::size_t ShapeNumElements(const Shape& shape);
std::string ShapeToString(const Shape& shape);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(Shape shape)
      : shape_(std::move(shape)), data_(ShapeNumElements(shape_), 0.0f) {}
  Tensor(Shape shape, std::vector<float> data);

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  static Tensor Full(Shape shape, float value);
  static Tensor FromVector(std::vector<float> v) {
    Shape s{v.size()};
    return Tensor(std::move(s), std::move(v));
  }
  // Glorot/Xavier-uniform initialization for weight matrices.
  static Tensor GlorotUniform(Shape shape, Rng& rng);
  static Tensor RandomNormal(Shape shape, Rng& rng, float stddev = 1.0f);

  const Shape& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t size() const { return data_.size(); }
  std::size_t dim(std::size_t i) const {
    FL_CHECK(i < shape_.size());
    return shape_[i];
  }

  std::span<const float> data() const { return data_; }
  std::span<float> mutable_data() { return data_; }

  float& at(std::size_t i) {
    FL_CHECK(i < data_.size());
    return data_[i];
  }
  float at(std::size_t i) const {
    FL_CHECK(i < data_.size());
    return data_[i];
  }
  // 2-D accessors (row-major).
  float& at(std::size_t r, std::size_t c) {
    FL_CHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }
  float at(std::size_t r, std::size_t c) const {
    FL_CHECK(rank() == 2 && r < shape_[0] && c < shape_[1]);
    return data_[r * shape_[1] + c];
  }

  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  // In-place arithmetic (shapes must match).
  Tensor& AddInPlace(const Tensor& other, float alpha = 1.0f);
  Tensor& Scale(float alpha);
  void Fill(float value);

  // Out-of-place helpers.
  Tensor Add(const Tensor& other, float alpha = 1.0f) const;
  Tensor Scaled(float alpha) const;

  double L2Norm() const;
  double AbsMax() const;
  double Sum() const;

  // C = A(m,k) * B(k,n). Shapes checked.
  static Tensor MatMul(const Tensor& a, const Tensor& b);
  // C += A^T * B and C += A * B^T variants used by backprop.
  static Tensor MatMulTransA(const Tensor& a, const Tensor& b);
  static Tensor MatMulTransB(const Tensor& a, const Tensor& b);

  friend bool operator==(const Tensor& a, const Tensor& b) {
    return a.shape_ == b.shape_ && a.data_ == b.data_;
  }

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace fl
