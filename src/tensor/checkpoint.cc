#include "src/tensor/checkpoint.h"

#include <algorithm>

#include "src/common/crc32.h"

namespace fl {
namespace {
constexpr char kMagic[4] = {'F', 'L', 'C', 'P'};
constexpr std::uint16_t kFormatVersion = 1;
}  // namespace

Checkpoint Checkpoint::ZerosLike(const Checkpoint& schema) {
  Checkpoint out;
  for (const auto& [name, t] : schema.tensors_) {
    out.tensors_.emplace(name, Tensor(t.shape()));
  }
  return out;
}

Result<const Tensor*> Checkpoint::Get(const std::string& name) const {
  const auto it = tensors_.find(name);
  if (it == tensors_.end()) {
    return NotFoundError("checkpoint has no tensor '" + name + "'");
  }
  return &it->second;
}

Result<Tensor*> Checkpoint::GetMutable(const std::string& name) {
  const auto it = tensors_.find(name);
  if (it == tensors_.end()) {
    return NotFoundError("checkpoint has no tensor '" + name + "'");
  }
  return &it->second;
}

std::size_t Checkpoint::TotalParameters() const {
  std::size_t n = 0;
  for (const auto& [name, t] : tensors_) n += t.size();
  return n;
}

bool Checkpoint::CompatibleWith(const Checkpoint& other) const {
  if (tensors_.size() != other.tensors_.size()) return false;
  auto it = tensors_.begin();
  auto jt = other.tensors_.begin();
  for (; it != tensors_.end(); ++it, ++jt) {
    if (it->first != jt->first) return false;
    if (it->second.shape() != jt->second.shape()) return false;
  }
  return true;
}

Status Checkpoint::AddInPlace(const Checkpoint& other, float alpha) {
  if (!CompatibleWith(other)) {
    return InvalidArgumentError("checkpoint schemas differ in AddInPlace");
  }
  auto it = tensors_.begin();
  auto jt = other.tensors_.begin();
  for (; it != tensors_.end(); ++it, ++jt) {
    it->second.AddInPlace(jt->second, alpha);
  }
  return Status::Ok();
}

void Checkpoint::Scale(float alpha) {
  for (auto& [name, t] : tensors_) t.Scale(alpha);
}

void Checkpoint::ZeroFill() {
  for (auto& [name, t] : tensors_) {
    auto span = t.mutable_data();
    std::fill(span.begin(), span.end(), 0.0f);
  }
}

std::vector<float> Checkpoint::Flatten() const {
  std::vector<float> flat;
  flat.reserve(TotalParameters());
  for (const auto& [name, t] : tensors_) {
    flat.insert(flat.end(), t.data().begin(), t.data().end());
  }
  return flat;
}

Result<Checkpoint> Checkpoint::Unflatten(std::span<const float> flat) const {
  if (flat.size() != TotalParameters()) {
    return InvalidArgumentError(
        "flat vector has " + std::to_string(flat.size()) +
        " elements; schema needs " + std::to_string(TotalParameters()));
  }
  Checkpoint out;
  std::size_t pos = 0;
  for (const auto& [name, t] : tensors_) {
    std::vector<float> data(flat.begin() + static_cast<std::ptrdiff_t>(pos),
                            flat.begin() +
                                static_cast<std::ptrdiff_t>(pos + t.size()));
    out.Put(name, Tensor(t.shape(), std::move(data)));
    pos += t.size();
  }
  return out;
}

Bytes Checkpoint::Serialize() const {
  BytesWriter w;
  w.Reserve(SerializedSize());  // exact: one allocation for the whole blob
  w.WriteRaw(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(kMagic), 4));
  w.WriteU16(kFormatVersion);
  w.WriteVarint(tensors_.size());
  for (const auto& [name, t] : tensors_) {
    w.WriteString(name);
    w.WriteVarint(t.rank());
    for (std::size_t d : t.shape()) w.WriteVarint(d);
    w.WriteF32Span(t.data());
  }
  const std::uint32_t crc = Crc32(w.bytes());
  w.WriteU32(crc);
  return std::move(w).Take();
}

Result<Checkpoint> Checkpoint::Deserialize(
    std::span<const std::uint8_t> data) {
  if (data.size() < 4 + 2 + 4) {
    return DataLossError("checkpoint too short");
  }
  // Validate the trailing CRC before parsing anything.
  const std::size_t body_len = data.size() - 4;
  BytesReader crc_reader(data.subspan(body_len));
  FL_ASSIGN_OR_RETURN(std::uint32_t stored_crc, crc_reader.ReadU32());
  const std::uint32_t actual_crc = Crc32(data.first(body_len));
  if (stored_crc != actual_crc) {
    return DataLossError("checkpoint CRC mismatch");
  }

  BytesReader r(data.first(body_len));
  for (char expected : kMagic) {
    FL_ASSIGN_OR_RETURN(std::uint8_t b, r.ReadU8());
    if (static_cast<char>(b) != expected) {
      return DataLossError("bad checkpoint magic");
    }
  }
  FL_ASSIGN_OR_RETURN(std::uint16_t version, r.ReadU16());
  if (version != kFormatVersion) {
    return DataLossError("unsupported checkpoint format version " +
                         std::to_string(version));
  }
  FL_ASSIGN_OR_RETURN(std::uint64_t count, r.ReadVarint());
  Checkpoint out;
  for (std::uint64_t i = 0; i < count; ++i) {
    FL_ASSIGN_OR_RETURN(std::string name, r.ReadString());
    FL_ASSIGN_OR_RETURN(std::uint64_t rank, r.ReadVarint());
    if (rank > 8) return DataLossError("implausible tensor rank");
    Shape shape(rank);
    std::size_t numel = 1;
    for (auto& d : shape) {
      FL_ASSIGN_OR_RETURN(std::uint64_t dim, r.ReadVarint());
      d = dim;
      numel *= d;
    }
    FL_ASSIGN_OR_RETURN(std::vector<float> values, r.ReadF32Vector());
    if (values.size() != numel) {
      return DataLossError("tensor '" + name + "' data/shape mismatch");
    }
    out.Put(name, Tensor(std::move(shape), std::move(values)));
  }
  if (!r.AtEnd()) return DataLossError("trailing bytes in checkpoint");
  return out;
}

std::size_t Checkpoint::SerializedSize() const {
  // Pure arithmetic mirror of Serialize()'s wire format — exact to the
  // byte (pinned by the drift test in checkpoint_test), so traffic
  // accounting (Fig. 9, bytes/device) never has to materialize the blob.
  std::size_t n = 4 + 2 + VarintSize(tensors_.size());
  for (const auto& [name, t] : tensors_) {
    n += VarintSize(name.size()) + name.size();
    n += VarintSize(t.rank());
    for (std::size_t d : t.shape()) n += VarintSize(d);
    n += VarintSize(t.size()) + t.size() * sizeof(float);
  }
  return n + 4;  // trailing crc32
}

}  // namespace fl
