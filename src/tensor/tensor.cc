#include "src/tensor/tensor.h"

#include <cmath>
#include <sstream>

namespace fl {

std::size_t ShapeNumElements(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ",";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FL_CHECK_MSG(data_.size() == ShapeNumElements(shape_),
               "data size does not match shape " + ShapeToString(shape_));
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::GlorotUniform(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  const std::size_t fan_in = t.rank() >= 2 ? t.shape()[0] : t.size();
  const std::size_t fan_out = t.rank() >= 2 ? t.shape()[1] : t.size();
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor& Tensor::AddInPlace(const Tensor& other, float alpha) {
  FL_CHECK_MSG(SameShape(other), "AddInPlace shape mismatch: " +
                                     ShapeToString(shape_) + " vs " +
                                     ShapeToString(other.shape_));
  for (std::size_t i = 0; i < data_.size(); ++i) {
    data_[i] += alpha * other.data_[i];
  }
  return *this;
}

Tensor& Tensor::Scale(float alpha) {
  for (float& v : data_) v *= alpha;
  return *this;
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

Tensor Tensor::Add(const Tensor& other, float alpha) const {
  Tensor out = *this;
  out.AddInPlace(other, alpha);
  return out;
}

Tensor Tensor::Scaled(float alpha) const {
  Tensor out = *this;
  out.Scale(alpha);
  return out;
}

double Tensor::L2Norm() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

double Tensor::AbsMax() const {
  double m = 0;
  for (float v : data_) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

double Tensor::Sum() const {
  double s = 0;
  for (float v : data_) s += v;
  return s;
}

Tensor Tensor::MatMul(const Tensor& a, const Tensor& b) {
  FL_CHECK(a.rank() == 2 && b.rank() == 2);
  FL_CHECK_MSG(a.shape()[1] == b.shape()[0], "MatMul inner dim mismatch");
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c({m, n});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) {
      const float av = a.data_[i * k + p];
      if (av == 0.0f) continue;
      const float* brow = &b.data_[p * n];
      float* crow = &c.data_[i * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Tensor::MatMulTransA(const Tensor& a, const Tensor& b) {
  // C(k,n) = A(m,k)^T * B(m,n)
  FL_CHECK(a.rank() == 2 && b.rank() == 2);
  FL_CHECK_MSG(a.shape()[0] == b.shape()[0], "MatMulTransA dim mismatch");
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c({k, n});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = &a.data_[i * k];
    const float* brow = &b.data_[i * n];
    for (std::size_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      float* crow = &c.data_[p * n];
      for (std::size_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
  return c;
}

Tensor Tensor::MatMulTransB(const Tensor& a, const Tensor& b) {
  // C(m,k) = A(m,n) * B(k,n)^T
  FL_CHECK(a.rank() == 2 && b.rank() == 2);
  FL_CHECK_MSG(a.shape()[1] == b.shape()[1], "MatMulTransB dim mismatch");
  const std::size_t m = a.shape()[0], n = a.shape()[1], k = b.shape()[0];
  Tensor c({m, k});
  for (std::size_t i = 0; i < m; ++i) {
    const float* arow = &a.data_[i * n];
    for (std::size_t p = 0; p < k; ++p) {
      const float* brow = &b.data_[p * n];
      double acc = 0;
      for (std::size_t j = 0; j < n; ++j) acc += arow[j] * brow[j];
      c.data_[i * k + p] = static_cast<float>(acc);
    }
  }
  return c;
}

}  // namespace fl
