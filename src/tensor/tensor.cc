#include "src/tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace fl {

std::size_t ShapeNumElements(const Shape& shape) {
  std::size_t n = 1;
  for (std::size_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < shape.size(); ++i) {
    if (i) os << ",";
    os << shape[i];
  }
  os << "]";
  return os.str();
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  FL_CHECK_MSG(data_.size() == ShapeNumElements(shape_),
               "data size does not match shape " + ShapeToString(shape_));
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::GlorotUniform(Shape shape, Rng& rng) {
  Tensor t(std::move(shape));
  const std::size_t fan_in = t.rank() >= 2 ? t.shape()[0] : t.size();
  const std::size_t fan_out = t.rank() >= 2 ? t.shape()[1] : t.size();
  const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Uniform(-limit, limit));
  }
  return t;
}

Tensor Tensor::RandomNormal(Shape shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (float& v : t.data_) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor& Tensor::AddInPlace(const Tensor& other, float alpha) {
  FL_CHECK_MSG(SameShape(other), "AddInPlace shape mismatch: " +
                                     ShapeToString(shape_) + " vs " +
                                     ShapeToString(other.shape_));
  // restrict-qualified raw pointers let the compiler vectorize without
  // runtime aliasing checks (the two buffers never overlap: distinct
  // std::vector allocations).
  float* __restrict__ dst = data_.data();
  const float* __restrict__ src = other.data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
  return *this;
}

Tensor& Tensor::Scale(float alpha) {
  float* __restrict__ dst = data_.data();
  const std::size_t n = data_.size();
  for (std::size_t i = 0; i < n; ++i) dst[i] *= alpha;
  return *this;
}

void Tensor::Fill(float value) {
  for (float& v : data_) v = value;
}

Tensor Tensor::Add(const Tensor& other, float alpha) const {
  Tensor out = *this;
  out.AddInPlace(other, alpha);
  return out;
}

Tensor Tensor::Scaled(float alpha) const {
  Tensor out = *this;
  out.Scale(alpha);
  return out;
}

double Tensor::L2Norm() const {
  double s = 0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

double Tensor::AbsMax() const {
  double m = 0;
  for (float v : data_) m = std::max(m, static_cast<double>(std::fabs(v)));
  return m;
}

double Tensor::Sum() const {
  double s = 0;
  for (float v : data_) s += v;
  return s;
}

namespace {
// Cache-block sizes for the matmul kernels: a kDepthBlock x kColBlock panel
// of B (64 x 128 floats = 32 KiB) stays L1-resident while a full sweep of
// A's rows streams against it. Each output element still accumulates its
// inner-product terms in strictly ascending index order, so blocked results
// are bit-identical to the straightforward loops (pinned by tensor_test).
constexpr std::size_t kDepthBlock = 64;
constexpr std::size_t kColBlock = 128;
}  // namespace

Tensor Tensor::MatMul(const Tensor& a, const Tensor& b) {
  FL_CHECK(a.rank() == 2 && b.rank() == 2);
  FL_CHECK_MSG(a.shape()[1] == b.shape()[0], "MatMul inner dim mismatch");
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c({m, n});
  for (std::size_t p0 = 0; p0 < k; p0 += kDepthBlock) {
    const std::size_t p1 = std::min(p0 + kDepthBlock, k);
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = std::min(j0 + kColBlock, n);
      for (std::size_t i = 0; i < m; ++i) {
        const float* __restrict__ arow = &a.data_[i * k];
        float* __restrict__ crow = &c.data_[i * n];
        for (std::size_t p = p0; p < p1; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;  // one-hot / embedding rows are sparse
          const float* __restrict__ brow = &b.data_[p * n];
          for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Tensor Tensor::MatMulTransA(const Tensor& a, const Tensor& b) {
  // C(k,n) = A(m,k)^T * B(m,n); the reduction dimension is m.
  FL_CHECK(a.rank() == 2 && b.rank() == 2);
  FL_CHECK_MSG(a.shape()[0] == b.shape()[0], "MatMulTransA dim mismatch");
  const std::size_t m = a.shape()[0], k = a.shape()[1], n = b.shape()[1];
  Tensor c({k, n});
  for (std::size_t i0 = 0; i0 < m; i0 += kDepthBlock) {
    const std::size_t i1 = std::min(i0 + kDepthBlock, m);
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = std::min(j0 + kColBlock, n);
      for (std::size_t i = i0; i < i1; ++i) {
        const float* __restrict__ arow = &a.data_[i * k];
        const float* __restrict__ brow = &b.data_[i * n];
        for (std::size_t p = 0; p < k; ++p) {
          const float av = arow[p];
          if (av == 0.0f) continue;
          float* __restrict__ crow = &c.data_[p * n];
          for (std::size_t j = j0; j < j1; ++j) crow[j] += av * brow[j];
        }
      }
    }
  }
  return c;
}

Tensor Tensor::MatMulTransB(const Tensor& a, const Tensor& b) {
  // C(m,k) = A(m,n) * B(k,n)^T — rows of both operands are contiguous, so
  // each output element is a dot product accumulated in double (as before);
  // blocking over j keeps the touched panel of B hot across A's rows while
  // the per-row double accumulators preserve the exact summation order.
  FL_CHECK(a.rank() == 2 && b.rank() == 2);
  FL_CHECK_MSG(a.shape()[1] == b.shape()[1], "MatMulTransB dim mismatch");
  const std::size_t m = a.shape()[0], n = a.shape()[1], k = b.shape()[0];
  Tensor c({m, k});
  std::vector<double> acc(k);
  for (std::size_t i = 0; i < m; ++i) {
    std::fill(acc.begin(), acc.end(), 0.0);
    const float* __restrict__ arow = &a.data_[i * n];
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = std::min(j0 + kColBlock, n);
      for (std::size_t p = 0; p < k; ++p) {
        const float* __restrict__ brow = &b.data_[p * n];
        double s = acc[p];
        for (std::size_t j = j0; j < j1; ++j) s += arow[j] * brow[j];
        acc[p] = s;
      }
    }
    for (std::size_t p = 0; p < k; ++p) {
      c.data_[i * k + p] = static_cast<float>(acc[p]);
    }
  }
  return c;
}

}  // namespace fl
