// Byte-level serialization used by FL checkpoints, plans, and wire messages.
//
// Format conventions: little-endian fixed-width integers, varint-prefixed
// strings/blobs. Readers return Status on truncation or corruption so that a
// malformed checkpoint surfaces as kDataLoss rather than UB (the paper's
// devices may run plans produced months earlier — Sec. 7.3 — so decoding is
// always defensive).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace fl {

using Bytes = std::vector<std::uint8_t>;

// Encoded length of WriteVarint(v) — lets writers size buffers exactly
// without serializing twice.
constexpr std::size_t VarintSize(std::uint64_t v) {
  std::size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

class BytesWriter {
 public:
  // Pre-sizes the underlying buffer; one allocation when the final size is
  // known up front (see Checkpoint::SerializedSize).
  void Reserve(std::size_t n) { buf_.reserve(n); }

  void WriteU8(std::uint8_t v) { buf_.push_back(v); }
  void WriteU16(std::uint16_t v) { WriteLE(v); }
  void WriteU32(std::uint32_t v) { WriteLE(v); }
  void WriteU64(std::uint64_t v) { WriteLE(v); }
  void WriteI32(std::int32_t v) { WriteLE(static_cast<std::uint32_t>(v)); }
  void WriteI64(std::int64_t v) { WriteLE(static_cast<std::uint64_t>(v)); }

  void WriteF32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU32(bits);
  }
  void WriteF64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    WriteU64(bits);
  }

  void WriteVarint(std::uint64_t v) {
    while (v >= 0x80) {
      buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
      v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
  }

  void WriteString(const std::string& s) {
    WriteVarint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void WriteBytes(std::span<const std::uint8_t> b) {
    WriteVarint(b.size());
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void WriteRaw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  void WriteF32Span(std::span<const float> v) {
    WriteVarint(v.size());
    const auto* p = reinterpret_cast<const std::uint8_t*>(v.data());
    buf_.insert(buf_.end(), p, p + v.size() * sizeof(float));
  }

  std::size_t size() const { return buf_.size(); }
  const Bytes& bytes() const& { return buf_; }
  Bytes Take() && { return std::move(buf_); }

 private:
  template <typename T>
  void WriteLE(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

class BytesReader {
 public:
  explicit BytesReader(std::span<const std::uint8_t> data) : data_(data) {}

  Result<std::uint8_t> ReadU8();
  Result<std::uint16_t> ReadU16();
  Result<std::uint32_t> ReadU32();
  Result<std::uint64_t> ReadU64();
  Result<std::int32_t> ReadI32();
  Result<std::int64_t> ReadI64();
  Result<float> ReadF32();
  Result<double> ReadF64();
  Result<std::uint64_t> ReadVarint();
  Result<std::string> ReadString();
  Result<Bytes> ReadBytes();
  Result<std::vector<float>> ReadF32Vector();

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  std::size_t position() const { return pos_; }

 private:
  template <typename T>
  Result<T> ReadLE() {
    if (remaining() < sizeof(T)) {
      return DataLossError("truncated buffer: need " +
                           std::to_string(sizeof(T)) + " bytes, have " +
                           std::to_string(remaining()));
    }
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v |= static_cast<T>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += sizeof(T);
    return v;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Human-readable byte counts for traffic dashboards (Fig. 9).
std::string HumanBytes(std::uint64_t n);

}  // namespace fl
