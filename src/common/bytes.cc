#include "src/common/bytes.h"

#include <cstdio>

namespace fl {

Result<std::uint8_t> BytesReader::ReadU8() { return ReadLE<std::uint8_t>(); }
Result<std::uint16_t> BytesReader::ReadU16() { return ReadLE<std::uint16_t>(); }
Result<std::uint32_t> BytesReader::ReadU32() { return ReadLE<std::uint32_t>(); }
Result<std::uint64_t> BytesReader::ReadU64() { return ReadLE<std::uint64_t>(); }

Result<std::int32_t> BytesReader::ReadI32() {
  FL_ASSIGN_OR_RETURN(std::uint32_t v, ReadU32());
  return static_cast<std::int32_t>(v);
}

Result<std::int64_t> BytesReader::ReadI64() {
  FL_ASSIGN_OR_RETURN(std::uint64_t v, ReadU64());
  return static_cast<std::int64_t>(v);
}

Result<float> BytesReader::ReadF32() {
  FL_ASSIGN_OR_RETURN(std::uint32_t bits, ReadU32());
  float v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<double> BytesReader::ReadF64() {
  FL_ASSIGN_OR_RETURN(std::uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::uint64_t> BytesReader::ReadVarint() {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) {
      return DataLossError("truncated varint");
    }
    const std::uint8_t b = data_[pos_++];
    if (shift >= 64 || (shift == 63 && (b & 0x7e) != 0)) {
      return DataLossError("varint overflow");
    }
    v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
    if ((b & 0x80) == 0) return v;
    shift += 7;
  }
}

Result<std::string> BytesReader::ReadString() {
  FL_ASSIGN_OR_RETURN(std::uint64_t len, ReadVarint());
  if (len > remaining()) {
    return DataLossError("truncated string of declared length " +
                         std::to_string(len));
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return s;
}

Result<Bytes> BytesReader::ReadBytes() {
  FL_ASSIGN_OR_RETURN(std::uint64_t len, ReadVarint());
  if (len > remaining()) {
    return DataLossError("truncated blob of declared length " +
                         std::to_string(len));
  }
  Bytes b(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
          data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
  pos_ += len;
  return b;
}

Result<std::vector<float>> BytesReader::ReadF32Vector() {
  FL_ASSIGN_OR_RETURN(std::uint64_t count, ReadVarint());
  if (count * sizeof(float) > remaining()) {
    return DataLossError("truncated float vector of declared count " +
                         std::to_string(count));
  }
  std::vector<float> v(count);
  std::memcpy(v.data(), data_.data() + pos_, count * sizeof(float));
  pos_ += count * sizeof(float);
  return v;
}

std::string HumanBytes(std::uint64_t n) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double x = static_cast<double>(n);
  int u = 0;
  while (x >= 1024.0 && u < 4) {
    x /= 1024.0;
    ++u;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f %s", x, units[u]);
  return buf;
}

}  // namespace fl
