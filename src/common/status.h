// Error handling primitives for the federated learning stack.
//
// The library distinguishes programmer errors (contract violations, reported
// via FL_CHECK / exceptions) from expected runtime failures (network drops,
// device interruption, protocol aborts) which flow through Status / Result<T>
// so that callers are forced to consider them.
#pragma once

#include <cstdint>
#include <optional>
#include <ostream>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace fl {

// Canonical error space, loosely mirroring the failure classes the paper's
// protocol distinguishes (Sec. 2.2: rejection, timeout, abort; Sec. 4.4:
// actor loss; Sec. 3: eligibility loss).
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,        // transient: retry may succeed (network failure)
  kDeadlineExceeded,   // timeout windows (selection / reporting)
  kAborted,            // round abandoned / device interrupted
  kPermissionDenied,   // attestation failure
  kResourceExhausted,  // device resource caps
  kDataLoss,           // corrupt checkpoint / bad CRC
  kUnimplemented,
  kInternal,
};

const char* ErrorCodeName(ErrorCode code);

// Value-semantic status. Ok statuses carry no allocation.
class [[nodiscard]] Status {
 public:
  Status() = default;
  Status(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return {}; }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // Returns a human-readable "CODE: message" string.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

inline Status InvalidArgumentError(std::string m) {
  return {ErrorCode::kInvalidArgument, std::move(m)};
}
inline Status NotFoundError(std::string m) {
  return {ErrorCode::kNotFound, std::move(m)};
}
inline Status AlreadyExistsError(std::string m) {
  return {ErrorCode::kAlreadyExists, std::move(m)};
}
inline Status FailedPreconditionError(std::string m) {
  return {ErrorCode::kFailedPrecondition, std::move(m)};
}
inline Status OutOfRangeError(std::string m) {
  return {ErrorCode::kOutOfRange, std::move(m)};
}
inline Status UnavailableError(std::string m) {
  return {ErrorCode::kUnavailable, std::move(m)};
}
inline Status DeadlineExceededError(std::string m) {
  return {ErrorCode::kDeadlineExceeded, std::move(m)};
}
inline Status AbortedError(std::string m) {
  return {ErrorCode::kAborted, std::move(m)};
}
inline Status PermissionDeniedError(std::string m) {
  return {ErrorCode::kPermissionDenied, std::move(m)};
}
inline Status ResourceExhaustedError(std::string m) {
  return {ErrorCode::kResourceExhausted, std::move(m)};
}
inline Status DataLossError(std::string m) {
  return {ErrorCode::kDataLoss, std::move(m)};
}
inline Status UnimplementedError(std::string m) {
  return {ErrorCode::kUnimplemented, std::move(m)};
}
inline Status InternalError(std::string m) {
  return {ErrorCode::kInternal, std::move(m)};
}

// Result<T>: either a value or a non-ok Status. A C++20-compatible stand-in
// for std::expected<T, Status>.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      throw std::logic_error("Result<T> constructed from OK status");
    }
  }

  bool ok() const { return std::holds_alternative<T>(data_); }
  explicit operator bool() const { return ok(); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  T& value() & {
    EnsureOk();
    return std::get<T>(data_);
  }
  const T& value() const& {
    EnsureOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    EnsureOk();
    return std::get<T>(std::move(data_));
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(data_) : std::move(fallback);
  }

 private:
  void EnsureOk() const {
    if (!ok()) {
      throw std::runtime_error("Result accessed without value: " +
                               std::get<Status>(data_).ToString());
    }
  }
  std::variant<T, Status> data_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);
}  // namespace internal

// Contract checks: always on (these guard invariants, not user errors).
#define FL_CHECK(expr)                                                  \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::fl::internal::CheckFailed(__FILE__, __LINE__, #expr, "");       \
    }                                                                   \
  } while (0)

#define FL_CHECK_MSG(expr, msg)                                         \
  do {                                                                  \
    if (!(expr)) {                                                      \
      ::fl::internal::CheckFailed(__FILE__, __LINE__, #expr, (msg));    \
    }                                                                   \
  } while (0)

// Propagate a non-ok Status from an expression returning Status.
#define FL_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::fl::Status fl_status__ = (expr);            \
    if (!fl_status__.ok()) return fl_status__;    \
  } while (0)

// Assign from a Result<T> expression or propagate its Status.
#define FL_ASSIGN_OR_RETURN(lhs, expr)                 \
  FL_ASSIGN_OR_RETURN_IMPL_(                           \
      FL_STATUS_CONCAT_(fl_result__, __LINE__), lhs, expr)

#define FL_STATUS_CONCAT_INNER_(a, b) a##b
#define FL_STATUS_CONCAT_(a, b) FL_STATUS_CONCAT_INNER_(a, b)
#define FL_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()

}  // namespace fl
