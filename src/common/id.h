// Strongly-typed integer identifiers. Device, round, task, and actor ids all
// have the same representation but must never be mixed; the tag parameter
// makes accidental cross-assignment a compile error.
#pragma once

#include <cstdint>
#include <functional>
#include <ostream>

namespace fl {

template <typename Tag>
struct TypedId {
  std::uint64_t value = 0;

  constexpr TypedId() = default;
  constexpr explicit TypedId(std::uint64_t v) : value(v) {}

  constexpr auto operator<=>(const TypedId&) const = default;

  friend std::ostream& operator<<(std::ostream& os, TypedId id) {
    return os << Tag::kPrefix << id.value;
  }
};

struct DeviceIdTag { static constexpr const char* kPrefix = "dev-"; };
struct RoundIdTag { static constexpr const char* kPrefix = "round-"; };
struct TaskIdTag { static constexpr const char* kPrefix = "task-"; };
struct ActorIdTag { static constexpr const char* kPrefix = "actor-"; };
struct SessionIdTag { static constexpr const char* kPrefix = "sess-"; };

using DeviceId = TypedId<DeviceIdTag>;
using RoundId = TypedId<RoundIdTag>;
using TaskId = TypedId<TaskIdTag>;
using ActorId = TypedId<ActorIdTag>;
using SessionId = TypedId<SessionIdTag>;

}  // namespace fl

namespace std {
template <typename Tag>
struct hash<fl::TypedId<Tag>> {
  size_t operator()(fl::TypedId<Tag> id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
}  // namespace std
