// CRC32 (IEEE 802.3 polynomial) used to detect FL checkpoint corruption in
// transit — the paper's devices see real network failures (Sec. 5); our
// network model injects corruption and the checkpoint layer must catch it.
#pragma once

#include <cstdint>
#include <span>

namespace fl {

std::uint32_t Crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

}  // namespace fl
