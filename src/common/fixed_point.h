// Fixed-point codec mapping float model updates into the additive group
// Z_{2^32}. Secure Aggregation (Sec. 6) masks updates with uniform group
// elements; masking requires exact modular arithmetic, so floats are
// quantized before masking and de-quantized after unmasking.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace fl {

// Symmetric fixed-point quantizer: value v maps to round(v * scale) mod 2^32
// (two's complement). `clip` bounds |v|; values beyond it saturate. Sums of
// up to `max_summands` quantized values stay exact as long as
// max_summands * clip * scale < 2^31.
class FixedPointCodec {
 public:
  FixedPointCodec(double clip, std::uint32_t max_summands)
      : clip_(clip), max_summands_(max_summands) {
    FL_CHECK(clip > 0.0);
    FL_CHECK(max_summands > 0);
    // Choose the largest scale that cannot overflow int32 when summing.
    scale_ = std::floor(static_cast<double>(1u << 31) /
                        (clip * static_cast<double>(max_summands))) -
             1.0;
    FL_CHECK_MSG(scale_ >= 1.0,
                 "clip * max_summands too large for 32-bit fixed point");
  }

  double clip() const { return clip_; }
  double scale() const { return scale_; }
  double resolution() const { return 1.0 / scale_; }
  std::uint32_t max_summands() const { return max_summands_; }

  std::uint32_t Encode(float v) const {
    double x = static_cast<double>(v);
    if (x > clip_) x = clip_;
    if (x < -clip_) x = -clip_;
    const auto q = static_cast<std::int64_t>(std::llround(x * scale_));
    return static_cast<std::uint32_t>(q);  // two's complement wrap
  }

  float Decode(std::uint32_t q) const {
    const auto s = static_cast<std::int32_t>(q);
    return static_cast<float>(static_cast<double>(s) / scale_);
  }

  // Decode a *sum* of up to max_summands encodings.
  float DecodeSum(std::uint32_t q) const { return Decode(q); }

  std::vector<std::uint32_t> EncodeVector(std::span<const float> v) const {
    std::vector<std::uint32_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = Encode(v[i]);
    return out;
  }

  std::vector<float> DecodeVector(std::span<const std::uint32_t> q) const {
    std::vector<float> out(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) out[i] = Decode(q[i]);
    return out;
  }

 private:
  double clip_;
  std::uint32_t max_summands_;
  double scale_;
};

}  // namespace fl
