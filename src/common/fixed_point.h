// Fixed-point codec mapping float model updates into the additive group
// Z_{2^r} (r <= 32). Secure Aggregation (Sec. 6) masks updates with uniform
// group elements; masking requires exact modular arithmetic, so floats are
// quantized before masking and de-quantized after unmasking. For r < 32 the
// ring embeds in Z_{2^32} (2^r divides 2^32), so u32 mask arithmetic and
// mod-2^r reduction commute — masked words can travel as r-bit values and
// the server reduces the aggregate once at finalize.
#pragma once

#include <cmath>
#include <cstdint>
#include <span>
#include <vector>

#include "src/common/status.h"

namespace fl {

// Symmetric fixed-point quantizer: value v maps to round(v * scale) mod 2^r
// (two's complement). `clip` bounds |v|; values beyond it saturate. Sums of
// up to `max_summands` quantized values stay exact as long as
// max_summands * clip * scale < 2^(r-1).
class FixedPointCodec {
 public:
  FixedPointCodec(double clip, std::uint32_t max_summands,
                  std::uint8_t ring_bits = 32)
      : clip_(clip), max_summands_(max_summands), ring_bits_(ring_bits) {
    FL_CHECK(clip > 0.0);
    FL_CHECK(max_summands > 0);
    FL_CHECK(ring_bits >= 8 && ring_bits <= 32);
    ring_mask_ = ring_bits == 32 ? 0xFFFFFFFFu
                                 : ((1u << ring_bits) - 1u);
    sign_bit_ = 1u << (ring_bits - 1);
    // Choose the largest scale that cannot overflow the signed half of the
    // ring when summing.
    scale_ = std::floor(std::ldexp(1.0, ring_bits - 1) /
                        (clip * static_cast<double>(max_summands))) -
             1.0;
    FL_CHECK_MSG(scale_ >= 1.0,
                 "clip * max_summands too large for the fixed-point ring");
  }

  double clip() const { return clip_; }
  double scale() const { return scale_; }
  double resolution() const { return 1.0 / scale_; }
  std::uint32_t max_summands() const { return max_summands_; }
  std::uint8_t ring_bits() const { return ring_bits_; }
  std::uint32_t ring_mask() const { return ring_mask_; }

  std::uint32_t Encode(float v) const {
    double x = static_cast<double>(v);
    if (x > clip_) x = clip_;
    if (x < -clip_) x = -clip_;
    const auto q = static_cast<std::int64_t>(std::llround(x * scale_));
    return static_cast<std::uint32_t>(q) & ring_mask_;  // two's complement
  }

  float Decode(std::uint32_t q) const {
    q &= ring_mask_;
    if ((q & sign_bit_) != 0) q |= ~ring_mask_;  // sign-extend from r bits
    const auto s = static_cast<std::int32_t>(q);
    return static_cast<float>(static_cast<double>(s) / scale_);
  }

  // Decode a *sum* of up to max_summands encodings.
  float DecodeSum(std::uint32_t q) const { return Decode(q); }

  std::vector<std::uint32_t> EncodeVector(std::span<const float> v) const {
    std::vector<std::uint32_t> out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = Encode(v[i]);
    return out;
  }

  std::vector<float> DecodeVector(std::span<const std::uint32_t> q) const {
    std::vector<float> out(q.size());
    for (std::size_t i = 0; i < q.size(); ++i) out[i] = Decode(q[i]);
    return out;
  }

 private:
  double clip_;
  std::uint32_t max_summands_;
  std::uint8_t ring_bits_;
  std::uint32_t ring_mask_;
  std::uint32_t sign_bit_;
  double scale_;
};

}  // namespace fl
