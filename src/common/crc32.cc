#include "src/common/crc32.h"

#include <array>

namespace fl {
namespace {

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = MakeTable();

}  // namespace

std::uint32_t Crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (const std::uint8_t b : data) {
    c = kTable[(c ^ b) & 0xFF] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace fl
