// Minimal streaming JSON writer shared by the bench binaries (BENCH_*.json)
// and the live ops plane (/statusz, /rounds, /healthz payloads): enough for
// flat result records, nested objects and arrays. Handles comma placement
// and string escaping; numbers print with enough digits to round-trip.
//
// Header-only and dependency-light on purpose: fl::telemetry::telemetry.h is
// itself header-only, so anything linking fl_common can emit environment-
// stamped JSON without pulling in the telemetry library.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "src/profiler/profiler.h"
#include "src/telemetry/telemetry.h"

#ifndef FL_GIT_SHA
#define FL_GIT_SHA "unknown"
#endif

namespace fl {

// Peak resident set size (VmHWM) of this process in bytes, from
// /proc/self/status. Returns 0 where procfs is unavailable (non-Linux), so
// callers can record it unconditionally and readers can tell "not measured"
// from a real value.
inline std::size_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) != 0) continue;
    std::size_t kb = 0;
    if (std::sscanf(line.c_str(), "VmHWM: %zu kB", &kb) == 1) {
      return kb * 1024;
    }
    break;
  }
  return 0;
}

class JsonWriter {
 public:
  JsonWriter& BeginObject(const std::string& key = "") {
    Prefix(key);
    out_ += '{';
    need_comma_.push_back(false);
    return *this;
  }
  JsonWriter& EndObject() {
    need_comma_.pop_back();
    out_ += '}';
    return *this;
  }
  JsonWriter& BeginArray(const std::string& key = "") {
    Prefix(key);
    out_ += '[';
    need_comma_.push_back(false);
    return *this;
  }
  JsonWriter& EndArray() {
    need_comma_.pop_back();
    out_ += ']';
    return *this;
  }
  JsonWriter& Field(const std::string& key, const std::string& value) {
    Prefix(key);
    AppendString(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, const char* value) {
    return Field(key, std::string(value));
  }
  JsonWriter& Field(const std::string& key, double value) {
    Prefix(key);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    out_ += buf;
    return *this;
  }
  JsonWriter& Field(const std::string& key, std::size_t value) {
    Prefix(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, std::int64_t value) {
    Prefix(key);
    out_ += std::to_string(value);
    return *this;
  }
  JsonWriter& Field(const std::string& key, bool value) {
    Prefix(key);
    out_ += value ? "true" : "false";
    return *this;
  }
  // Splices an already-serialized JSON value (must be valid JSON).
  JsonWriter& Raw(const std::string& key, const std::string& json) {
    Prefix(key);
    out_ += json;
    return *this;
  }

  // Records the environment every bench result / status page needs for
  // comparability: results from different core counts, telemetry modes, or
  // revisions are not directly comparable. Call inside an object.
  JsonWriter& EnvironmentFields() {
    Field("hardware_concurrency",
          static_cast<std::size_t>(std::thread::hardware_concurrency()));
    Field("telemetry_compiled_in", telemetry::kCompiledIn);
    Field("telemetry_enabled", telemetry::Enabled());
    Field("fl_profiler_compiled_in", profiler::kCompiledIn);
    Field("fl_profiler_enabled", profiler::Enabled());
    Field("git_sha", FL_GIT_SHA);
    Field("peak_rss_bytes", PeakRssBytes());
    return *this;
  }

  const std::string& str() const { return out_; }

  // Writes the document to `path` (with a trailing newline); returns false
  // on I/O failure.
  bool WriteFile(const std::string& path) const {
    std::ofstream f(path);
    if (!f) return false;
    f << out_ << "\n";
    return static_cast<bool>(f);
  }

 private:
  void Prefix(const std::string& key) {
    if (!need_comma_.empty()) {
      if (need_comma_.back()) out_ += ',';
      need_comma_.back() = true;
    }
    if (!key.empty()) {
      AppendString(key);
      out_ += ':';
    }
  }
  void AppendString(const std::string& s) {
    out_ += '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        case '\b': out_ += "\\b"; break;
        case '\f': out_ += "\\f"; break;
        default:
          // Remaining control chars must be \u-escaped or parsers
          // (including src/ops/json.cc) reject the document.
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(static_cast<unsigned char>(c)));
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  std::vector<bool> need_comma_;
};

}  // namespace fl
