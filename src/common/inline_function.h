// Move-only callable with small-buffer optimization.
//
// The discrete-event core schedules tens of millions of callbacks per fleet
// simulation. std::function costs a heap allocation for any capture beyond
// ~2 words and a full copy of that allocation whenever the wrapper is
// copied — both show up at the top of event-churn profiles. InlineFunction
// stores the common capture sizes (a `this` pointer, a generation counter,
// a couple of ids) inline in the event node itself, never copies, and falls
// back to one heap cell only for the rare large capture (e.g. a
// TaskAssignment snapshot riding a simulated download).
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace fl::common {

template <typename Signature, std::size_t InlineBytes = 48>
class InlineFunction;  // primary template, never defined

template <typename R, typename... Args, std::size_t InlineBytes>
class InlineFunction<R(Args...), InlineBytes> {
 public:
  static constexpr std::size_t kInlineBytes = InlineBytes;

  InlineFunction() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InlineFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (FitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      // One heap cell; the inline storage holds only the pointer.
      auto* cell = new Fn(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) Fn*(cell);
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { MoveFrom(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { Reset(); }

  R operator()(Args... args) {
    return ops_->invoke(storage_, std::forward<Args>(args)...);
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // True when the wrapped callable lives entirely in the inline buffer.
  bool is_inline() const { return ops_ != nullptr && ops_->inline_storage; }

  void Reset() {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct Ops {
    R (*invoke)(unsigned char*, Args&&...);
    // Move-constructs into `to` and destroys `from` (slot relocation).
    void (*relocate)(unsigned char* from, unsigned char* to);
    void (*destroy)(unsigned char*);
    bool inline_storage;
  };

  template <typename Fn>
  static constexpr bool FitsInline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static constexpr Ops kInlineOps{
      [](unsigned char* s, Args&&... args) -> R {
        return (*std::launder(reinterpret_cast<Fn*>(s)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* from, unsigned char* to) {
        Fn* f = std::launder(reinterpret_cast<Fn*>(from));
        ::new (static_cast<void*>(to)) Fn(std::move(*f));
        f->~Fn();
      },
      [](unsigned char* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); },
      /*inline_storage=*/true,
  };

  template <typename Fn>
  static constexpr Ops kHeapOps{
      [](unsigned char* s, Args&&... args) -> R {
        return (**std::launder(reinterpret_cast<Fn**>(s)))(
            std::forward<Args>(args)...);
      },
      [](unsigned char* from, unsigned char* to) {
        Fn** p = std::launder(reinterpret_cast<Fn**>(from));
        ::new (static_cast<void*>(to)) Fn*(*p);
      },
      [](unsigned char* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); },
      /*inline_storage=*/false,
  };

  void MoveFrom(InlineFunction& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
  }

  static_assert(InlineBytes >= sizeof(void*));

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
};

// The standard small-task type used by the event queue and actor contexts:
// 48 inline bytes covers every hot scheduling site in the repository (six
// pointers/ids of capture) while keeping event nodes two cache lines.
using TaskFn = InlineFunction<void(), 48>;

}  // namespace fl::common
