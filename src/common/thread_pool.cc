#include "src/common/thread_pool.h"

#include <chrono>
#include <memory>

namespace fl::common {

ThreadPool::ThreadPool(std::size_t threads) {
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lk(queue_mu_);
      queue_cv_.wait(lk, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with nothing left to run
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
  }
}

void ThreadPool::RunIterations(ForState& s) {
  for (;;) {
    std::size_t i;
    {
      std::lock_guard<std::mutex> lk(s.mu);
      if (s.stop || s.next >= s.n) return;
      i = s.next++;
      ++s.in_flight;
    }
    try {
      (*s.fn)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lk(s.mu);
      if (!s.error) s.error = std::current_exception();
      s.stop = true;
    }
    {
      std::lock_guard<std::mutex> lk(s.mu);
      --s.in_flight;
      if (s.in_flight == 0 && (s.stop || s.next >= s.n)) {
        s.done_cv.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(std::size_t n,
                             const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  // Shared state is kept alive by each queued helper: a helper may start
  // after the caller has already drained the loop and returned.
  auto state = std::make_shared<ForState>();
  state->fn = &fn;
  state->n = n;

  const std::size_t helpers = std::min(workers_.size(), n - 1);
  {
    std::lock_guard<std::mutex> lk(queue_mu_);
    for (std::size_t h = 0; h < helpers; ++h) {
      if (queue_wait_observer_) {
        // Queue-wait telemetry: time from enqueue to a worker picking the
        // task up. A helper that starts after the loop already drained
        // still reports — that delay is real scheduling latency.
        const auto enqueued = std::chrono::steady_clock::now();
        tasks_.emplace([this, state, enqueued] {
          queue_wait_observer_(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - enqueued)
                  .count());
          RunIterations(*state);
        });
      } else {
        tasks_.emplace([state] { RunIterations(*state); });
      }
    }
  }
  queue_cv_.notify_all();

  RunIterations(*state);

  std::unique_lock<std::mutex> lk(state->mu);
  state->done_cv.wait(lk, [&] {
    return state->in_flight == 0 && (state->stop || state->next >= state->n);
  });
  // All fn(i) calls have returned; late-starting helpers will see next >= n
  // and exit without touching fn (which dies with this frame).
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace fl::common
