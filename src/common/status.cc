#include "src/common/status.h"

#include <sstream>

namespace fl {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk: return "OK";
    case ErrorCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound: return "NOT_FOUND";
    case ErrorCode::kAlreadyExists: return "ALREADY_EXISTS";
    case ErrorCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case ErrorCode::kOutOfRange: return "OUT_OF_RANGE";
    case ErrorCode::kUnavailable: return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case ErrorCode::kAborted: return "ABORTED";
    case ErrorCode::kPermissionDenied: return "PERMISSION_DENIED";
    case ErrorCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case ErrorCode::kDataLoss: return "DATA_LOSS";
    case ErrorCode::kUnimplemented: return "UNIMPLEMENTED";
    case ErrorCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = ErrorCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::ostringstream os;
  os << "FL_CHECK failed at " << file << ":" << line << ": " << expr;
  if (!message.empty()) os << " — " << message;
  throw std::logic_error(os.str());
}

}  // namespace internal
}  // namespace fl
