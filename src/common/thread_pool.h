// Fixed-size worker pool with a blocking ParallelFor — the compute substrate
// for the parallel round engine (simulation_runner) and any other data-
// parallel fan-out that mirrors the paper's Aggregator tree (Sec. 4.2):
// independent work items execute concurrently, results are merged by the
// caller in a fixed order so a given (seed, thread-count) pair is
// reproducible regardless of scheduling.
//
// Distinct from actor::ThreadPoolContext on purpose: the actor context is a
// fire-and-forget task executor for message-driven actors; this pool is a
// synchronous fork-join primitive for bulk numeric work.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace fl::common {

class ThreadPool {
 public:
  // Spawns `threads` workers (0 is allowed: ParallelFor then runs inline on
  // the calling thread).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Runs fn(i) for every i in [0, n) across the workers; the calling thread
  // participates too. Blocks until every iteration has finished. Iterations
  // are claimed dynamically, so callers that need determinism must make each
  // fn(i) independent of execution order (see simulation_runner's fixed
  // shard-merge). If an iteration throws, remaining unclaimed iterations are
  // skipped and the first exception is rethrown here.
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& fn);

  // Observer for queue wait: called once per pool task ParallelFor enqueues,
  // with the microseconds between enqueue and the moment a worker dequeued
  // it (telemetry feeds this into its thread-pool queue-wait histogram).
  // Not synchronized against in-flight ParallelFor calls — install it while
  // the pool is quiescent (right after construction). The observer itself
  // may be invoked from several workers concurrently. Null (the default)
  // costs one branch per ParallelFor.
  void SetQueueWaitObserver(std::function<void(std::int64_t)> observer) {
    queue_wait_observer_ = std::move(observer);
  }

 private:
  struct ForState {
    std::mutex mu;
    std::condition_variable done_cv;
    const std::function<void(std::size_t)>* fn = nullptr;
    std::size_t n = 0;
    std::size_t next = 0;       // next unclaimed iteration
    std::size_t in_flight = 0;  // claimed but not yet finished
    bool stop = false;          // set on first exception
    std::exception_ptr error;
  };

  static void RunIterations(ForState& s);
  void WorkerLoop();

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::queue<std::function<void()>> tasks_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  std::function<void(std::int64_t)> queue_wait_observer_;
};

}  // namespace fl::common
