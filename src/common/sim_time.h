// Simulated time types. The entire stack is driven by a discrete-event
// simulator (src/sim); wall-clock never appears below the bench layer.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>

namespace fl {

// Milliseconds since simulation epoch. A plain strong-ish alias: arithmetic
// is deliberately allowed, construction is explicit at call sites via the
// factory helpers below.
struct Duration {
  std::int64_t millis = 0;

  constexpr friend Duration operator+(Duration a, Duration b) {
    return {a.millis + b.millis};
  }
  constexpr friend Duration operator-(Duration a, Duration b) {
    return {a.millis - b.millis};
  }
  constexpr friend Duration operator*(Duration a, std::int64_t k) {
    return {a.millis * k};
  }
  constexpr friend Duration operator/(Duration a, std::int64_t k) {
    return {a.millis / k};
  }
  constexpr auto operator<=>(const Duration&) const = default;

  constexpr double Seconds() const {
    return static_cast<double>(millis) / 1000.0;
  }
  constexpr double Minutes() const { return Seconds() / 60.0; }
  constexpr double Hours() const { return Minutes() / 60.0; }
};

constexpr Duration Millis(std::int64_t ms) { return {ms}; }
constexpr Duration Seconds(std::int64_t s) { return {s * 1000}; }
constexpr Duration Minutes(std::int64_t m) { return {m * 60 * 1000}; }
constexpr Duration Hours(std::int64_t h) { return {h * 60 * 60 * 1000}; }

struct SimTime {
  std::int64_t millis = 0;

  constexpr friend SimTime operator+(SimTime t, Duration d) {
    return {t.millis + d.millis};
  }
  constexpr friend SimTime operator-(SimTime t, Duration d) {
    return {t.millis - d.millis};
  }
  constexpr friend Duration operator-(SimTime a, SimTime b) {
    return {a.millis - b.millis};
  }
  constexpr auto operator<=>(const SimTime&) const = default;

  // Local hour-of-day in [0, 24) given a timezone offset.
  constexpr double HourOfDay(Duration tz_offset = {}) const {
    constexpr std::int64_t kDay = 24LL * 60 * 60 * 1000;
    std::int64_t local = (millis + tz_offset.millis) % kDay;
    if (local < 0) local += kDay;
    return static_cast<double>(local) / (60.0 * 60.0 * 1000.0);
  }
};

inline std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << d.millis << "ms";
}
inline std::ostream& operator<<(std::ostream& os, SimTime t) {
  return os << "t+" << t.millis << "ms";
}

// Formats a SimTime as "DdHH:MM:SS" for dashboards.
inline std::string FormatSimTime(SimTime t) {
  std::int64_t ms = t.millis;
  const std::int64_t days = ms / (24LL * 3600 * 1000);
  ms %= 24LL * 3600 * 1000;
  const std::int64_t h = ms / (3600 * 1000);
  ms %= 3600 * 1000;
  const std::int64_t m = ms / (60 * 1000);
  ms %= 60 * 1000;
  const std::int64_t s = ms / 1000;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lldd%02lld:%02lld:%02lld",
                static_cast<long long>(days), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s));
  return buf;
}

}  // namespace fl
