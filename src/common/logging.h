// Minimal leveled logging. Defaults to WARNING so tests and benches stay
// quiet; examples turn INFO on to narrate rounds.
#pragma once

#include <sstream>
#include <string>

namespace fl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Global log threshold; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

// Buffers one log statement; the destructor emits it at end of the full
// expression (glog-style).
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { EmitLog(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  std::ostream& stream() { return os_; }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

// Makes the streamed expression void so it can appear in a ternary.
struct VoidifyLog {
  void operator&(std::ostream&) {}
};

}  // namespace internal

#define FL_LOG(level)                                    \
  (::fl::GetLogLevel() > ::fl::LogLevel::k##level)       \
      ? (void)0                                          \
      : ::fl::internal::VoidifyLog() &                   \
            ::fl::internal::LogLine(::fl::LogLevel::k##level).stream()

}  // namespace fl
