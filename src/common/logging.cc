#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace fl {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarning};
std::mutex g_mutex;

const char* LevelName(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "D";
    case LogLevel::kInfo: return "I";
    case LogLevel::kWarning: return "W";
    case LogLevel::kError: return "E";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void EmitLog(LogLevel level, const std::string& message) {
  const std::scoped_lock lock(g_mutex);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace internal
}  // namespace fl
