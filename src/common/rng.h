// Deterministic, seedable random number generation.
//
// Every stochastic component of the simulation (device availability, network
// latency, drop-outs, pace steering jitter, SGD shuffling) draws from an
// explicitly-seeded Rng so that experiments are exactly reproducible — the
// paper's production system relies on analytics to diagnose behaviour
// (Sec. 5); our substitute is deterministic replay.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <numbers>
#include <vector>

#include "src/common/status.h"

namespace fl {

// xoshiro256** by Blackman & Vigna — fast, high-quality, tiny state.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  void Seed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into the full state, per Vigna's advice.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<std::uint64_t>::max();
  }

  std::uint64_t operator()() { return Next(); }

  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  std::uint64_t UniformInt(std::uint64_t n) {
    FL_CHECK(n > 0);
    // Lemire's nearly-divisionless bounded sampling.
    __uint128_t m = static_cast<__uint128_t>(Next()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(Next()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    FL_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    UniformInt(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  bool Bernoulli(double p) { return NextDouble() < p; }

  // Standard normal via Box–Muller (no cached spare: keeps replay simple).
  double Normal(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    while (u1 <= 0.0) u1 = NextDouble();
    const double u2 = NextDouble();
    const double mag = std::sqrt(-2.0 * std::log(u1));
    return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
  }

  // Exponential with the given rate (events per unit time).
  double Exponential(double rate) {
    FL_CHECK(rate > 0.0);
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return -std::log(u) / rate;
  }

  // Log-normal parameterized by the underlying normal's mu / sigma.
  double LogNormal(double mu, double sigma) {
    return std::exp(Normal(mu, sigma));
  }

  // Zipf-distributed rank in [0, n) with exponent s, via rejection-inversion
  // approximation adequate for workload generation.
  std::size_t Zipf(std::size_t n, double s) {
    FL_CHECK(n > 0);
    // Inverse-CDF on the harmonic weights; O(1) approximate sampling.
    const double u = NextDouble();
    if (s == 1.0) {
      const double hn = std::log(static_cast<double>(n)) + 0.5772156649;
      const double target = u * hn;
      const double r = std::exp(target) - 0.5772156649;
      auto rank = static_cast<std::size_t>(std::max(0.0, r - 1.0));
      return std::min(rank, n - 1);
    }
    const double one_minus_s = 1.0 - s;
    const double hn =
        (std::pow(static_cast<double>(n), one_minus_s) - 1.0) / one_minus_s;
    const double r =
        std::pow(u * hn * one_minus_s + 1.0, 1.0 / one_minus_s) - 1.0;
    auto rank = static_cast<std::size_t>(std::max(0.0, r));
    return std::min(rank, n - 1);
  }

  // Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = UniformInt(i);
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derive an independent child generator (e.g., one per simulated device).
  Rng Fork() { return Rng(Next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
};

}  // namespace fl
